//! Offline stand-in for the `criterion` crate.
//!
//! Implements the criterion API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark runs a short calibrated batch and prints mean
//! time-per-iteration, so `cargo bench` produces useful numbers offline.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs timed iterations of one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    measured: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running enough iterations for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up / calibration: find an iteration count that runs in roughly
        // a few milliseconds, bounded so heavyweight routines still finish.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let per_sample = ((target.as_nanos() / once.as_nanos()).clamp(1, 10_000)) as u64;
        let samples = self.sample_size as u64;
        let start = Instant::now();
        for _ in 0..samples * per_sample {
            black_box(routine());
        }
        self.measured = Some(start.elapsed());
        self.iterations = samples * per_sample;
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn report(id: &str, bencher: &Bencher) {
    match bencher.measured {
        Some(total) if bencher.iterations > 0 => {
            let per_iter = total.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "bench: {id:<50} {:>12.1} ns/iter ({} iters)",
                per_iter, bencher.iterations
            );
        }
        _ => println!("bench: {id:<50} (no measurement)"),
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored by the stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
            iterations: 0,
        };
        routine(&mut bencher);
        report(id, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored by the stub (statistical engine knob).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs `routine` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
            iterations: 0,
        };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Runs `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measured: None,
            iterations: 0,
        };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &bencher);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

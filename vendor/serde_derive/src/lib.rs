//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in this build environment, so `syn`/`quote` are
//! unavailable; this crate parses the derive input token stream by hand. It
//! supports exactly the shapes the workspace uses: non-generic structs with
//! named fields, tuple structs, unit structs, and enums whose variants are
//! unit, tuple, or struct-like. The generated `Serialize` impl mirrors
//! serde's default JSON encoding (objects for named fields, the inner value
//! for newtypes, external tagging for enums); `Deserialize` is a marker impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed `struct` or `enum` item.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json_write(&self.{f}, out);\n"
                ));
            }
            code.push_str("out.push('}');\n");
            code
        }
        Shape::TupleStruct(1) => String::from("::serde::Serialize::json_write(&self.0, out);\n"),
        Shape::TupleStruct(n) => {
            let mut code = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    code.push_str("out.push(',');\n");
                }
                code.push_str(&format!(
                    "::serde::Serialize::json_write(&self.{i}, out);\n"
                ));
            }
            code.push_str("out.push(']');\n");
            code
        }
        Shape::UnitStruct => String::from("out.push_str(\"null\");\n"),
        Shape::Enum(variants) => {
            let name = &item.name;
            let mut code = String::from("match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        code.push_str(&format!(
                            "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        code.push_str(&format!(
                            "{name}::{vname}(f0) => {{ out.push_str(\"{{\\\"{vname}\\\":\"); ::serde::Serialize::json_write(f0, out); out.push('}}'); }}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ out.push_str(\"{{\\\"{vname}\\\":[\");\n",
                            binders.join(", ")
                        );
                        for (i, b) in binders.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("out.push(',');\n");
                            }
                            arm.push_str(&format!("::serde::Serialize::json_write({b}, out);\n"));
                        }
                        arm.push_str("out.push_str(\"]}\"); }\n");
                        code.push_str(&arm);
                    }
                    VariantKind::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ out.push_str(\"{{\\\"{vname}\\\":{{\");\n",
                            fields.join(", ")
                        );
                        for (i, f) in fields.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("out.push(',');\n");
                            }
                            arm.push_str(&format!(
                                "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::json_write({f}, out);\n"
                            ));
                        }
                        arm.push_str("out.push_str(\"}}\"); }\n");
                        code.push_str(&arm);
                    }
                }
            }
            code.push_str("}\n");
            code
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {} {{\n    fn json_write(&self, out: &mut ::std::string::String) {{\n        {}\n    }}\n}}\n",
        item.name, body
    );
    out.parse()
        .expect("serde_derive stub generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {} {{}}\n",
        item.name
    )
    .parse()
    .expect("serde_derive stub generated invalid Rust")
}

/// Parses the derive input down to the item name and field/variant layout.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility to find `struct` / `enum`.
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` etc.
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                is_enum = false;
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, found {other}"),
    };
    i += 1;
    // The workspace derives only non-generic items; reject generics loudly
    // rather than generating a broken impl.
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub does not support generic types (on `{name}`)");
        }
    }
    // Find the body: a brace group, a paren group (tuple struct), or `;`.
    let shape = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                if is_enum {
                    break Shape::Enum(parse_variants(g.stream()));
                } else {
                    break Shape::NamedStruct(parse_named_fields(g.stream()));
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                break Shape::TupleStruct(count_top_level_fields(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Shape::UnitStruct,
            Some(_) => i += 1,
            None => panic!("serde_derive stub: no body found for `{name}`"),
        }
    };
    Item { name, shape }
}

/// Parses `name: Type, ...` named-field lists, skipping attributes and
/// visibility; returns the field names in declaration order.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Skip `: Type` up to the next top-level comma. Commas inside
                // angle brackets (generic args) don't terminate the field. A
                // `>` at depth 0 is the tail of `->` (fn-pointer types), not a
                // closing bracket, so it must not drive the depth negative.
                let mut depth = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

/// Counts comma-separated fields at the top level of a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => {
                depth -= 1;
                saw_trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_trailing_comma = true;
            }
            _ => saw_trailing_comma = false,
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

/// Parses enum variants: `Name`, `Name(T, U)`, `Name { a: T }`, each possibly
/// preceded by attributes and followed by `= discriminant`.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let kind = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantKind::Tuple(count_top_level_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantKind::Named(parse_named_fields(g.stream()))
                    }
                    _ => VariantKind::Unit,
                };
                // Skip an explicit discriminant and the separating comma.
                while i < tokens.len() {
                    if let TokenTree::Punct(p) = &tokens[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push(Variant { name, kind });
            }
            _ => i += 1,
        }
    }
    variants
}

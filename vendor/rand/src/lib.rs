//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::SmallRng`], and `gen_range` over
//! half-open integer and float ranges. The generator is a deterministic
//! xoshiro256**-style PRNG seeded via SplitMix64, which keeps workload
//! generation reproducible across runs and platforms.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling from a range; the stand-in for rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Fast path: spans below 2^64 reduce with a u64 modulo, which
                // is bit-identical to the u128 reduction but avoids the
                // libcall-based 128-bit division on every draw.
                let draw = if span <= u64::MAX as u128 {
                    (rng.next_u64() % span as u64) as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (self.start as u128 + draw) as $t
            }
        })*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        // Rounding can land exactly on `end` when the magnitudes are large;
        // clamp to keep the documented half-open [start, end) contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns a random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small PRNG (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! Provides the slice of the rand 0.8 API the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::SmallRng`], and `gen_range` over
//! half-open integer and float ranges. The generator is a deterministic
//! xoshiro256**-style PRNG seeded via SplitMix64, which keeps workload
//! generation reproducible across runs and platforms.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling from a range; the stand-in for rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Fast path: spans below 2^64 reduce with a u64 modulo, which
                // is bit-identical to the u128 reduction but avoids the
                // libcall-based 128-bit division on every draw.
                let draw = if span <= u64::MAX as u128 {
                    (rng.next_u64() % span as u64) as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                // Wrapping: a negative start sign-extends to a huge u128 and
                // relies on the cast chain wrapping back around.
                (self.start as u128).wrapping_add(draw) as $t
            }
        })*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = self.start + unit * (self.end - self.start);
        // Rounding can land exactly on `end` when the magnitudes are large;
        // clamp to keep the documented half-open [start, end) contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns a random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small PRNG (xoshiro256** seeded via SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Precomputed distributions, mirroring `rand::distributions`.
///
/// These exist for hot loops that draw from the *same* range or probability
/// millions of times: construction hoists the expensive part (a division, a
/// float scale) and sampling is then branch-light integer arithmetic. Every
/// sampler consumes exactly one `next_u64` per draw and produces **the exact
/// value** the corresponding `Rng::gen_range` / `Rng::gen_bool` call would
/// have produced — the equivalence tests below pin that bit-compatibility,
/// which deterministic workload generation depends on.
pub mod distributions {
    use super::RngCore;

    /// Samples a value of type `T` from a parameterised distribution.
    pub trait Distribution<T> {
        /// Draws one value using `rng` as the randomness source.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// A boolean distribution with fixed probability, bit-identical to
    /// [`super::Rng::gen_bool`] with the same `p`.
    ///
    /// `gen_bool` computes `(x >> 11) as f64 / 2^53 < p`. Both the `as f64`
    /// conversion (the operand is below `2^53`) and the division by a power
    /// of two are exact, so the comparison is equivalent to the *integer*
    /// comparison `(x >> 11) < ceil(p * 2^53)` — `p * 2^53` is again an
    /// exact power-of-two scaling, and taking the ceiling folds the
    /// non-integer boundary into a strict integer bound.
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        /// 53-bit integer threshold; draw succeeds iff `x >> 11 < threshold`.
        threshold: u64,
    }

    impl Bernoulli {
        /// Creates a sampler equivalent to `gen_bool(p)`.
        pub fn new(p: f64) -> Self {
            let scaled = (p * (1u64 << 53) as f64).ceil();
            let threshold = if scaled <= 0.0 {
                0
            } else if scaled >= (1u64 << 53) as f64 {
                1u64 << 53
            } else {
                scaled as u64
            };
            Bernoulli { threshold }
        }
    }

    impl Distribution<bool> for Bernoulli {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            (rng.next_u64() >> 11) < self.threshold
        }
    }

    /// Division-free `x mod d` for an invariant divisor, after Lemire &
    /// Kaser, *Faster remainders when the divisor is a constant* (2019):
    /// with `m = ceil(2^128 / d)` (for `d` not a power of two),
    /// `x mod d = ((m * x mod 2^128) * d) >> 128` for every `x < 2^64`.
    /// Powers of two reduce with a mask instead, where the ceiling is exact
    /// and the theorem's strictness requirement fails.
    #[derive(Debug, Clone, Copy)]
    struct FastMod {
        d: u64,
        magic: u128,
        mask: u64,
        pow2: bool,
    }

    impl FastMod {
        fn new(d: u64) -> Self {
            assert!(d > 0, "cannot reduce modulo zero");
            if d.is_power_of_two() {
                FastMod {
                    d,
                    magic: 0,
                    mask: d - 1,
                    pow2: true,
                }
            } else {
                FastMod {
                    d,
                    magic: u128::MAX / d as u128 + 1,
                    mask: 0,
                    pow2: false,
                }
            }
        }

        #[inline]
        fn rem(&self, x: u64) -> u64 {
            if self.pow2 {
                return x & self.mask;
            }
            let low = self.magic.wrapping_mul(x as u128);
            // 128x64-bit high multiply via two 64x64 halves.
            let a_lo = low as u64 as u128;
            let a_hi = (low >> 64) as u64 as u128;
            let d = self.d as u128;
            ((((a_lo * d) >> 64) + a_hi * d) >> 64) as u64
        }
    }

    /// A uniform integer distribution over `[low, high)`, bit-identical to
    /// [`super::Rng::gen_range`] over the same range but with the span
    /// reduction's division replaced by a precomputed fast-mod constant.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        span: FastMod,
    }

    /// Integer types [`Uniform`] can sample (the stand-in for rand's
    /// `SampleUniform`).
    pub trait SampleUniform: Copy {
        /// The `[low, high)` span as an unsigned 64-bit count.
        fn uniform_span(low: Self, high: Self) -> u64;
        /// `low + draw`, with the wrapping cast chain `gen_range` uses.
        fn uniform_offset(low: Self, draw: u64) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {
            $(impl SampleUniform for $t {
                fn uniform_span(low: $t, high: $t) -> u64 {
                    assert!(low < high, "cannot sample empty range");
                    let span = (high as u128).wrapping_sub(low as u128);
                    assert!(
                        span <= u64::MAX as u128,
                        "spans of 2^64 or more are not supported"
                    );
                    span as u64
                }

                #[inline]
                fn uniform_offset(low: $t, draw: u64) -> $t {
                    (low as u128).wrapping_add(draw as u128) as $t
                }
            })*
        };
    }

    impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: SampleUniform> Uniform<T> {
        /// Creates a sampler equivalent to `gen_range(low..high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform {
                low,
                span: FastMod::new(T::uniform_span(low, high)),
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::uniform_offset(self.low, self.span.rem(rng.next_u64()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Bernoulli, Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn bernoulli_is_bit_identical_to_gen_bool() {
        // Probabilities spanning hard boundaries: 0, 1, exact dyadics,
        // just-below-one, and irrational-ish interior values.
        let ps = [
            0.0,
            1.0,
            0.5,
            0.25,
            0.02,
            0.7,
            0.999_999_999,
            1.0 - f64::EPSILON,
            f64::EPSILON,
            0.333_333_333_333,
            1.5,
            -0.5,
        ];
        for p in ps {
            let dist = Bernoulli::new(p);
            let mut a = SmallRng::seed_from_u64(0xB00B5);
            let mut b = a.clone();
            for _ in 0..4096 {
                assert_eq!(dist.sample(&mut a), b.gen_bool(p), "p={p}");
            }
        }
    }

    #[test]
    fn uniform_is_bit_identical_to_gen_range() {
        // Spans covering the workload generator's real divisors plus
        // powers of two, near-powers, tiny, and huge values.
        let spans_u64 = [
            1u64,
            2,
            3,
            7,
            8,
            511,
            512,
            513,
            20479,
            20480,
            20481,
            (1 << 33) - 1,
            (1 << 62) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ];
        for span in spans_u64 {
            let dist = Uniform::new(0u64, span);
            let mut a = SmallRng::seed_from_u64(span ^ 0xDEAD);
            let mut b = a.clone();
            for _ in 0..4096 {
                assert_eq!(dist.sample(&mut a), b.gen_range(0..span), "span={span}");
            }
        }
        let dist = Uniform::new(3u32, 17);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = a.clone();
        for _ in 0..4096 {
            assert_eq!(dist.sample(&mut a), b.gen_range(3u32..17));
        }
        let dist = Uniform::new(-50i64, 1000);
        let mut a = SmallRng::seed_from_u64(100);
        let mut b = a.clone();
        for _ in 0..4096 {
            assert_eq!(dist.sample(&mut a), b.gen_range(-50i64..1000));
        }
        let dist = Uniform::new(0usize, 5);
        let mut a = SmallRng::seed_from_u64(101);
        let mut b = a.clone();
        for _ in 0..4096 {
            assert_eq!(dist.sample(&mut a), b.gen_range(0usize..5));
        }
    }
}

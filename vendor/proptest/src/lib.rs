//! Offline stand-in for the `proptest` crate.
//!
//! crates.io is unreachable in this build environment, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, strategies for
//! integer/float ranges and tuples, `prop::collection::vec`,
//! `prop::sample::select`, `prop::bool::ANY`, [`any`], and the
//! `prop_assert*` / `prop_assume!` macros. Unlike real proptest it does not
//! shrink failing inputs — it reports the first failing case as-is — but
//! generation is deterministic per test, so failures reproduce exactly.

use std::ops::Range;

pub mod test_runner {
    //! Test-case plumbing used by the generated test bodies.

    /// Outcome of a single generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another input.
        Reject,
        /// The case failed an assertion.
        Fail(String),
    }

    /// Deterministic RNG driving input generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a fixed seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5DEECE66D,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable through the `PROPTEST_CASES` environment
    /// variable (matching real proptest) so CI lanes can raise the case
    /// count without editing test sources. An explicit
    /// [`ProptestConfig::with_cases`] still wins over the environment.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// A generator of values for property tests.
///
/// Simplified from real proptest: `new_value` draws a sample directly, with
/// no intermediate value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128 + draw) as $t
            }
        })*
    };
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = Any<$t>;

                fn arbitrary() -> Any<$t> {
                    Any { _marker: std::marker::PhantomData }
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prop {
    //! The `prop::` strategy namespace (`prop::collection`, `prop::bool`,
    //! `prop::sample`).

    pub mod collection {
        //! Collection strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of values from `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy generating either boolean with equal probability.
        #[derive(Debug, Clone, Copy)]
        pub struct BoolAny;

        /// Uniformly random booleans.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod sample {
        //! Sampling strategies.

        use crate::test_runner::TestRng;
        use crate::Strategy;

        /// Strategy choosing uniformly from a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Chooses one of `options` uniformly (panics on an empty vec).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case, drawing a fresh input instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Seed from the test name so distinct tests explore distinct
                // sequences but each test is fully deterministic.
                let seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x100_0000_01b3);
                    }
                    h
                };
                let mut rng = $crate::test_runner::TestRng::new(seed);
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $pat = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "property {} failed after {} passing case(s): {}",
                                stringify!($name),
                                passed,
                                message,
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u8..10, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_select_compose(
            v in prop::sample::select(vec![1u64, 2, 3]).prop_map(|x| x * 10),
            b in prop::bool::ANY,
        ) {
            prop_assert!(v == 10 || v == 20 || v == 30);
            let _ = b;
        }
    }
}

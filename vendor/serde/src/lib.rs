//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the minimal surface the workspace actually uses: a [`Serialize`]
//! trait that can render a value as JSON text, a marker [`Deserialize`]
//! trait, and re-exported derive macros (from the sibling `serde_derive`
//! stub) so `#[derive(Serialize, Deserialize)]` works unchanged. Swapping in
//! the real serde later requires no source changes outside `vendor/`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::BuildHasher;

/// A type that can write itself as JSON text.
///
/// This is a radically simplified stand-in for serde's data model: instead of
/// a generic `Serializer`, implementors append JSON directly to a `String`.
/// The derive macro in `serde_derive` generates `json_write` bodies that
/// mirror serde's default encodings (struct → object, newtype → inner value,
/// enum → externally tagged).
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn json_write(&self, out: &mut String);
}

/// Marker trait standing in for serde's `Deserialize`.
///
/// Nothing in the workspace actually deserializes, so the derive macro emits
/// an empty impl. The lifetime parameter keeps signatures source-compatible
/// with real serde bounds like `for<'de> T: Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Escapes and appends `s` as a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {
        $(impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        })*
    };
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f32 {
    fn json_write(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for f64 {
    fn json_write(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&self.to_string());
        } else {
            out.push_str("null");
        }
    }
}

impl Serialize for char {
    fn json_write(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        write_json_string(self.encode_utf8(&mut buf), out);
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.json_write(out),
        }
    }
}

fn write_json_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.json_write(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn json_write(&self, out: &mut String) {
        write_json_seq(self.iter(), out);
    }
}

fn write_json_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    // JSON objects require string keys; the workspace keys maps by numeric
    // newtypes, so encode maps as arrays of [key, value] pairs instead.
    out.push('[');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        k.json_write(out);
        out.push(',');
        v.json_write(out);
        out.push(']');
    }
    out.push(']');
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn json_write(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn json_write(&self, out: &mut String) {
        write_json_map(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn json_write(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.json_write(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    };
}

impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl Serialize for () {
    fn json_write(&self, out: &mut String) {
        out.push_str("null");
    }
}

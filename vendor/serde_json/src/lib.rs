//! Offline stand-in for `serde_json`, backed by the vendored `serde` stub.

use std::fmt;

/// Error type for JSON serialization. The stub serializer is infallible, so
/// this exists only for signature compatibility with real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// Serializes `value` as JSON. The stub does not indent; this is an alias of
/// [`to_string`] kept for API compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

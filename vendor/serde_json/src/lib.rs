//! Offline stand-in for `serde_json`, backed by the vendored `serde` stub.

use std::fmt;

/// Error type for JSON serialization. The stub serializer is infallible, so
/// this exists only for signature compatibility with real `serde_json`.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

/// Serializes `value` as JSON. The stub does not indent; this is an alias of
/// [`to_string`] kept for API compatibility.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    to_string(value)
}

/// A parsed JSON document, mirroring the shape (though not the full API) of
/// `serde_json::Value`. Sufficient for tools that read back the documents
/// this stub writes (e.g. the benchmark perf-regression gate).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like permissive readers do).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member access: `value.get("key")` on objects, `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing garbage.
pub fn from_str(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(()));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(()))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek().ok_or(Error(()))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' if self.eat_literal("true") => Ok(Value::Bool(true)),
            b'f' if self.eat_literal("false") => Ok(Value::Bool(false)),
            b'n' if self.eat_literal("null") => Ok(Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(Error(())),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(())),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(())),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(Error(()))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(Error(()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or(Error(()))
                                .and_then(|h| std::str::from_utf8(h).map_err(|_| Error(())))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error(()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the stub
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(Error(())),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|_| Error(()))?;
                    let ch = s.chars().next().ok_or(Error(()))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error(()))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            from_str(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\n"}, "ok": true, "n": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{}garbage").is_err());
        assert!(from_str("").is_err());
    }
}

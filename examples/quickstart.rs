//! Quickstart: run one PARSEC-like benchmark under the three configurations
//! the paper compares and print what Aikido saved.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use aikido::prelude::*;

fn main() {
    // Pick the benchmark and scale (0.2 keeps the example under a second).
    let spec = WorkloadSpec::parsec("vips")
        .expect("vips is one of the ten PARSEC presets")
        .scaled(0.2);
    println!("workload: {} ({} threads)", spec.name, spec.threads);

    let system = AikidoSystem::new();
    let comparison = system.compare_spec(&spec);

    let native = &comparison.native;
    let full = &comparison.full;
    let aikido = &comparison.aikido;

    println!();
    println!("native cycles:            {:>12}", native.cycles);
    println!(
        "FastTrack (full):         {:>12}  ({:.1}x slowdown)",
        full.cycles,
        comparison.full_slowdown()
    );
    println!(
        "Aikido-FastTrack:         {:>12}  ({:.1}x slowdown)",
        aikido.cycles,
        comparison.aikido_slowdown()
    );
    println!();
    println!(
        "accesses instrumented:    {:>12} of {} ({:.1}%)",
        aikido.counts.instrumented_accesses,
        aikido.counts.mem_accesses,
        aikido.counts.instrumented_fraction() * 100.0
    );
    println!(
        "accesses to shared pages: {:>12} ({:.1}%)",
        aikido.counts.shared_accesses,
        aikido.counts.shared_access_fraction() * 100.0
    );
    println!("page-protection faults:   {:>12}", aikido.counts.segfaults);
    println!(
        "shared pages discovered:  {:>12}",
        aikido.sharing.shared_transitions
    );
    println!();
    println!(
        "Aikido speed-up over full instrumentation: {:.2}x",
        comparison.aikido_speedup()
    );
    println!(
        "races found (full / aikido): {} / {}",
        full.race_count(),
        aikido.race_count()
    );
}

//! Dumps the static pre-analysis verdict for every benchmark the equivalence
//! suites run, in a deterministic, diff-friendly form.
//!
//! For each benchmark this prints the aggregate coverage as JSON plus the
//! length and FNV-1a digest of the *full* serialised [`StaticReport`]. The
//! digest pins the entire report — every per-block summary, class and mask —
//! without committing hundreds of kilobytes of JSON: two processes that
//! disagree on a single byte of analysis output print different lines. CI's
//! static-audit lane runs this binary twice and `cmp`s the outputs; the
//! golden transcript under `tests/golden/` pins the default-scale output
//! in-repo.
//!
//! ```bash
//! cargo run --example static_report_dump            # default scale 0.02
//! AIKIDO_SCALE=0.05 cargo run --example static_report_dump
//! ```

use aikido::{StaticReport, Workload, WorkloadSpec};

const BENCHMARKS: [&str; 6] = [
    "raytrace",
    "blackscholes",
    "vips",
    "fluidanimate",
    "swaptions",
    "canneal",
];

/// 64-bit FNV-1a over the serialised report bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn main() {
    let scale = std::env::var("AIKIDO_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.02);
    println!("static pre-analysis reports (scale {scale}):");
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("benchmark list contains only PARSEC presets")
            .scaled(scale);
        let workload = Workload::generate(&spec);
        let report = StaticReport::for_workload(&workload);
        let json = serde_json::to_string(&report).expect("report serialises");
        println!(
            "{name}: bytes={} fnv1a={:016x}",
            json.len(),
            fnv1a(json.as_bytes())
        );
        println!(
            "{name}: coverage={}",
            serde_json::to_string(&report.coverage).expect("coverage serialises")
        );
    }
}

//! Build a *custom* shared data analysis on top of Aikido: a sharing
//! profiler that reports which pages are shared, how often they are written,
//! and which static instructions touch them — the kind of tool the paper's
//! framework is meant to enable beyond race detection.
//!
//! ```bash
//! cargo run --release --example sharing_profiler
//! ```

use std::collections::HashMap;

use aikido::prelude::*;
use aikido::types::Vpn;

/// A sharing profiler: counts reads/writes per shared page and tracks how
/// many distinct static instructions touch each page.
#[derive(Default, Debug)]
struct SharingProfiler {
    reads: HashMap<Vpn, u64>,
    writes: HashMap<Vpn, u64>,
    instrs: HashMap<Vpn, std::collections::HashSet<aikido::types::InstrId>>,
}

impl SharingProfiler {
    fn hottest_pages(&self, n: usize) -> Vec<(Vpn, u64, u64, usize)> {
        let mut pages: Vec<_> = self
            .reads
            .keys()
            .chain(self.writes.keys())
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|p| {
                (
                    p,
                    self.reads.get(&p).copied().unwrap_or(0),
                    self.writes.get(&p).copied().unwrap_or(0),
                    self.instrs.get(&p).map(|s| s.len()).unwrap_or(0),
                )
            })
            .collect();
        pages.sort_by_key(|(_, r, w, _)| std::cmp::Reverse(r + w));
        pages.truncate(n);
        pages
    }
}

impl SharedDataAnalysis for SharingProfiler {
    fn name(&self) -> &'static str {
        "sharing-profiler"
    }

    fn on_access(&mut self, cx: AccessContext) {
        let page = cx.addr.page();
        match cx.kind {
            AccessKind::Read => *self.reads.entry(page).or_default() += 1,
            AccessKind::Write => *self.writes.entry(page).or_default() += 1,
        }
        self.instrs.entry(page).or_default().insert(cx.instr);
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        Vec::new()
    }

    fn access_cost_cycles(&self) -> u64 {
        12
    }
}

fn main() {
    let spec = WorkloadSpec::parsec("streamcluster")
        .expect("known preset")
        .scaled(0.2);
    let workload = Workload::generate(&spec);
    let system = AikidoSystem::new();

    let mut profiler = SharingProfiler::default();
    let report = system.run_with_analysis(&workload, Mode::Aikido, &mut profiler);

    println!("workload: {} ({} threads)", spec.name, spec.threads);
    println!(
        "memory accesses: {} — delivered to the profiler: {} ({:.1}%)",
        report.counts.mem_accesses,
        report.counts.shared_accesses,
        report.counts.shared_access_fraction() * 100.0
    );
    println!();
    println!("hottest shared pages:");
    println!(
        "{:>18} {:>10} {:>10} {:>14}",
        "page", "reads", "writes", "instructions"
    );
    for (page, reads, writes, instrs) in profiler.hottest_pages(10) {
        println!(
            "{:>18} {reads:>10} {writes:>10} {instrs:>14}",
            format!("{page}")
        );
    }
    println!();
    println!(
        "Because the profiler only sees shared data, it ran with {:.1}x fewer analysis\n\
         callbacks than a conventional full-instrumentation profiler would have.",
        report.counts.mem_accesses as f64 / report.counts.shared_accesses.max(1) as f64
    );
}

//! Hunt for data races in a racy workload with the Aikido-accelerated
//! FastTrack detector, and show that the conventional (fully instrumented)
//! detector agrees — the paper's §5.3 experiment in miniature.
//!
//! ```bash
//! cargo run --release --example find_races
//! ```

use std::collections::BTreeSet;

use aikido::prelude::*;
use aikido::workloads::racy_workload;

fn blocks(report: &RunReport) -> BTreeSet<u64> {
    report.races.iter().map(|r| r.addr.raw() / 8).collect()
}

fn main() {
    // A workload with a handful of deliberately unsynchronised address pairs
    // (the way the paper models e.g. canneal's Mersenne-Twister RNG race).
    let spec = racy_workload(8);
    let workload = Workload::generate(&spec);
    let system = AikidoSystem::new();

    let full = system.run(&workload, Mode::FullInstrumentation);
    let aikido = system.run(&workload, Mode::Aikido);

    println!("=== conventional FastTrack (instruments every access) ===");
    for race in &full.races {
        println!("  {race}");
    }
    println!("  {} distinct racy blocks", blocks(&full).len());

    println!();
    println!("=== Aikido-FastTrack (instruments shared pages only) ===");
    for race in &aikido.races {
        println!("  {race}");
    }
    println!("  {} distinct racy blocks", blocks(&aikido).len());

    println!();
    let common = blocks(&full).intersection(&blocks(&aikido)).count();
    println!("reported by both tools: {common}");
    println!(
        "aikido-only reports (would be false positives): {}",
        blocks(&aikido).difference(&blocks(&full)).count()
    );
    println!(
        "speed difference while finding them: {:.2}x fewer cycles under Aikido",
        full.cycles as f64 / aikido.cycles as f64
    );
    println!();
    println!(
        "Note: Aikido may legitimately miss a race whose only two accesses are the first\n\
         two accesses to a page (the documented §6 false-negative window); run the\n\
         first_access_window example to see that case isolated."
    );
}

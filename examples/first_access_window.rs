//! Demonstrate the §6 discussion: Aikido's only false-negative window is the
//! first two accesses that make a page shared. A race whose *only* accesses
//! are those first two accesses can be missed by Aikido-FastTrack while the
//! fully instrumented FastTrack still reports it.
//!
//! ```bash
//! cargo run --release --example first_access_window
//! ```

use aikido::prelude::*;
use aikido::workloads::first_access_race_workload;

fn main() {
    let spec = first_access_race_workload(2);
    let workload = Workload::generate(&spec);
    let system = AikidoSystem::new();

    let full = system.run(&workload, Mode::FullInstrumentation);
    let aikido = system.run(&workload, Mode::Aikido);

    println!("adversarial workload: the racy pair is touched only once per thread");
    println!();
    println!(
        "FastTrack (full instrumentation) races:  {}",
        full.race_count()
    );
    for race in &full.races {
        println!("    {race}");
    }
    println!(
        "Aikido-FastTrack races:                  {}",
        aikido.race_count()
    );
    for race in &aikido.races {
        println!("    {race}");
    }
    println!();
    if aikido.race_count() < full.race_count() {
        println!(
            "Aikido missed {} race(s): exactly the documented first-two-accesses window (§6).",
            full.race_count() - aikido.race_count()
        );
    } else {
        println!(
            "Aikido reported the same races this time — the window only opens when the racing\n\
             accesses are each thread's very first access to the page."
        );
    }
    println!();
    println!(
        "The paper's §6 workaround: order the first two accesses to every page with ordinary\n\
         process-wide page protection (or run under a deterministic-execution system), which\n\
         closes the window without giving up Aikido's speedups."
    );
}

//! Crash-recovery roundtrip: checkpoint a run at its midpoint, restore the
//! serialized image — optionally in a *fresh process* — and prove the final
//! report is byte-identical to an uninterrupted run.
//!
//! ```bash
//! # In-process demo (what the smoke test pins):
//! cargo run --release --example snapshot_roundtrip
//!
//! # The CI crash-recovery lane splits the phases across processes:
//! cargo run --release --example snapshot_roundtrip -- full uninterrupted.json
//! cargo run --release --example snapshot_roundtrip -- save midpoint.snap
//! cargo run --release --example snapshot_roundtrip -- resume midpoint.snap resumed.json
//! cmp uninterrupted.json resumed.json
//! ```
//!
//! The workload is the `vips` preset (4 threads) under `Mode::Aikido`,
//! scaled by `AIKIDO_SCALE` (default 0.05). Reports are serialized as
//! canonical JSON, so `cmp` on the two report files is a byte-level
//! equivalence check across process boundaries.
//!
//! The simulator is built from [`SimConfig::from_env_overrides`], so the CI
//! lanes can steer each *process* independently: `AIKIDO_PARALLEL=4
//! AIKIDO_SHARDED=1` produces a sharded parallel run whose report file must
//! `cmp` equal to a sequential process's — the cross-process spelling of the
//! PR 10 sharded-analysis equivalence contract.

use aikido::prelude::*;
use aikido::CheckpointOutcome;

fn scale() -> f64 {
    std::env::var("AIKIDO_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(0.05)
}

fn workload() -> Workload {
    let spec = WorkloadSpec::parsec("vips")
        .expect("vips is one of the ten PARSEC presets")
        .scaled(scale())
        .with_threads(4);
    Workload::generate(&spec)
}

fn fail(message: String) -> ! {
    eprintln!("snapshot_roundtrip: {message}");
    std::process::exit(1)
}

/// Runs uninterrupted and returns the reference report.
fn run_full(sim: &Simulator, w: &Workload) -> RunReport {
    sim.run(w, Mode::Aikido)
}

/// Checkpoints at the midpoint of the run and returns the serialized image.
fn save_midpoint(sim: &Simulator, w: &Workload) -> Vec<u8> {
    let total = run_full(sim, w).counts.block_execs;
    match sim.checkpoint(w, Mode::Aikido, total / 2) {
        Ok(CheckpointOutcome::Paused(snapshot)) => snapshot.into_bytes(),
        Ok(CheckpointOutcome::Completed(_)) => {
            fail("the workload completed before its own midpoint".to_string())
        }
        Err(err) => fail(format!("checkpoint failed: {err}")),
    }
}

/// Validates `bytes` and resumes the run to completion.
fn resume_bytes(sim: &Simulator, w: &Workload, bytes: Vec<u8>) -> RunReport {
    let snapshot = match Snapshot::from_bytes(bytes) {
        Ok(snapshot) => snapshot,
        Err(err) => fail(format!("snapshot image rejected: {err}")),
    };
    match sim.resume(w, &snapshot) {
        Ok(report) => report,
        Err(err) => fail(format!("resume failed: {err}")),
    }
}

fn write_file(path: &str, bytes: &[u8]) {
    if let Err(err) = std::fs::write(path, bytes) {
        fail(format!("cannot write {path}: {err}"));
    }
}

fn report_json(report: &RunReport) -> String {
    serde_json::to_string(report).expect("report serialises")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Env-driven configuration (AIKIDO_PARALLEL, AIKIDO_SHARDED, …) so the
    // CI lanes can compare differently-configured processes byte for byte.
    let sim = match Simulator::from_config(SimConfig::from_env_overrides()) {
        Ok(sim) => sim,
        Err(err) => fail(format!("invalid configuration: {err}")),
    };
    let w = workload();

    match args.get(1).map(String::as_str) {
        // Phase binaries for the CI crash-recovery lane.
        Some("full") => {
            let path = args.get(2).unwrap_or_else(|| {
                fail("usage: snapshot_roundtrip full <report.json>".to_string())
            });
            let report = run_full(&sim, &w);
            write_file(path, report_json(&report).as_bytes());
            println!("wrote uninterrupted report to {path}");
        }
        Some("save") => {
            let path = args
                .get(2)
                .unwrap_or_else(|| fail("usage: snapshot_roundtrip save <snapshot>".to_string()));
            let bytes = save_midpoint(&sim, &w);
            write_file(path, &bytes);
            println!("wrote {}-byte midpoint snapshot to {path}", bytes.len());
        }
        Some("resume") => {
            let (Some(snap_path), Some(report_path)) = (args.get(2), args.get(3)) else {
                fail("usage: snapshot_roundtrip resume <snapshot> <report.json>".to_string())
            };
            let bytes = match std::fs::read(snap_path) {
                Ok(bytes) => bytes,
                Err(err) => fail(format!("cannot read {snap_path}: {err}")),
            };
            let report = resume_bytes(&sim, &w, bytes);
            write_file(report_path, report_json(&report).as_bytes());
            println!("resumed from {snap_path}; wrote final report to {report_path}");
        }
        Some(other) => fail(format!("unknown phase `{other}` (full | save | resume)")),
        // No arguments: the whole roundtrip in one process.
        None => {
            println!(
                "crash-recovery roundtrip: {} ({} threads), mode aikido, scale {}",
                w.spec().name,
                w.spec().threads,
                scale()
            );
            let uninterrupted = run_full(&sim, &w);
            println!(
                "uninterrupted: {} cycles over {} block executions",
                uninterrupted.cycles, uninterrupted.counts.block_execs
            );
            let bytes = save_midpoint(&sim, &w);
            println!(
                "midpoint checkpoint (block {}): {} bytes, checksummed",
                uninterrupted.counts.block_execs / 2,
                bytes.len()
            );
            let resumed = resume_bytes(&sim, &w, bytes);
            assert_eq!(resumed, uninterrupted, "resume diverged");
            assert_eq!(report_json(&resumed), report_json(&uninterrupted));
            println!("resumed report matches the uninterrupted run byte for byte");
        }
    }
}

//! Top-level crate of the Aikido reproduction workspace.
//!
//! The implementation lives in the `crates/` workspace members; this package
//! only hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). Downstream users should depend on the
//! [`aikido`] facade crate directly.

#![forbid(unsafe_code)]

pub use aikido;

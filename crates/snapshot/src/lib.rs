//! The checkpoint/restore snapshot plane.
//!
//! A [`Snapshot`] is a deterministic, versioned, integrity-checked binary
//! image of the simulator's state plane. The container format is
//! deliberately simple and fully validated on the way back in:
//!
//! ```text
//! magic      8 bytes   b"AIKSNAP\x01"
//! version    2 bytes   container format version, little endian
//! section*   repeated until end of buffer:
//!   tag        4 bytes   ASCII section tag (e.g. b"FTRK")
//!   version    2 bytes   section format version, little endian
//!   length     8 bytes   payload length in bytes, little endian
//!   payload    `length` bytes
//!   checksum   8 bytes   FNV-1a over tag+version+length+payload
//! ```
//!
//! Every multi-byte integer is little endian. Every section carries its own
//! FNV-1a checksum so a flipped bit anywhere — header, payload or the
//! checksum itself — is detected; the reader additionally validates the
//! magic, the container version, payload bounds (truncation), duplicate
//! tags, the expected section *sequence* (reordering), per-section versions
//! (stale headers) and trailing bytes. Any mismatch surfaces as a structured
//! [`SnapshotError`] naming the section, the absolute byte offset and the
//! reason — restore never silently replays a corrupt image.
//!
//! [`FaultPlan`] is the fault-injection harness: it mutates a *valid*
//! snapshot image in a targeted way (bit flips, truncation, section
//! reordering, duplicated sections, stale version headers) so the mutation
//! suites can prove the oracle catches 100% of injected corruptions. The
//! plans that move whole sections recompute checksums on purpose: they test
//! the sequence and version validation paths, not the checksum.
//!
//! This crate is dependency-free: it owns the container format and the
//! primitive encodings, while each component crate (vm, shadow, sharing,
//! fasttrack, dbi, sim) encodes its own state against [`SectionWriter`] /
//! [`SectionReader`].

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::error::Error;
use std::fmt;

/// First bytes of every snapshot image.
pub const MAGIC: [u8; 8] = *b"AIKSNAP\x01";

/// Container format version (bumped when the framing itself changes).
pub const CONTAINER_VERSION: u16 = 1;

/// FNV-1a offset basis (64 bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64 bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of `bytes` (the snapshot plane's integrity checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A structured restore failure: which section, where in the image, and why.
///
/// Restore returns this — never a panic, never a silently divergent replay —
/// for any corruption: checksum mismatches, truncation, reordered or
/// duplicated sections, stale versions, malformed payloads, or state that
/// does not match the workload being resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Section being decoded when the failure was detected (`"container"`
    /// for framing-level failures before any section was identified).
    pub section: String,
    /// Absolute byte offset into the snapshot image.
    pub offset: u64,
    /// Human-readable reason.
    pub reason: String,
}

impl SnapshotError {
    /// Convenience constructor.
    pub fn new(section: impl Into<String>, offset: u64, reason: impl Into<String>) -> Self {
        SnapshotError {
            section: section.into(),
            offset,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot error in section `{}` at offset {}: {}",
            self.section, self.offset, self.reason
        )
    }
}

impl Error for SnapshotError {}

/// Shorthand for results carrying a [`SnapshotError`].
pub type Result<T> = std::result::Result<T, SnapshotError>;

/// Encodes one section's payload (primitives only; composites are built from
/// them by the component crates).
#[derive(Debug)]
pub struct SectionWriter {
    tag: [u8; 4],
    version: u16,
    buf: Vec<u8>,
}

impl SectionWriter {
    /// Starts a section with the given 4-byte ASCII tag and version.
    pub fn new(tag: [u8; 4], version: u16) -> Self {
        SectionWriter {
            tag,
            version,
            buf: Vec::new(),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a usize as a little-endian u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an f64 by its IEEE-754 bit pattern (deterministic).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Payload length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Assembles a complete snapshot image: magic, container version, then every
/// finished section in order.
#[derive(Debug)]
pub struct SnapshotBuilder {
    bytes: Vec<u8>,
}

impl SnapshotBuilder {
    /// Starts a fresh image (magic + container version already framed).
    pub fn new() -> Self {
        let mut bytes = Vec::with_capacity(4096);
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        SnapshotBuilder { bytes }
    }

    /// Appends a finished section: header, payload, FNV-1a checksum.
    pub fn push(&mut self, section: SectionWriter) {
        let mut framed = Vec::with_capacity(14 + section.buf.len());
        framed.extend_from_slice(&section.tag);
        framed.extend_from_slice(&section.version.to_le_bytes());
        framed.extend_from_slice(&(section.buf.len() as u64).to_le_bytes());
        framed.extend_from_slice(&section.buf);
        let checksum = fnv1a(&framed);
        self.bytes.extend_from_slice(&framed);
        self.bytes.extend_from_slice(&checksum.to_le_bytes());
    }

    /// Finishes the image.
    pub fn finish(self) -> Snapshot {
        Snapshot { bytes: self.bytes }
    }
}

impl Default for SnapshotBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// One parsed section: its byte range in the image and its header fields.
#[derive(Debug, Clone, Copy)]
struct RawSection {
    /// Offset of the section header (the tag) in the image.
    start: usize,
    /// Offset one past the trailing checksum.
    end: usize,
    tag: [u8; 4],
    version: u16,
    /// Offset of the payload in the image.
    payload_start: usize,
    payload_len: usize,
}

impl RawSection {
    fn tag_string(&self) -> String {
        String::from_utf8_lossy(&self.tag).into_owned()
    }
}

/// A validated snapshot image.
///
/// Construction via [`SnapshotBuilder`] is trusted; construction via
/// [`Snapshot::from_bytes`] re-validates the complete framing (magic,
/// container version, section bounds, per-section checksums, duplicate
/// tags, trailing bytes) and fails with a [`SnapshotError`] on any
/// corruption. Sequence and per-section version checks happen when the
/// consumer walks the image with [`Snapshot::reader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The serialized image (what a crash-recovery lane writes to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot into its serialized image.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Parses and structurally validates a serialized image.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the magic or container version is
    /// wrong, a section is truncated, a checksum does not match, a tag
    /// appears twice, or bytes trail the last section.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Snapshot> {
        let snapshot = Snapshot { bytes };
        snapshot.parse_sections()?;
        Ok(snapshot)
    }

    /// Walks and validates the framing, returning the section table.
    fn parse_sections(&self) -> Result<Vec<RawSection>> {
        let bytes = &self.bytes;
        if bytes.len() < MAGIC.len() + 2 {
            return Err(SnapshotError::new(
                "container",
                bytes.len() as u64,
                format!(
                    "image is {} bytes, shorter than the {}-byte header",
                    bytes.len(),
                    MAGIC.len() + 2
                ),
            ));
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::new("container", 0, "bad magic"));
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != CONTAINER_VERSION {
            return Err(SnapshotError::new(
                "container",
                8,
                format!("container version {version}, expected {CONTAINER_VERSION}"),
            ));
        }
        let mut sections = Vec::new();
        let mut cursor = MAGIC.len() + 2;
        while cursor < bytes.len() {
            let start = cursor;
            if bytes.len() - cursor < 14 {
                return Err(SnapshotError::new(
                    "container",
                    cursor as u64,
                    "truncated section header",
                ));
            }
            let tag: [u8; 4] = bytes[cursor..cursor + 4].try_into().expect("4 bytes");
            let section_name = String::from_utf8_lossy(&tag).into_owned();
            let version = u16::from_le_bytes([bytes[cursor + 4], bytes[cursor + 5]]);
            let len_bytes: [u8; 8] = bytes[cursor + 6..cursor + 14].try_into().expect("8 bytes");
            let payload_len = u64::from_le_bytes(len_bytes);
            cursor += 14;
            let payload_len_usize = usize::try_from(payload_len).map_err(|_| {
                SnapshotError::new(
                    section_name.clone(),
                    (start + 6) as u64,
                    format!("payload length {payload_len} does not fit in memory"),
                )
            })?;
            if bytes.len() - cursor < payload_len_usize.saturating_add(8) {
                return Err(SnapshotError::new(
                    section_name,
                    (start + 6) as u64,
                    format!(
                        "payload length {payload_len} overruns the image \
                         ({} bytes remain)",
                        bytes.len() - cursor
                    ),
                ));
            }
            let payload_start = cursor;
            cursor += payload_len_usize;
            let stored: [u8; 8] = bytes[cursor..cursor + 8].try_into().expect("8 bytes");
            let stored = u64::from_le_bytes(stored);
            let computed = fnv1a(&bytes[start..cursor]);
            if stored != computed {
                return Err(SnapshotError::new(
                    section_name,
                    cursor as u64,
                    format!("checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
                ));
            }
            cursor += 8;
            let section = RawSection {
                start,
                end: cursor,
                tag,
                version,
                payload_start,
                payload_len: payload_len_usize,
            };
            if sections.iter().any(|s: &RawSection| s.tag == tag) {
                return Err(SnapshotError::new(
                    section.tag_string(),
                    start as u64,
                    "duplicate section tag",
                ));
            }
            sections.push(section);
        }
        if sections.is_empty() {
            return Err(SnapshotError::new(
                "container",
                cursor as u64,
                "no sections",
            ));
        }
        Ok(sections)
    }

    /// Starts walking the sections in order.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the framing is invalid (see
    /// [`Snapshot::from_bytes`]).
    pub fn reader(&self) -> Result<SnapshotReader<'_>> {
        let sections = self.parse_sections()?;
        Ok(SnapshotReader {
            snapshot: self,
            sections,
            next: 0,
        })
    }
}

/// Walks a snapshot's sections in their expected order.
///
/// The consumer states which section it expects next; a different tag at
/// that position (a reordered, duplicated or missing section) or an
/// unexpected section version (a stale header) is a [`SnapshotError`].
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    snapshot: &'a Snapshot,
    sections: Vec<RawSection>,
    next: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Opens the next section, requiring tag and version to match.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if the image holds no further section, the
    /// next section carries a different tag (reordering/duplication), or its
    /// version differs from `version` (stale header).
    pub fn section(&mut self, tag: [u8; 4], version: u16) -> Result<SectionReader<'a>> {
        let expected = String::from_utf8_lossy(&tag).into_owned();
        let Some(raw) = self.sections.get(self.next) else {
            return Err(SnapshotError::new(
                expected.clone(),
                self.snapshot.bytes.len() as u64,
                format!("image ends before section `{expected}`"),
            ));
        };
        if raw.tag != tag {
            return Err(SnapshotError::new(
                expected.clone(),
                raw.start as u64,
                format!(
                    "out-of-order section: expected `{expected}`, found `{}`",
                    raw.tag_string()
                ),
            ));
        }
        if raw.version != version {
            return Err(SnapshotError::new(
                expected,
                (raw.start + 4) as u64,
                format!(
                    "section version {} does not match expected version {version}",
                    raw.version
                ),
            ));
        }
        self.next += 1;
        Ok(SectionReader {
            section: raw.tag_string(),
            payload: &self.snapshot.bytes[raw.payload_start..raw.payload_start + raw.payload_len],
            base: raw.payload_start as u64,
            cursor: 0,
        })
    }

    /// Declares the walk complete: any remaining section is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the first unconsumed section
    /// (e.g. an injected duplicate appended to the image).
    pub fn finish(self) -> Result<()> {
        if let Some(raw) = self.sections.get(self.next) {
            return Err(SnapshotError::new(
                raw.tag_string(),
                raw.start as u64,
                "unexpected extra section after the final expected section",
            ));
        }
        Ok(())
    }
}

/// Decodes one section's payload.
///
/// Every accessor advances a cursor and fails with a [`SnapshotError`]
/// (carrying the absolute image offset) on underrun; [`SectionReader::finish`]
/// fails if payload bytes remain, so a payload can never be silently
/// over- or under-consumed.
#[derive(Debug)]
pub struct SectionReader<'a> {
    section: String,
    payload: &'a [u8],
    /// Absolute offset of the payload in the image (for error reporting).
    base: u64,
    cursor: usize,
}

impl SectionReader<'_> {
    fn err(&self, reason: impl Into<String>) -> SnapshotError {
        SnapshotError::new(self.section.clone(), self.base + self.cursor as u64, reason)
    }

    /// Name of the section being decoded (for building domain-level
    /// [`SnapshotError`]s in component decoders).
    pub fn section_name(&self) -> &str {
        &self.section
    }

    /// Absolute image offset of the cursor (for building domain-level
    /// [`SnapshotError`]s in component decoders).
    pub fn offset(&self) -> u64 {
        self.base + self.cursor as u64
    }

    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.payload.len() - self.cursor < n {
            return Err(self.err(format!(
                "payload underrun: need {n} bytes, {} remain",
                self.payload.len() - self.cursor
            )));
        }
        let slice = &self.payload[self.cursor..self.cursor + n];
        self.cursor += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (must be exactly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(self.err(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a usize (stored as u64).
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.err(format!("value {v} does not fit in usize")))
    }

    /// Reads an f64 from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| {
            SnapshotError::new(
                self.section.clone(),
                self.base + self.cursor as u64,
                format!("invalid UTF-8 in string: {e}"),
            )
        })
    }

    /// Reads a length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.get_usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.cursor
    }

    /// Declares the payload fully consumed; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] if payload bytes remain.
    pub fn finish(self) -> Result<()> {
        if self.cursor != self.payload.len() {
            return Err(self.err(format!(
                "{} trailing bytes after the payload's last field",
                self.payload.len() - self.cursor
            )));
        }
        Ok(())
    }
}

/// One targeted corruption of a valid snapshot image — the fault-injection
/// harness the mutation suites drive.
///
/// `BitFlip` and `Truncate` exercise the checksum and bounds validation;
/// `SwapSections`, `DuplicateSection` and `BumpVersion` *recompute*
/// checksums where needed so the framing stays checksum-valid — they
/// exercise the sequence and version validation paths specifically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlan {
    /// Flips one bit at a byte offset in the image.
    BitFlip {
        /// Byte offset into the image (taken modulo the image length).
        offset: usize,
        /// Bit index 0..=7.
        bit: u8,
    },
    /// Truncates the image to `len` bytes (taken modulo the image length,
    /// so the result is always a strict prefix).
    Truncate {
        /// Length of the surviving prefix.
        len: usize,
    },
    /// Swaps two whole sections (checksums stay valid; the sequence check
    /// must catch it). Indices are taken modulo the section count.
    SwapSections {
        /// First section index.
        a: usize,
        /// Second section index.
        b: usize,
    },
    /// Appends a byte-exact copy of one section at the end of the image
    /// (checksum-valid; the duplicate-tag check must catch it).
    DuplicateSection {
        /// Section index, taken modulo the section count.
        index: usize,
    },
    /// Rewrites one section's version header to a stale value and fixes up
    /// its checksum (the version check must catch it).
    BumpVersion {
        /// Section index, taken modulo the section count.
        index: usize,
    },
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlan::BitFlip { offset, bit } => write!(f, "bit-flip offset {offset} bit {bit}"),
            FaultPlan::Truncate { len } => write!(f, "truncate to {len} bytes"),
            FaultPlan::SwapSections { a, b } => write!(f, "swap sections {a} and {b}"),
            FaultPlan::DuplicateSection { index } => write!(f, "duplicate section {index}"),
            FaultPlan::BumpVersion { index } => write!(f, "stale version on section {index}"),
        }
    }
}

impl FaultPlan {
    /// Applies the corruption to a serialized snapshot image.
    ///
    /// Returns `None` when the plan cannot produce a corrupt image from this
    /// input (a `SwapSections` whose two indices resolve to the same
    /// section, or an input too malformed to parse for the section-level
    /// plans). The returned image is guaranteed to differ from the input.
    pub fn apply(&self, image: &[u8]) -> Option<Vec<u8>> {
        match *self {
            FaultPlan::BitFlip { offset, bit } => {
                if image.is_empty() {
                    return None;
                }
                let mut out = image.to_vec();
                let at = offset % out.len();
                out[at] ^= 1 << (bit % 8);
                Some(out)
            }
            FaultPlan::Truncate { len } => {
                if image.is_empty() {
                    return None;
                }
                let keep = len % image.len();
                Some(image[..keep].to_vec())
            }
            FaultPlan::SwapSections { a, b } => {
                let sections = parse_for_injection(image)?;
                let (a, b) = (a % sections.len(), b % sections.len());
                if a == b {
                    return None;
                }
                let (first, second) = if a < b { (a, b) } else { (b, a) };
                let (fa, fb) = (&sections[first], &sections[second]);
                let mut out = Vec::with_capacity(image.len());
                out.extend_from_slice(&image[..fa.start]);
                out.extend_from_slice(&image[fb.start..fb.end]);
                out.extend_from_slice(&image[fa.end..fb.start]);
                out.extend_from_slice(&image[fa.start..fa.end]);
                out.extend_from_slice(&image[fb.end..]);
                Some(out)
            }
            FaultPlan::DuplicateSection { index } => {
                let sections = parse_for_injection(image)?;
                let raw = &sections[index % sections.len()];
                let mut out = image.to_vec();
                out.extend_from_slice(&image[raw.start..raw.end]);
                Some(out)
            }
            FaultPlan::BumpVersion { index } => {
                let sections = parse_for_injection(image)?;
                let raw = sections[index % sections.len()];
                let mut out = image.to_vec();
                let stale = raw.version.wrapping_add(1);
                out[raw.start + 4..raw.start + 6].copy_from_slice(&stale.to_le_bytes());
                // Fix the checksum so only the version validation can catch
                // this corruption.
                let checksum = fnv1a(&out[raw.start..raw.end - 8]);
                out[raw.end - 8..raw.end].copy_from_slice(&checksum.to_le_bytes());
                Some(out)
            }
        }
    }
}

/// Parses the section table of a *valid* image for fault injection.
fn parse_for_injection(image: &[u8]) -> Option<Vec<RawSection>> {
    let snapshot = Snapshot {
        bytes: image.to_vec(),
    };
    snapshot.parse_sections().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut builder = SnapshotBuilder::new();
        let mut a = SectionWriter::new(*b"AAAA", 1);
        a.put_u64(0xdead_beef);
        a.put_str("hello");
        a.put_bool(true);
        builder.push(a);
        let mut b = SectionWriter::new(*b"BBBB", 3);
        b.put_u32(7);
        b.put_f64(1.5);
        builder.push(b);
        builder.finish()
    }

    fn read_back(snapshot: &Snapshot) -> Result<()> {
        let mut reader = snapshot.reader()?;
        let mut a = reader.section(*b"AAAA", 1)?;
        assert_eq!(a.get_u64()?, 0xdead_beef);
        assert_eq!(a.get_str()?, "hello");
        assert!(a.get_bool()?);
        a.finish()?;
        let mut b = reader.section(*b"BBBB", 3)?;
        assert_eq!(b.get_u32()?, 7);
        assert_eq!(b.get_f64()?, 1.5);
        b.finish()?;
        reader.finish()
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let snapshot = sample();
        read_back(&snapshot).expect("clean image reads back");
        let reparsed = Snapshot::from_bytes(snapshot.as_bytes().to_vec()).expect("valid image");
        read_back(&reparsed).expect("reparsed image reads back");
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let snapshot = sample();
        let image = snapshot.as_bytes();
        for offset in 0..image.len() {
            for bit in 0..8 {
                let corrupted = FaultPlan::BitFlip { offset, bit }
                    .apply(image)
                    .expect("non-empty image");
                let outcome = Snapshot::from_bytes(corrupted).and_then(|s| read_back(&s));
                assert!(
                    outcome.is_err(),
                    "bit flip at offset {offset} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let snapshot = sample();
        let image = snapshot.as_bytes();
        for len in 0..image.len() {
            let corrupted = FaultPlan::Truncate { len }.apply(image).expect("non-empty");
            let outcome = Snapshot::from_bytes(corrupted).and_then(|s| read_back(&s));
            assert!(
                outcome.is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn reordered_sections_are_detected_by_the_sequence_check() {
        let snapshot = sample();
        let corrupted = FaultPlan::SwapSections { a: 0, b: 1 }
            .apply(snapshot.as_bytes())
            .expect("two sections");
        // The framing itself stays checksum-valid…
        let reparsed = Snapshot::from_bytes(corrupted).expect("checksums intact");
        // …so only the expected-sequence walk can catch it.
        let err = read_back(&reparsed).expect_err("reorder detected");
        assert!(err.reason.contains("out-of-order"), "{err}");
    }

    #[test]
    fn duplicated_sections_are_detected() {
        let snapshot = sample();
        let corrupted = FaultPlan::DuplicateSection { index: 0 }
            .apply(snapshot.as_bytes())
            .expect("sections exist");
        let outcome = Snapshot::from_bytes(corrupted);
        assert!(outcome.is_err(), "duplicate tag must fail structural parse");
    }

    #[test]
    fn stale_version_headers_are_detected() {
        let snapshot = sample();
        let corrupted = FaultPlan::BumpVersion { index: 1 }
            .apply(snapshot.as_bytes())
            .expect("sections exist");
        let reparsed = Snapshot::from_bytes(corrupted).expect("checksum was fixed up");
        let err = read_back(&reparsed).expect_err("version mismatch detected");
        assert!(err.reason.contains("version"), "{err}");
    }

    #[test]
    fn over_and_under_consumption_are_errors() {
        let mut builder = SnapshotBuilder::new();
        let mut s = SectionWriter::new(*b"ONLY", 1);
        s.put_u32(9);
        builder.push(s);
        let snapshot = builder.finish();

        // Under-consumption: finish() with bytes left.
        let mut reader = snapshot.reader().unwrap();
        let section = reader.section(*b"ONLY", 1).unwrap();
        assert!(section.finish().is_err());

        // Over-consumption: reading past the payload.
        let mut reader = snapshot.reader().unwrap();
        let mut section = reader.section(*b"ONLY", 1).unwrap();
        section.get_u32().unwrap();
        assert!(section.get_u8().is_err());
    }

    #[test]
    fn errors_carry_section_offset_and_reason() {
        let err = SnapshotError::new("FTRK", 42, "checksum mismatch");
        assert_eq!(err.section, "FTRK");
        assert_eq!(err.offset, 42);
        let shown = err.to_string();
        assert!(shown.contains("FTRK") && shown.contains("42"), "{shown}");
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn empty_and_garbage_images_are_rejected() {
        assert!(Snapshot::from_bytes(Vec::new()).is_err());
        assert!(Snapshot::from_bytes(vec![0; 64]).is_err());
        let header_only = {
            let mut v = MAGIC.to_vec();
            v.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
            v
        };
        let err = Snapshot::from_bytes(header_only).expect_err("no sections");
        assert!(err.reason.contains("no sections"), "{err}");
    }
}

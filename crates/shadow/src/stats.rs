//! Shadow-memory statistics.

use serde::{Deserialize, Serialize};

/// Counters for shadow translations and the cache levels that served them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShadowStats {
    /// Total translations performed.
    pub translations: u64,
    /// Translations served by the inline memoization cache.
    pub inline_hits: u64,
    /// Translations served by a thread-local cache.
    pub thread_local_hits: u64,
    /// Translations that required the full region lookup.
    pub full_lookups: u64,
}

impl ShadowStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of translations served by the inline cache, in `[0, 1]`.
    pub fn inline_hit_rate(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.inline_hits as f64 / self.translations as f64
        }
    }

    /// Adds another set of statistics to this one.
    pub fn merge(&mut self, other: &ShadowStats) {
        self.translations += other.translations;
        self.inline_hits += other.inline_hits;
        self.thread_local_hits += other.thread_local_hits;
        self.full_lookups += other.full_lookups;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_translations() {
        assert_eq!(ShadowStats::new().inline_hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_is_fraction_of_total() {
        let s = ShadowStats {
            translations: 10,
            inline_hits: 7,
            thread_local_hits: 2,
            full_lookups: 1,
        };
        assert!((s.inline_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ShadowStats {
            translations: 1,
            inline_hits: 1,
            ..ShadowStats::new()
        };
        a.merge(&ShadowStats {
            translations: 2,
            full_lookups: 2,
            ..ShadowStats::new()
        });
        assert_eq!(a.translations, 3);
        assert_eq!(a.full_lookups, 2);
        assert_eq!(a.inline_hits, 1);
    }
}

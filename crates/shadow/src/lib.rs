//! Umbra-style shadow memory (§2.2), extended the way Aikido extends it
//! (§3.3.1): every application address translates to **two** shadow
//! addresses — one holding analysis metadata and one *mirror* address that
//! aliases the same physical memory as the application page but is never
//! protected by the sharing detector.
//!
//! Umbra's key observation is that application memory is sparsely populated:
//! a handful of densely populated regions (stack, heap, data, code). Each
//! registered [`Region`] gets a per-region displacement into a reserved
//! shadow area, so translation is a single add once the region is known.
//! Finding the region is the expensive part, so Umbra layers caches in front
//! of the full lookup: an inline memoization cache patched into the
//! instrumented code, then small thread-local caches, then the full region
//! table walk. [`TranslationCache`] models those layers and reports which one
//! hit so the simulator can charge the right cost.
//!
//! Metadata storage comes in two flavours. [`ShadowStore`] is the generic
//! typed store (a chunked slab of `Option<T>` slots, keyed by application
//! address at a configurable granularity). [`ShadowSlabs`] is the *packed*
//! metadata plane: page-granular dense slabs of raw 64-bit
//! [`aikido_types::ShadowWord`]s whose directory is resolved **once per
//! run** of same-page accesses — the address→slab half of the unified
//! translation whose pricing half is [`TranslationCache::access_run`]. One
//! lookup per run prices the model, one resolves the real metadata; the
//! sharing detector's page-state table keys the same directory structure by
//! page number so both planes agree on one page-indexed layout.
//!
//! # Examples
//!
//! ```
//! use aikido_shadow::{DualShadow, RegionKind};
//! use aikido_types::Addr;
//!
//! # fn main() -> aikido_types::Result<()> {
//! let mut shadow = DualShadow::new();
//! let region = shadow.register_region(Addr::new(0x10_0000), 16, RegionKind::Heap)?;
//! let app = Addr::new(0x10_0040);
//! let meta = shadow.metadata_addr(app)?;
//! let mirror = shadow.mirror_addr(app)?;
//! assert_ne!(meta, app);
//! assert_ne!(mirror, app);
//! // Translation preserves the offset within the region.
//! assert_eq!(mirror.raw() - shadow.mirror_base(region)?.raw(), 0x40);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cache;
mod dual;
mod region;
mod slabs;
mod stats;
mod store;

pub use cache::{CacheLevel, RunLevels, TranslationCache};
pub use dual::DualShadow;
pub use region::{Region, RegionId, RegionKind, RegionTable};
pub use slabs::ShadowSlabs;
pub use stats::ShadowStats;
pub use store::ShadowStore;

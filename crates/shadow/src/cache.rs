//! The layered translation caches Umbra places in front of the full region
//! lookup (§2.2).
//!
//! In the real system the first level is an inline memoization cache patched
//! into the instrumented application code (one entry per instrumented
//! instruction), followed by small thread-local caches consulted in a lean
//! procedure, and finally a full lookup requiring a complete context switch.
//! The simulation models one inline entry per *static instruction* and one
//! small FIFO of recently used regions per thread; everything else is a full
//! lookup. The [`CacheLevel`] returned for each translation lets the cost
//! model charge the right number of cycles.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use aikido_types::{InstrId, ThreadId};

use crate::region::RegionId;
use crate::stats::ShadowStats;

/// Which level of the translation machinery satisfied a lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// The inline memoization cache embedded at the instrumented instruction.
    Inline,
    /// A thread-local cache consulted without a full context switch.
    ThreadLocal,
    /// The full region-table lookup.
    Full,
}

/// Per-thread, per-instruction translation cache model.
#[derive(Debug, Default)]
pub struct TranslationCache {
    /// instruction -> last region it translated (the inline cache).
    inline: HashMap<(ThreadId, InstrId), RegionId>,
    /// thread -> recently used regions (the thread-local caches).
    recent: HashMap<ThreadId, Vec<RegionId>>,
    stats: ShadowStats,
    thread_local_entries: usize,
}

impl TranslationCache {
    /// Default number of entries in the thread-local cache.
    pub const DEFAULT_THREAD_LOCAL_ENTRIES: usize = 8;

    /// Creates a cache with the default thread-local capacity.
    pub fn new() -> Self {
        Self::with_thread_local_entries(Self::DEFAULT_THREAD_LOCAL_ENTRIES)
    }

    /// Creates a cache with `entries` thread-local slots per thread.
    pub fn with_thread_local_entries(entries: usize) -> Self {
        TranslationCache {
            inline: HashMap::new(),
            recent: HashMap::new(),
            stats: ShadowStats::default(),
            thread_local_entries: entries.max(1),
        }
    }

    /// Records a translation of `instr` on `thread` resolving to `region` and
    /// returns which cache level satisfied it.
    pub fn access(&mut self, thread: ThreadId, instr: InstrId, region: RegionId) -> CacheLevel {
        self.stats.translations += 1;
        let key = (thread, instr);
        let level = if self.inline.get(&key) == Some(&region) {
            self.stats.inline_hits += 1;
            CacheLevel::Inline
        } else if self
            .recent
            .get(&thread)
            .map(|v| v.contains(&region))
            .unwrap_or(false)
        {
            self.stats.thread_local_hits += 1;
            CacheLevel::ThreadLocal
        } else {
            self.stats.full_lookups += 1;
            CacheLevel::Full
        };

        // Update both levels (the real system installs the result in the
        // inline cache and the thread-local caches on the way out).
        self.inline.insert(key, region);
        let recent = self.recent.entry(thread).or_default();
        if let Some(pos) = recent.iter().position(|&r| r == region) {
            recent.remove(pos);
        }
        recent.push(region);
        if recent.len() > self.thread_local_entries {
            recent.remove(0);
        }
        level
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ShadowStats {
        &self.stats
    }

    /// Drops every cached entry (used when the code cache is flushed).
    pub fn flush(&mut self) {
        self.inline.clear();
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::BlockId;

    fn instr(n: u16) -> InstrId {
        InstrId::new(BlockId::new(1), n)
    }

    #[test]
    fn repeated_translation_by_same_instruction_hits_inline() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Full);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Inline);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Inline);
        assert_eq!(c.stats().inline_hits, 2);
        assert_eq!(c.stats().full_lookups, 1);
    }

    #[test]
    fn different_instruction_same_region_hits_thread_local() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(3));
        assert_eq!(
            c.access(t, instr(1), RegionId::new(3)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn region_change_misses_inline_cache() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        assert_eq!(c.access(t, instr(0), RegionId::new(1)), CacheLevel::Full);
        // Flip-flopping between regions keeps missing inline but hits the
        // thread-local cache once both regions are recent.
        assert_eq!(
            c.access(t, instr(0), RegionId::new(0)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn caches_are_per_thread() {
        let mut c = TranslationCache::new();
        c.access(ThreadId::new(0), instr(0), RegionId::new(0));
        assert_eq!(
            c.access(ThreadId::new(1), instr(0), RegionId::new(0)),
            CacheLevel::Full
        );
    }

    #[test]
    fn thread_local_cache_evicts_in_fifo_order() {
        let mut c = TranslationCache::with_thread_local_entries(2);
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        c.access(t, instr(1), RegionId::new(1));
        c.access(t, instr(2), RegionId::new(2)); // evicts region 0
        assert_eq!(c.access(t, instr(3), RegionId::new(0)), CacheLevel::Full);
        assert_eq!(
            c.access(t, instr(4), RegionId::new(2)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        c.flush();
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Full);
    }
}

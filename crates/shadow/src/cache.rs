//! The layered translation caches Umbra places in front of the full region
//! lookup (§2.2).
//!
//! In the real system the first level is an inline memoization cache patched
//! into the instrumented application code (one entry per instrumented
//! instruction), followed by small thread-local caches consulted in a lean
//! procedure, and finally a full lookup requiring a complete context switch.
//! The simulation models one inline entry per *static instruction* and one
//! small FIFO of recently used regions per thread; everything else is a full
//! lookup. The [`CacheLevel`] returned for each translation lets the cost
//! model charge the right number of cycles.
//!
//! Because `access` runs once per instrumented memory access, the cache is
//! stored as per-thread lanes indexed by [`ThreadId::index`], with the inline
//! level a flat [`ChunkMap`] keyed by `(block, instruction)` — no hashing on
//! the hot path.

use serde::{Deserialize, Serialize};

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{ChunkMap, InstrId, ThreadId};

use crate::region::RegionId;
use crate::stats::ShadowStats;

/// Which level of the translation machinery satisfied a lookup.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// The inline memoization cache embedded at the instrumented instruction.
    Inline,
    /// A thread-local cache consulted without a full context switch.
    ThreadLocal,
    /// The full region-table lookup.
    Full,
}

/// A dense-table entry that can never match a real region (the table stores
/// region ids as bytes; regions with larger ids use the spill map).
const INLINE_EMPTY: u8 = u8::MAX;

/// Dense inline-cache keys below this bound live in a flat, directly indexed
/// table; the rare wider key falls back to the chunked map.
const DENSE_INLINE_KEYS: u64 = 1 << 20;

/// One thread's view of the translation machinery.
#[derive(Debug, Default)]
struct ThreadLane {
    /// Static instruction → raw id of the last region it translated (the
    /// inline cache), directly indexed by the dense instruction key — one
    /// load and one compare on the per-access hot path. Entries are single
    /// bytes so the whole table stays cache-resident (the probe pattern is
    /// random across instructions, so footprint *is* the probe cost);
    /// region ids ≥ 255 — workloads have a handful of regions — spill.
    inline_dense: Vec<u8>,
    /// Inline entries whose key falls outside the dense table (blocks with
    /// huge ids or more than 64 instructions) or whose region id does not
    /// fit a byte; never on real workloads.
    inline_spill: ChunkMap<RegionId>,
    /// Recently used regions (the thread-local caches), most recent last.
    recent: Vec<RegionId>,
}

/// Dense `u64` key for a static instruction. Blocks rarely exceed a few
/// dozen instructions, so packing 64 indices per block keeps many blocks'
/// entries in one leaf chunk (good locality); the rare wider block moves to
/// a disjoint high key range. Injective for every representable id: the
/// narrow range tops out at 2^38 (u32 block << 6), the wide range occupies
/// bit 62 | block << 16 | u16 index, so the two can never meet.
#[inline]
fn instr_key(instr: InstrId) -> u64 {
    let (block, index) = (instr.block().raw() as u64, instr.index() as u64);
    if index < 64 {
        (block << 6) | index
    } else {
        (1 << 62) | (block << 16) | index
    }
}

/// Thread indices below this bound get a dense lane; beyond it (never in
/// practice — workload thread ids are sequential) lanes spill into a scanned
/// list, bounding the allocation against pathological ids.
const MAX_DENSE_LANES: usize = 1 << 16;

/// Per-level hit counts of one run of translations (see
/// [`TranslationCache::access_run`]). The caller prices each level once and
/// multiplies, which charges exactly what the per-access loop would.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct RunLevels {
    /// Accesses satisfied by the inline memoization cache.
    pub inline: u64,
    /// Accesses satisfied by a thread-local cache.
    pub thread_local: u64,
    /// Accesses requiring the full region-table lookup.
    pub full: u64,
}

impl RunLevels {
    /// Total translations in the run.
    pub fn total(&self) -> u64 {
        self.inline + self.thread_local + self.full
    }
}

/// Resolves (creating if necessary) the lane of thread index `idx`. A free
/// function over the two lane fields so callers can hold the lane across a
/// run while still updating the cache's statistics (disjoint borrows).
#[inline]
fn lane_mut<'a>(
    lanes: &'a mut Vec<ThreadLane>,
    spill_lanes: &'a mut Vec<(usize, ThreadLane)>,
    idx: usize,
) -> &'a mut ThreadLane {
    if idx < MAX_DENSE_LANES {
        if idx >= lanes.len() {
            lanes.resize_with(idx + 1, ThreadLane::default);
        }
        &mut lanes[idx]
    } else {
        match spill_lanes.iter().position(|(i, _)| *i == idx) {
            Some(pos) => &mut spill_lanes[pos].1,
            None => {
                spill_lanes.push((idx, ThreadLane::default()));
                &mut spill_lanes.last_mut().expect("just pushed").1
            }
        }
    }
}

/// One translation against an already-resolved lane: the exact per-access
/// semantics of [`TranslationCache::access`] minus the lane lookup, shared by
/// the scalar and the batched entry points so the two cannot drift apart.
#[inline]
fn probe_one(
    lane: &mut ThreadLane,
    stats: &mut ShadowStats,
    capacity: usize,
    instr: InstrId,
    region: RegionId,
) -> CacheLevel {
    let key = instr_key(instr);
    let level = if key < DENSE_INLINE_KEYS {
        let key = key as usize;
        if key >= lane.inline_dense.len() {
            lane.inline_dense.resize(key + 1, INLINE_EMPTY);
        }
        let slot = &mut lane.inline_dense[key];
        if u32::from(*slot) == region.raw() && *slot != INLINE_EMPTY {
            stats.inline_hits += 1;
            CacheLevel::Inline
        } else {
            let level = if lane.recent.contains(&region) {
                stats.thread_local_hits += 1;
                CacheLevel::ThreadLocal
            } else {
                stats.full_lookups += 1;
                CacheLevel::Full
            };
            // Install the result in the inline cache on the way out. A
            // region id too large for a byte (255+ registered regions;
            // never on real workloads) records as "empty", i.e. the
            // entry keeps missing rather than aliasing another region.
            *slot = if region.raw() < u32::from(INLINE_EMPTY) {
                region.raw() as u8
            } else {
                INLINE_EMPTY
            };
            level
        }
    } else {
        match lane.inline_spill.get_mut(key) {
            Some(slot) if *slot == region => {
                stats.inline_hits += 1;
                CacheLevel::Inline
            }
            slot => {
                let level = if lane.recent.contains(&region) {
                    stats.thread_local_hits += 1;
                    CacheLevel::ThreadLocal
                } else {
                    stats.full_lookups += 1;
                    CacheLevel::Full
                };
                match slot {
                    Some(slot) => *slot = region,
                    None => {
                        lane.inline_spill.insert(key, region);
                    }
                }
                level
            }
        }
    };

    // Move the region to the back of the thread-local FIFO; when it is
    // already the most recent entry the reorder is a no-op, so skip it.
    if lane.recent.last() != Some(&region) {
        if let Some(pos) = lane.recent.iter().position(|&r| r == region) {
            lane.recent.remove(pos);
        }
        lane.recent.push(region);
        if lane.recent.len() > capacity {
            lane.recent.remove(0);
        }
    }
    level
}

/// Per-thread, per-instruction translation cache model.
#[derive(Debug, Default)]
pub struct TranslationCache {
    lanes: Vec<ThreadLane>,
    /// Lanes for out-of-range thread indices, keyed by index.
    spill_lanes: Vec<(usize, ThreadLane)>,
    stats: ShadowStats,
    thread_local_entries: usize,
}

impl TranslationCache {
    /// Default number of entries in the thread-local cache.
    pub const DEFAULT_THREAD_LOCAL_ENTRIES: usize = 8;

    /// Creates a cache with the default thread-local capacity.
    pub fn new() -> Self {
        Self::with_thread_local_entries(Self::DEFAULT_THREAD_LOCAL_ENTRIES)
    }

    /// Creates a cache with `entries` thread-local slots per thread.
    pub fn with_thread_local_entries(entries: usize) -> Self {
        TranslationCache {
            lanes: Vec::new(),
            spill_lanes: Vec::new(),
            stats: ShadowStats::default(),
            thread_local_entries: entries.max(1),
        }
    }

    /// Records a translation of `instr` on `thread` resolving to `region` and
    /// returns which cache level satisfied it.
    #[inline]
    pub fn access(&mut self, thread: ThreadId, instr: InstrId, region: RegionId) -> CacheLevel {
        self.stats.translations += 1;
        let capacity = self.thread_local_entries;
        let lane = lane_mut(&mut self.lanes, &mut self.spill_lanes, thread.index());
        probe_one(lane, &mut self.stats, capacity, instr, region)
    }

    /// Records a *run* of translations — consecutive accesses by `thread`
    /// resolving to the same `region` — and returns how many hit each cache
    /// level. Semantically identical to calling [`TranslationCache::access`]
    /// once per instruction (same state evolution, same statistics, in the
    /// same order); the run entry point exists so the lane lookup happens
    /// once per run instead of once per access, which is the per-access
    /// translation-model cost the batched block kernels eliminate.
    pub fn access_run(
        &mut self,
        thread: ThreadId,
        region: RegionId,
        instrs: impl IntoIterator<Item = InstrId>,
    ) -> RunLevels {
        let mut levels = RunLevels::default();
        let capacity = self.thread_local_entries;
        let lane = lane_mut(&mut self.lanes, &mut self.spill_lanes, thread.index());
        for instr in instrs {
            self.stats.translations += 1;
            match probe_one(lane, &mut self.stats, capacity, instr, region) {
                CacheLevel::Inline => levels.inline += 1,
                CacheLevel::ThreadLocal => levels.thread_local += 1,
                CacheLevel::Full => levels.full += 1,
            }
        }
        levels
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ShadowStats {
        &self.stats
    }

    /// Drops every cached entry (used when the code cache is flushed).
    pub fn flush(&mut self) {
        self.lanes.clear();
        self.spill_lanes.clear();
    }

    /// Serializes every cache lane (inline tables, spill maps, thread-local
    /// FIFOs, in order), the statistics and the configured FIFO capacity into
    /// a snapshot section. The cache layers are *stateful* accelerators —
    /// which level serves an access decides its simulated cost — so restoring
    /// them exactly is required for resume-equivalence.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        let put_lane = |out: &mut SectionWriter, lane: &ThreadLane| {
            out.put_bytes(&lane.inline_dense);
            out.put_usize(lane.inline_spill.len());
            for (key, region) in lane.inline_spill.iter() {
                out.put_u64(key);
                out.put_u32(region.raw());
            }
            out.put_usize(lane.recent.len());
            for region in &lane.recent {
                out.put_u32(region.raw());
            }
        };
        out.put_usize(self.lanes.len());
        for lane in &self.lanes {
            put_lane(out, lane);
        }
        out.put_usize(self.spill_lanes.len());
        for (idx, lane) in &self.spill_lanes {
            out.put_usize(*idx);
            put_lane(out, lane);
        }
        out.put_u64(self.stats.translations);
        out.put_u64(self.stats.inline_hits);
        out.put_u64(self.stats.thread_local_hits);
        out.put_u64(self.stats.full_lookups);
        out.put_usize(self.thread_local_entries);
    }

    /// Rebuilds a cache from a section written by
    /// [`TranslationCache::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed payload.
    pub fn decode_snapshot(
        r: &mut SectionReader<'_>,
    ) -> std::result::Result<TranslationCache, SnapshotError> {
        fn get_lane(r: &mut SectionReader<'_>) -> std::result::Result<ThreadLane, SnapshotError> {
            let inline_dense = r.get_bytes()?;
            let mut inline_spill = ChunkMap::new();
            let spill_count = r.get_usize()?;
            for _ in 0..spill_count {
                let key = r.get_u64()?;
                let region = RegionId::new(r.get_u32()?);
                inline_spill.insert(key, region);
            }
            let recent_count = r.get_usize()?;
            let mut recent = Vec::with_capacity(recent_count.min(1 << 10));
            for _ in 0..recent_count {
                recent.push(RegionId::new(r.get_u32()?));
            }
            Ok(ThreadLane {
                inline_dense,
                inline_spill,
                recent,
            })
        }
        let lane_count = r.get_usize()?;
        let mut lanes = Vec::with_capacity(lane_count.min(1 << 10));
        for _ in 0..lane_count {
            lanes.push(get_lane(r)?);
        }
        let spill_lane_count = r.get_usize()?;
        let mut spill_lanes = Vec::with_capacity(spill_lane_count.min(1 << 10));
        for _ in 0..spill_lane_count {
            let idx = r.get_usize()?;
            spill_lanes.push((idx, get_lane(r)?));
        }
        let mut stats = ShadowStats::new();
        stats.translations = r.get_u64()?;
        stats.inline_hits = r.get_u64()?;
        stats.thread_local_hits = r.get_u64()?;
        stats.full_lookups = r.get_u64()?;
        let thread_local_entries = r.get_usize()?;
        if thread_local_entries == 0 {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                "thread-local capacity must be at least 1".to_string(),
            ));
        }
        Ok(TranslationCache {
            lanes,
            spill_lanes,
            stats,
            thread_local_entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::BlockId;

    fn instr(n: u16) -> InstrId {
        InstrId::new(BlockId::new(1), n)
    }

    #[test]
    fn repeated_translation_by_same_instruction_hits_inline() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Full);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Inline);
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Inline);
        assert_eq!(c.stats().inline_hits, 2);
        assert_eq!(c.stats().full_lookups, 1);
    }

    #[test]
    fn different_instruction_same_region_hits_thread_local() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(3));
        assert_eq!(
            c.access(t, instr(1), RegionId::new(3)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn region_change_misses_inline_cache() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        assert_eq!(c.access(t, instr(0), RegionId::new(1)), CacheLevel::Full);
        // Flip-flopping between regions keeps missing inline but hits the
        // thread-local cache once both regions are recent.
        assert_eq!(
            c.access(t, instr(0), RegionId::new(0)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn caches_are_per_thread() {
        let mut c = TranslationCache::new();
        c.access(ThreadId::new(0), instr(0), RegionId::new(0));
        assert_eq!(
            c.access(ThreadId::new(1), instr(0), RegionId::new(0)),
            CacheLevel::Full
        );
    }

    #[test]
    fn thread_local_cache_evicts_in_fifo_order() {
        let mut c = TranslationCache::with_thread_local_entries(2);
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        c.access(t, instr(1), RegionId::new(1));
        c.access(t, instr(2), RegionId::new(2)); // evicts region 0
        assert_eq!(c.access(t, instr(3), RegionId::new(0)), CacheLevel::Full);
        assert_eq!(
            c.access(t, instr(4), RegionId::new(2)),
            CacheLevel::ThreadLocal
        );
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        c.access(t, instr(0), RegionId::new(0));
        c.flush();
        assert_eq!(c.access(t, instr(0), RegionId::new(0)), CacheLevel::Full);
    }

    #[test]
    fn wide_instruction_indices_spill_out_of_the_dense_table() {
        // Index ≥ 64 maps to the high key range, beyond the dense table.
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        let wide = InstrId::new(BlockId::new(2), 907);
        assert_eq!(c.access(t, wide, RegionId::new(4)), CacheLevel::Full);
        assert_eq!(c.access(t, wide, RegionId::new(4)), CacheLevel::Inline);
        assert_eq!(c.access(t, wide, RegionId::new(5)), CacheLevel::Full);
        assert_eq!(
            c.access(t, wide, RegionId::new(4)),
            CacheLevel::ThreadLocal,
            "region change misses inline but region 4 is still recent"
        );
        c.flush();
        assert_eq!(c.access(t, wide, RegionId::new(4)), CacheLevel::Full);
    }

    #[test]
    fn access_run_is_identical_to_the_per_access_loop() {
        // Drive the same interleaving — cold lane, inline hits, region
        // flips, FIFO eviction, wide-key spill — through both entry points
        // and require identical levels, stats, and subsequent behaviour.
        let runs: Vec<(u32, Vec<InstrId>, RegionId)> = vec![
            (0, (0..6).map(instr).collect(), RegionId::new(0)),
            (0, (0..6).map(instr).collect(), RegionId::new(0)),
            (0, (2..9).map(instr).collect(), RegionId::new(1)),
            (1, (0..3).map(instr).collect(), RegionId::new(2)),
            (
                0,
                vec![InstrId::new(BlockId::new(2), 907), instr(0), instr(1)],
                RegionId::new(0),
            ),
        ];
        let mut scalar = TranslationCache::with_thread_local_entries(2);
        let mut batched = TranslationCache::with_thread_local_entries(2);
        for (t, instrs, region) in &runs {
            let thread = ThreadId::new(*t);
            let mut expected = RunLevels::default();
            for &i in instrs {
                match scalar.access(thread, i, *region) {
                    CacheLevel::Inline => expected.inline += 1,
                    CacheLevel::ThreadLocal => expected.thread_local += 1,
                    CacheLevel::Full => expected.full += 1,
                }
            }
            let got = batched.access_run(thread, *region, instrs.iter().copied());
            assert_eq!(got, expected);
            assert_eq!(got.total(), instrs.len() as u64);
            assert_eq!(batched.stats(), scalar.stats());
        }
        // An empty run is a no-op.
        let before = *batched.stats();
        let got = batched.access_run(ThreadId::new(0), RegionId::new(0), std::iter::empty());
        assert_eq!(got, RunLevels::default());
        assert_eq!(*batched.stats(), before);
    }

    #[test]
    fn snapshot_roundtrip_preserves_cache_levels() {
        let mut c = TranslationCache::with_thread_local_entries(2);
        for t in 0..3u32 {
            for i in 0..8u16 {
                c.access(ThreadId::new(t), instr(i), RegionId::new(u32::from(i) % 3));
            }
        }
        // A wide-key spill entry too.
        c.access(
            ThreadId::new(0),
            InstrId::new(BlockId::new(2), 907),
            RegionId::new(1),
        );

        let mut w = aikido_snapshot::SectionWriter::new(*b"TCCH", 1);
        c.encode_snapshot(&mut w);
        let mut b = aikido_snapshot::SnapshotBuilder::new();
        b.push(w);
        let snap = b.finish();
        let mut reader = snap.reader().unwrap();
        let mut section = reader.section(*b"TCCH", 1).unwrap();
        let mut restored = TranslationCache::decode_snapshot(&mut section).unwrap();
        section.finish().unwrap();
        reader.finish().unwrap();

        assert_eq!(restored.stats(), c.stats());
        // Every subsequent access must resolve at the same level in both.
        for t in 0..4u32 {
            for i in 0..10u16 {
                let region = RegionId::new(u32::from(i) % 3);
                assert_eq!(
                    restored.access(ThreadId::new(t), instr(i), region),
                    c.access(ThreadId::new(t), instr(i), region),
                    "thread {t} instr {i}"
                );
            }
        }
        let wide = InstrId::new(BlockId::new(2), 907);
        let got = restored.access(ThreadId::new(0), wide, RegionId::new(1));
        assert_eq!(got, c.access(ThreadId::new(0), wide, RegionId::new(1)));
        assert_eq!(got, CacheLevel::Inline);
        assert_eq!(restored.stats(), c.stats());
    }

    #[test]
    fn instructions_in_different_blocks_have_distinct_inline_entries() {
        let mut c = TranslationCache::new();
        let t = ThreadId::new(0);
        let a = InstrId::new(BlockId::new(10), 3);
        let b = InstrId::new(BlockId::new(11), 3);
        c.access(t, a, RegionId::new(0));
        c.access(t, b, RegionId::new(1));
        assert_eq!(c.access(t, a, RegionId::new(0)), CacheLevel::Inline);
        assert_eq!(c.access(t, b, RegionId::new(1)), CacheLevel::Inline);
    }
}

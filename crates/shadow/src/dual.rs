//! The dual shadow mapping Aikido adds to Umbra (§3.3.1): metadata plus
//! mirror addresses for every registered application region.

use aikido_types::{Addr, AikidoError, ChunkMap, Result};

use crate::region::{Region, RegionId, RegionKind, RegionTable};

/// Start of the reserved area where metadata shadow regions are laid out.
const METADATA_AREA_BASE: u64 = 0x5000_0000_0000;
/// Start of the reserved area where mirror regions are laid out.
const MIRROR_AREA_BASE: u64 = 0x6000_0000_0000;
/// Guard gap (bytes) left between consecutive shadow regions.
const REGION_GAP: u64 = 1 << 30;

/// The Aikido-extended Umbra shadow memory: application addresses translate
/// to a metadata address (for the analysis tool) and to a mirror address
/// (aliasing the same frames, never protected by the sharing detector).
///
/// The mapping is purely arithmetic per region — a displacement assigned at
/// registration — exactly like Umbra's offset table. The struct does not own
/// any metadata contents; see [`crate::ShadowStore`] for storage.
#[derive(Debug, Clone)]
pub struct DualShadow {
    regions: RegionTable,
    /// Displacement from application base to metadata base, per region.
    metadata_bases: Vec<Addr>,
    /// Displacement from application base to mirror base, per region.
    mirror_bases: Vec<Addr>,
    /// Page → owning region, precomputed at registration so the per-access
    /// translations are a single flat lookup (regions are never removed).
    page_regions: ChunkMap<RegionId>,
    /// Page → mirror page number (bases are page-aligned, so the mirror of an
    /// address is its page's mirror page plus the in-page offset).
    page_mirrors: ChunkMap<u64>,
    next_metadata: u64,
    next_mirror: u64,
}

impl Default for DualShadow {
    fn default() -> Self {
        Self::new()
    }
}

impl DualShadow {
    /// Creates an empty dual shadow mapping.
    pub fn new() -> Self {
        DualShadow {
            regions: RegionTable::new(),
            metadata_bases: Vec::new(),
            mirror_bases: Vec::new(),
            page_regions: ChunkMap::new(),
            page_mirrors: ChunkMap::new(),
            next_metadata: METADATA_AREA_BASE,
            next_mirror: MIRROR_AREA_BASE,
        }
    }

    /// Registers an application region and assigns it metadata and mirror
    /// areas.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`RegionTable::register`]; additionally
    /// rejects regions that fall inside the reserved shadow areas.
    pub fn register_region(
        &mut self,
        base: Addr,
        pages: u64,
        kind: RegionKind,
    ) -> Result<RegionId> {
        if base.raw() >= METADATA_AREA_BASE {
            return Err(AikidoError::InvalidConfig {
                reason: format!("application region at {base} collides with the shadow area"),
            });
        }
        let region = self.regions.register(base, pages, kind)?;
        let mirror_base_page = self.next_mirror >> aikido_types::PAGE_SHIFT;
        for (i, page) in region.page_span().enumerate() {
            self.page_regions.insert(page.raw(), region.id);
            self.page_mirrors
                .insert(page.raw(), mirror_base_page + i as u64);
        }
        let meta = Addr::new(self.next_metadata);
        let mirror = Addr::new(self.next_mirror);
        self.next_metadata += region.bytes() + REGION_GAP;
        self.next_mirror += region.bytes() + REGION_GAP;
        self.metadata_bases.push(meta);
        self.mirror_bases.push(mirror);
        Ok(region.id)
    }

    /// The registered region containing `addr`, if any.
    #[inline]
    pub fn region_of(&self, addr: Addr) -> Option<&Region> {
        let id = self.page_regions.get(addr.page().raw())?;
        self.regions.get(*id)
    }

    /// The id of the registered region containing `addr`, if any (the
    /// per-access translation path needs only the id, not the region record).
    #[inline]
    pub fn region_id_of(&self, addr: Addr) -> Option<RegionId> {
        self.page_regions.get(addr.page().raw()).copied()
    }

    /// The region table.
    pub fn regions(&self) -> &RegionTable {
        &self.regions
    }

    /// Translates an application address to its metadata address.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::NoShadowRegion`] if no registered region covers
    /// `addr`.
    pub fn metadata_addr(&self, addr: Addr) -> Result<Addr> {
        let region = self
            .region_of(addr)
            .ok_or(AikidoError::NoShadowRegion { addr })?;
        let base = self.metadata_bases[region.id.raw() as usize];
        Ok(base.offset(region.offset_of(addr)))
    }

    /// Translates an application address to its mirror address.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::NoShadowRegion`] if no registered region covers
    /// `addr`.
    #[inline]
    pub fn mirror_addr(&self, addr: Addr) -> Result<Addr> {
        let mirror_page = self
            .page_mirrors
            .get(addr.page().raw())
            .ok_or(AikidoError::NoShadowRegion { addr })?;
        Ok(Addr::new(
            (mirror_page << aikido_types::PAGE_SHIFT) | addr.offset_in_page(),
        ))
    }

    /// The base address of the metadata area assigned to `region`.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::InvalidConfig`] if `region` is unknown.
    pub fn metadata_base(&self, region: RegionId) -> Result<Addr> {
        self.metadata_bases
            .get(region.raw() as usize)
            .copied()
            .ok_or_else(|| AikidoError::InvalidConfig {
                reason: format!("{region} is not registered"),
            })
    }

    /// The base address of the mirror area assigned to `region`.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::InvalidConfig`] if `region` is unknown.
    pub fn mirror_base(&self, region: RegionId) -> Result<Addr> {
        self.mirror_bases
            .get(region.raw() as usize)
            .copied()
            .ok_or_else(|| AikidoError::InvalidConfig {
                reason: format!("{region} is not registered"),
            })
    }

    /// Translates a mirror address back to the application address it aliases.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::NoShadowRegion`] if `mirror` does not fall in
    /// any region's mirror area.
    pub fn app_addr_of_mirror(&self, mirror: Addr) -> Result<Addr> {
        for region in self.regions.iter() {
            let base = self.mirror_bases[region.id.raw() as usize];
            if mirror.in_range(base, region.bytes()) {
                return Ok(region.base.offset(mirror.raw() - base.raw()));
            }
        }
        Err(AikidoError::NoShadowRegion { addr: mirror })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shadow_with_two_regions() -> (DualShadow, RegionId, RegionId) {
        let mut s = DualShadow::new();
        let heap = s
            .register_region(Addr::new(0x10_0000), 16, RegionKind::Heap)
            .unwrap();
        let stack = s
            .register_region(Addr::new(0x7f00_0000), 8, RegionKind::Stack)
            .unwrap();
        (s, heap, stack)
    }

    #[test]
    fn translations_preserve_offsets_within_regions() {
        let (s, heap, _) = shadow_with_two_regions();
        let app = Addr::new(0x10_0123);
        let meta = s.metadata_addr(app).unwrap();
        let mirror = s.mirror_addr(app).unwrap();
        assert_eq!(meta.raw() - s.metadata_base(heap).unwrap().raw(), 0x123);
        assert_eq!(mirror.raw() - s.mirror_base(heap).unwrap().raw(), 0x123);
    }

    #[test]
    fn metadata_and_mirror_areas_do_not_overlap_each_other_or_the_app() {
        let (s, heap, stack) = shadow_with_two_regions();
        let bases = [
            s.metadata_base(heap).unwrap(),
            s.metadata_base(stack).unwrap(),
            s.mirror_base(heap).unwrap(),
            s.mirror_base(stack).unwrap(),
        ];
        for (i, a) in bases.iter().enumerate() {
            for (j, b) in bases.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
            // Far away from the application regions.
            assert!(a.raw() >= METADATA_AREA_BASE);
        }
    }

    #[test]
    fn unknown_addresses_report_no_region() {
        let (s, _, _) = shadow_with_two_regions();
        assert!(matches!(
            s.metadata_addr(Addr::new(0x9999_0000)),
            Err(AikidoError::NoShadowRegion { .. })
        ));
        assert!(matches!(
            s.mirror_addr(Addr::new(0x9999_0000)),
            Err(AikidoError::NoShadowRegion { .. })
        ));
    }

    #[test]
    fn mirror_translation_roundtrips() {
        let (s, _, _) = shadow_with_two_regions();
        for &raw in &[0x10_0000u64, 0x10_0fff, 0x10_ffff, 0x7f00_0008] {
            let app = Addr::new(raw);
            let mirror = s.mirror_addr(app).unwrap();
            assert_eq!(s.app_addr_of_mirror(mirror).unwrap(), app);
        }
        assert!(s.app_addr_of_mirror(Addr::new(0x123)).is_err());
    }

    #[test]
    fn regions_inside_shadow_area_are_rejected() {
        let mut s = DualShadow::new();
        assert!(matches!(
            s.register_region(Addr::new(METADATA_AREA_BASE + 0x1000), 1, RegionKind::Other),
            Err(AikidoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn region_of_finds_the_right_region() {
        let (s, heap, stack) = shadow_with_two_regions();
        assert_eq!(s.region_of(Addr::new(0x10_8000)).unwrap().id, heap);
        assert_eq!(s.region_of(Addr::new(0x7f00_1000)).unwrap().id, stack);
        assert!(s.region_of(Addr::new(0x1)).is_none());
        assert_eq!(s.regions().len(), 2);
    }
}

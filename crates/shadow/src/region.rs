//! Densely populated application memory regions — Umbra's unit of shadow
//! translation.

use serde::{Deserialize, Serialize};
use std::fmt;

use aikido_types::{Addr, AikidoError, Result, Vpn, PAGE_SIZE};

/// Identity of a registered region.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(u32);

impl RegionId {
    /// Creates a region id from its raw index.
    pub const fn new(raw: u32) -> Self {
        RegionId(raw)
    }

    /// Raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region {}", self.0)
    }
}

/// What a region holds; only used for reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// A thread stack.
    Stack,
    /// The process heap.
    Heap,
    /// Static data (.data/.bss).
    Data,
    /// Executable code / read-only data.
    Code,
    /// Anything else (anonymous mmaps, files).
    Other,
}

impl fmt::Display for RegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionKind::Stack => write!(f, "stack"),
            RegionKind::Heap => write!(f, "heap"),
            RegionKind::Data => write!(f, "data"),
            RegionKind::Code => write!(f, "code"),
            RegionKind::Other => write!(f, "other"),
        }
    }
}

/// A densely populated application memory region.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Identity of the region.
    pub id: RegionId,
    /// First address of the region (page aligned).
    pub base: Addr,
    /// Number of pages.
    pub pages: u64,
    /// What the region holds.
    pub kind: RegionKind,
}

impl Region {
    /// Size of the region in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// True if `addr` falls inside this region.
    pub fn contains(&self, addr: Addr) -> bool {
        addr.in_range(self.base, self.bytes())
    }

    /// Byte offset of `addr` within the region.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is not inside the region.
    pub fn offset_of(&self, addr: Addr) -> u64 {
        debug_assert!(self.contains(addr));
        addr.raw() - self.base.raw()
    }

    /// The pages spanned by the region.
    pub fn page_span(&self) -> impl Iterator<Item = Vpn> {
        self.base.page().span(self.pages)
    }
}

/// The table of registered regions (Umbra's "Shadow Metadata Manager" view of
/// the application address space).
///
/// `find` runs on the instrumented-access hot path, so the table keeps a
/// base-sorted index for binary search alongside the registration-ordered
/// region list.
#[derive(Debug, Default, Clone)]
pub struct RegionTable {
    regions: Vec<Region>,
    /// `(base address, index into regions)`, sorted by base.
    by_base: Vec<(u64, u32)>,
}

impl RegionTable {
    /// Creates an empty region table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a region of `pages` pages starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::MappingOverlap`] if it overlaps a registered
    /// region, and [`AikidoError::InvalidConfig`] if `pages` is zero or `base`
    /// is not page aligned.
    pub fn register(&mut self, base: Addr, pages: u64, kind: RegionKind) -> Result<Region> {
        if pages == 0 {
            return Err(AikidoError::InvalidConfig {
                reason: "region must span at least one page".to_string(),
            });
        }
        if base.offset_in_page() != 0 {
            return Err(AikidoError::InvalidConfig {
                reason: format!("region base {base} is not page aligned"),
            });
        }
        let bytes = pages * PAGE_SIZE;
        for r in &self.regions {
            let overlap =
                base.raw() < r.base.raw() + r.bytes() && r.base.raw() < base.raw() + bytes;
            if overlap {
                return Err(AikidoError::MappingOverlap { page: base.page() });
            }
        }
        let region = Region {
            id: RegionId(self.regions.len() as u32),
            base,
            pages,
            kind,
        };
        let pos = self.by_base.partition_point(|&(b, _)| b < base.raw());
        self.by_base.insert(pos, (base.raw(), region.id.0));
        self.regions.push(region);
        Ok(region)
    }

    /// The region containing `addr`, if any.
    #[inline]
    pub fn find(&self, addr: Addr) -> Option<&Region> {
        // `by_base` is sorted and regions are disjoint: the candidate is the
        // last region starting at or below `addr`.
        let pos = self
            .by_base
            .partition_point(|&(base, _)| base <= addr.raw());
        let (_, idx) = self.by_base.get(pos.checked_sub(1)?)?;
        let region = &self.regions[*idx as usize];
        if region.contains(addr) {
            Some(region)
        } else {
            None
        }
    }

    /// Looks a region up by id.
    pub fn get(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(id.0 as usize)
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True if no regions are registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Iterates over registered regions in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_find() {
        let mut t = RegionTable::new();
        let r = t
            .register(Addr::new(0x10_0000), 16, RegionKind::Heap)
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(Addr::new(0x10_0000)).unwrap().id, r.id);
        assert_eq!(t.find(Addr::new(0x10_ffff)).unwrap().id, r.id);
        assert!(t.find(Addr::new(0x11_0000)).is_none());
        assert!(t.find(Addr::new(0xf_ffff)).is_none());
        assert_eq!(t.get(r.id).unwrap().kind, RegionKind::Heap);
    }

    #[test]
    fn overlapping_regions_are_rejected() {
        let mut t = RegionTable::new();
        t.register(Addr::new(0x10_0000), 16, RegionKind::Heap)
            .unwrap();
        assert!(matches!(
            t.register(Addr::new(0x10_f000), 2, RegionKind::Other),
            Err(AikidoError::MappingOverlap { .. })
        ));
        // Adjacent (non-overlapping) is fine.
        assert!(t
            .register(Addr::new(0x11_0000), 1, RegionKind::Other)
            .is_ok());
    }

    #[test]
    fn invalid_registrations_are_rejected() {
        let mut t = RegionTable::new();
        assert!(matches!(
            t.register(Addr::new(0x10_0000), 0, RegionKind::Heap),
            Err(AikidoError::InvalidConfig { .. })
        ));
        assert!(matches!(
            t.register(Addr::new(0x10_0001), 1, RegionKind::Heap),
            Err(AikidoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn offsets_are_relative_to_region_base() {
        let mut t = RegionTable::new();
        let r = t
            .register(Addr::new(0x20_0000), 4, RegionKind::Stack)
            .unwrap();
        assert_eq!(r.offset_of(Addr::new(0x20_0123)), 0x123);
        assert_eq!(r.bytes(), 4 * PAGE_SIZE);
        assert_eq!(r.page_span().count(), 4);
    }
}

//! Typed shadow metadata storage.
//!
//! Shadow value tools keep a piece of metadata for every unit of application
//! data; FastTrack keeps one record per 8-byte "variable" block (§4.2). The
//! store is sparse — entries are created on first access — which mirrors the
//! lazy allocation of shadow memory in Umbra without committing the simulator
//! to huge dense allocations.
//!
//! Storage is a chunked slab ([`ChunkMap`]) keyed by block index: a fixed
//! directory of lazily allocated leaf arrays of 512 slots each (one
//! application page at the default 8-byte granularity), so the per-access
//! `get`/`get_or_default` is index arithmetic instead of hashing.

use aikido_types::{Addr, ChunkMap};

/// Sparse shadow metadata store, keyed by application address at a fixed
/// granularity (e.g. 8 bytes per entry).
#[derive(Debug, Clone)]
pub struct ShadowStore<T> {
    granularity: u64,
    /// log2(granularity), so `block_of` is a shift instead of a division.
    shift: u32,
    entries: ChunkMap<T>,
}

impl<T> ShadowStore<T> {
    /// Creates a store with one entry per `granularity` bytes of application
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        ShadowStore {
            granularity,
            shift: granularity.trailing_zeros(),
            entries: ChunkMap::new(),
        }
    }

    /// The configured granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// The key (block index) for `addr`.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr.raw() >> self.shift
    }

    /// Number of blocks that currently hold metadata.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no block holds metadata.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared access to the metadata of the block containing `addr`.
    #[inline]
    pub fn get(&self, addr: Addr) -> Option<&T> {
        self.entries.get(self.block_of(addr))
    }

    /// Mutable access to the metadata of the block containing `addr`.
    #[inline]
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        let key = self.block_of(addr);
        self.entries.get_mut(key)
    }

    /// Mutable access to the metadata of the block containing `addr`,
    /// inserting `T::default()` if none exists.
    #[inline]
    pub fn get_or_default(&mut self, addr: Addr) -> &mut T
    where
        T: Default,
    {
        let key = self.block_of(addr);
        self.entries.get_or_default(key)
    }

    /// Like [`ShadowStore::get_or_default`], but also reports whether the
    /// entry was newly created.
    #[inline]
    pub fn get_or_default_tracked(&mut self, addr: Addr) -> (bool, &mut T)
    where
        T: Default,
    {
        let key = self.block_of(addr);
        self.entries.get_or_default_tracked(key)
    }

    /// Stores metadata for the block containing `addr`, returning the old
    /// value if present.
    pub fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        let key = self.block_of(addr);
        self.entries.insert(key, value)
    }

    /// Removes the metadata for the block containing `addr`.
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let key = self.block_of(addr);
        self.entries.remove(key)
    }

    /// Iterates over `(block_base_address, metadata)` pairs in ascending
    /// address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.entries
            .iter()
            .map(move |(k, v)| (Addr::new(k << self.shift), v))
    }
}

impl<T> Default for ShadowStore<T> {
    fn default() -> Self {
        ShadowStore::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_in_same_block_share_metadata() {
        let mut s: ShadowStore<u32> = ShadowStore::new(8);
        s.insert(Addr::new(0x1000), 7);
        assert_eq!(s.get(Addr::new(0x1007)), Some(&7));
        assert_eq!(s.get(Addr::new(0x1008)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_or_default_creates_entries_lazily() {
        let mut s: ShadowStore<u64> = ShadowStore::default();
        assert!(s.is_empty());
        *s.get_or_default(Addr::new(0x2000)) += 1;
        *s.get_or_default(Addr::new(0x2004)) += 1;
        assert_eq!(s.get(Addr::new(0x2000)), Some(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s: ShadowStore<&str> = ShadowStore::new(8);
        s.insert(Addr::new(64), "a");
        assert_eq!(s.remove(Addr::new(64)), Some("a"));
        assert_eq!(s.get(Addr::new(64)), None);
    }

    #[test]
    fn iter_reports_block_base_addresses() {
        let mut s: ShadowStore<u8> = ShadowStore::new(16);
        s.insert(Addr::new(0x35), 1); // block base 0x30
        let items: Vec<_> = s.iter().collect();
        assert_eq!(items, vec![(Addr::new(0x30), &1)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_granularity_panics() {
        let _ = ShadowStore::<u8>::new(12);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s: ShadowStore<u32> = ShadowStore::new(8);
        s.insert(Addr::new(8), 1);
        *s.get_mut(Addr::new(12)).unwrap() = 5;
        assert_eq!(s.get(Addr::new(8)), Some(&5));
        assert!(s.get_mut(Addr::new(0)).is_none());
    }

    #[test]
    fn widely_separated_addresses_coexist() {
        // Application, metadata-area and mirror-area addresses span the whole
        // 47-bit range; the chunked slab must hold them all sparsely.
        let mut s: ShadowStore<u64> = ShadowStore::new(8);
        let addrs = [0x10_0000u64, 0x5000_0000_0000, 0x6000_0000_0000];
        for (i, &a) in addrs.iter().enumerate() {
            s.insert(Addr::new(a), i as u64);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(s.get(Addr::new(a)), Some(&(i as u64)));
        }
        assert_eq!(s.len(), 3);
    }
}

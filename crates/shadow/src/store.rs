//! Typed shadow metadata storage.
//!
//! Shadow value tools keep a piece of metadata for every unit of application
//! data; FastTrack keeps one record per 8-byte "variable" block (§4.2). The
//! store is sparse — entries are created on first access — which mirrors the
//! lazy allocation of shadow memory in Umbra without committing the simulator
//! to huge dense allocations.

use std::collections::HashMap;

use aikido_types::Addr;

/// Sparse shadow metadata store, keyed by application address at a fixed
/// granularity (e.g. 8 bytes per entry).
#[derive(Debug, Clone)]
pub struct ShadowStore<T> {
    granularity: u64,
    entries: HashMap<u64, T>,
}

impl<T> ShadowStore<T> {
    /// Creates a store with one entry per `granularity` bytes of application
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        ShadowStore {
            granularity,
            entries: HashMap::new(),
        }
    }

    /// The configured granularity in bytes.
    pub fn granularity(&self) -> u64 {
        self.granularity
    }

    /// The key (block index) for `addr`.
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr.raw() / self.granularity
    }

    /// Number of blocks that currently hold metadata.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no block holds metadata.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shared access to the metadata of the block containing `addr`.
    pub fn get(&self, addr: Addr) -> Option<&T> {
        self.entries.get(&self.block_of(addr))
    }

    /// Mutable access to the metadata of the block containing `addr`.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        let key = self.block_of(addr);
        self.entries.get_mut(&key)
    }

    /// Mutable access to the metadata of the block containing `addr`,
    /// inserting `T::default()` if none exists.
    pub fn get_or_default(&mut self, addr: Addr) -> &mut T
    where
        T: Default,
    {
        let key = self.block_of(addr);
        self.entries.entry(key).or_default()
    }

    /// Stores metadata for the block containing `addr`, returning the old
    /// value if present.
    pub fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        let key = self.block_of(addr);
        self.entries.insert(key, value)
    }

    /// Removes the metadata for the block containing `addr`.
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let key = self.block_of(addr);
        self.entries.remove(&key)
    }

    /// Iterates over `(block_base_address, metadata)` pairs in arbitrary
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.entries
            .iter()
            .map(move |(&k, v)| (Addr::new(k * self.granularity), v))
    }
}

impl<T> Default for ShadowStore<T> {
    fn default() -> Self {
        ShadowStore::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_in_same_block_share_metadata() {
        let mut s: ShadowStore<u32> = ShadowStore::new(8);
        s.insert(Addr::new(0x1000), 7);
        assert_eq!(s.get(Addr::new(0x1007)), Some(&7));
        assert_eq!(s.get(Addr::new(0x1008)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn get_or_default_creates_entries_lazily() {
        let mut s: ShadowStore<u64> = ShadowStore::default();
        assert!(s.is_empty());
        *s.get_or_default(Addr::new(0x2000)) += 1;
        *s.get_or_default(Addr::new(0x2004)) += 1;
        assert_eq!(s.get(Addr::new(0x2000)), Some(&2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut s: ShadowStore<&str> = ShadowStore::new(8);
        s.insert(Addr::new(64), "a");
        assert_eq!(s.remove(Addr::new(64)), Some("a"));
        assert_eq!(s.get(Addr::new(64)), None);
    }

    #[test]
    fn iter_reports_block_base_addresses() {
        let mut s: ShadowStore<u8> = ShadowStore::new(16);
        s.insert(Addr::new(0x35), 1); // block base 0x30
        let items: Vec<_> = s.iter().collect();
        assert_eq!(items, vec![(Addr::new(0x30), &1)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_granularity_panics() {
        let _ = ShadowStore::<u8>::new(12);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut s: ShadowStore<u32> = ShadowStore::new(8);
        s.insert(Addr::new(8), 1);
        *s.get_mut(Addr::new(12)).unwrap() = 5;
        assert_eq!(s.get(Addr::new(8)), Some(&5));
        assert!(s.get_mut(Addr::new(0)).is_none());
    }
}

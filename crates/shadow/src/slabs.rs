//! The packed metadata plane's slab directory, keyed by block index.
//!
//! This is the storage half of the unified address→slab translation the
//! shadow framework exposes (the pricing half is
//! [`crate::TranslationCache`]): application addresses divide into fixed
//! 8-byte blocks, blocks group into page-granular slabs of 512 packed
//! [`ShadowWord`]s, and a single open-addressed probe resolves a page's slab.
//! Because one run of same-page accesses shares one slab, a caller resolves
//! the [`SlabHandle`] **once per run** — the model cost (one inline-cache
//! level) and the real metadata access (one slab probe) are then priced by
//! one lookup each, instead of a layered probe per access.
//!
//! The directory is deliberately the same structure for every page-indexed
//! table in the system: FastTrack's packed variable words key it by block
//! index, and the sharing detector's page states key it by page number, so
//! the sharing fast path and the analysis slow path agree on one
//! page-indexed layout.

use aikido_types::{Addr, ShadowWord, SlabDirectory, SlabHandle};

/// Block-keyed packed-word storage: a [`SlabDirectory`] plus the
/// granularity arithmetic that turns application addresses into
/// `(slab, slot)` coordinates.
#[derive(Debug, Clone, Default)]
pub struct ShadowSlabs {
    dir: SlabDirectory,
}

impl ShadowSlabs {
    /// Creates an empty slab plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks holding a non-empty word (spilled markers included).
    pub fn len(&self) -> usize {
        self.dir.len()
    }

    /// True if no block holds metadata.
    pub fn is_empty(&self) -> bool {
        self.dir.is_empty()
    }

    /// Number of slabs allocated.
    pub fn slab_count(&self) -> usize {
        self.dir.slab_count()
    }

    /// Resolves (allocating if necessary) the slab containing `block` and
    /// returns `(handle, slot)`. The handle stays valid until the next
    /// `resolve` call — one run of same-page accesses shares one slab, so
    /// callers resolve once per run.
    #[inline]
    pub fn resolve(&mut self, block: u64) -> (SlabHandle, usize) {
        let (chunk, slot) = SlabDirectory::split(block);
        (self.dir.resolve(chunk), slot)
    }

    /// The slot of `block` within its slab.
    #[inline]
    pub fn slot_of(block: u64) -> usize {
        SlabDirectory::split(block).1
    }

    /// The word at `slot` of a resolved slab: one load, no probing.
    #[inline]
    pub fn word_at(&self, handle: SlabHandle, slot: usize) -> ShadowWord {
        self.dir.word_at(handle, slot)
    }

    /// Stores `word` at `slot` of a resolved slab.
    #[inline]
    pub fn set_word_at(&mut self, handle: SlabHandle, slot: usize, word: ShadowWord) {
        self.dir.set_word_at(handle, slot, word);
    }

    /// The word of `block` ([`ShadowWord::EMPTY`] when untracked).
    #[inline]
    pub fn word(&self, block: u64) -> ShadowWord {
        self.dir.get(block)
    }

    /// Stores the word of `block`, allocating its slab if needed.
    #[inline]
    pub fn set(&mut self, block: u64, word: ShadowWord) {
        self.dir.set(block, word);
    }

    /// Iterates over `(block, word)` pairs with non-empty words in ascending
    /// block order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ShadowWord)> + '_ {
        self.dir.iter_nonempty()
    }

    /// The block index of `addr` at `granularity` bytes per block
    /// (`granularity` must be a power of two; pass its trailing-zero count).
    #[inline]
    pub const fn block_of(addr: Addr, shift: u32) -> u64 {
        addr.raw() >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_then_index_matches_keyed_access() {
        let mut s = ShadowSlabs::new();
        let block = ShadowSlabs::block_of(Addr::new(0x10_0008), 3);
        let (handle, slot) = s.resolve(block);
        assert_eq!(slot, ShadowSlabs::slot_of(block));
        s.set_word_at(handle, slot, ShadowWord::from_raw(9));
        assert_eq!(s.word(block).raw(), 9);
        assert_eq!(s.word_at(handle, slot).raw(), 9);
        assert_eq!(s.len(), 1);
        assert_eq!(s.slab_count(), 1);
    }

    #[test]
    fn same_page_blocks_share_a_slab() {
        let mut s = ShadowSlabs::new();
        // At 8-byte granularity a 4 KiB page holds exactly one slab's worth
        // of blocks, so every block of the page resolves to the same handle.
        let base = Addr::new(0x40_0000);
        let (h0, _) = s.resolve(ShadowSlabs::block_of(base, 3));
        for off in (8..4096).step_by(8) {
            let (h, _) = s.resolve(ShadowSlabs::block_of(base.offset(off), 3));
            assert_eq!(h, h0);
        }
        let (h_next, _) = s.resolve(ShadowSlabs::block_of(base.offset(4096), 3));
        assert_ne!(h_next, h0);
    }

    #[test]
    fn iter_reports_blocks_in_order() {
        let mut s = ShadowSlabs::new();
        for &b in &[700u64, 2, 513] {
            s.set(b, ShadowWord::from_raw(b));
        }
        let got: Vec<u64> = s.iter().map(|(b, _)| b).collect();
        assert_eq!(got, vec![2, 513, 700]);
        assert!(!s.is_empty());
    }
}

//! The sharing detector proper: glue between the hypervisor's per-thread
//! protection, the page state machine, the dual shadow mapping and the DBI
//! engine.

use aikido_dbi::DbiEngine;
use aikido_shadow::{DualShadow, RegionId, RegionKind};
use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{Addr, InstrId, Prot, Result, ThreadId, Vpn};
use aikido_vm::{AikidoFault, AikidoVm, Hypercall};

use crate::page_state::{PageState, PageStateTable, Transition};
use crate::stats::SharingStats;

/// What the sharing detector did with an Aikido fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultDisposition {
    /// The page was unused; it is now private to the faulting thread and
    /// unprotected for it. The access should simply be retried.
    MadePrivate,
    /// The page was private to another thread; it is now shared, globally
    /// protected, and the faulting instruction has been instrumented.
    MadeShared {
        /// True if this was the first time the instruction was instrumented
        /// (false if it had already been instrumented through another page).
        newly_instrumented: bool,
    },
    /// The page was already shared; the faulting instruction has been
    /// instrumented.
    SharedInstruction {
        /// True if this was the first time the instruction was instrumented.
        newly_instrumented: bool,
    },
    /// The page was already private to the faulting thread (e.g. protections
    /// had been restored after a guest-kernel emulation); it has been
    /// re-unprotected for the thread.
    Spurious,
}

impl FaultDisposition {
    /// True if the faulting instruction ends up instrumented after this
    /// fault.
    pub fn instruments_instruction(self) -> bool {
        matches!(
            self,
            FaultDisposition::MadeShared { .. } | FaultDisposition::SharedInstruction { .. }
        )
    }
}

/// A borrowed, read-only view over a detector's page-sharing states.
///
/// Obtained from [`AikidoSd::read_view`]; exists to make the fast-path
/// contract explicit in the type system — holders can classify addresses but
/// cannot transition page states, so any number of them may be consulted
/// concurrently between the serialized transition points.
#[derive(Debug, Clone, Copy)]
pub struct SharingView<'a> {
    sd: &'a AikidoSd,
}

impl SharingView<'_> {
    /// True if `page` has been found to be shared.
    ///
    /// This is the page-granular query the simulator's batched Aikido kernel
    /// issues **once per run** of consecutive same-page accesses rather than
    /// once per access. Two monotonicity guarantees make that sound:
    ///
    /// * `Shared` is sticky — a page never leaves the shared state (see
    ///   [`PageState`]) — so a `true` answer covers every later access of the
    ///   run unconditionally;
    /// * transitions *into* `Shared` only happen inside
    ///   [`AikidoSd::handle_fault`], so a `false` answer stays valid until
    ///   the caller next invokes the fault machinery.
    #[inline]
    pub fn is_shared_page(&self, page: Vpn) -> bool {
        self.sd.pages.is_shared(page)
    }

    /// True if the page containing `addr` has been found to be shared.
    #[inline]
    pub fn is_shared_addr(&self, addr: Addr) -> bool {
        self.sd.pages.is_shared(addr.page())
    }

    /// The sharing state of `page`.
    #[inline]
    pub fn page_state(&self, page: Vpn) -> PageState {
        self.sd.pages.get(page)
    }
}

/// AikidoSD, the Aikido sharing detector.
///
/// See the crate-level documentation for the protocol and an end-to-end
/// example.
#[derive(Debug, Default)]
pub struct AikidoSd {
    pages: PageStateTable,
    shadow: DualShadow,
    stats: SharingStats,
}

impl AikidoSd {
    /// Creates a detector with no attached regions.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dual shadow mapping (metadata + mirror) maintained by the
    /// detector.
    pub fn shadow(&self) -> &DualShadow {
        &self.shadow
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SharingStats {
        &self.stats
    }

    /// The sharing state of `page`.
    pub fn page_state(&self, page: Vpn) -> PageState {
        self.pages.get(page)
    }

    /// True if `page` has been found to be shared.
    pub fn is_shared_page(&self, page: Vpn) -> bool {
        self.pages.is_shared(page)
    }

    /// True if the page containing `addr` has been found to be shared.
    pub fn is_shared_addr(&self, addr: Addr) -> bool {
        self.pages.is_shared(addr.page())
    }

    /// A read-only view over the detector's page states. This is the
    /// lock-free fast path the epoch engine's inline checks lean on: reads
    /// take `&self` (two array loads into the flat page-state table, no
    /// locks, no interior mutability), while state *transitions* only happen
    /// through `&mut self` fault handling, which the commit clock serializes
    /// at epoch boundaries.
    pub fn read_view(&self) -> SharingView<'_> {
        SharingView { sd: self }
    }

    /// Number of pages currently `(private, shared)`.
    pub fn page_counts(&self) -> (usize, usize) {
        self.pages.counts()
    }

    /// Translates an application address to its mirror address.
    ///
    /// # Errors
    ///
    /// Returns [`aikido_types::AikidoError::NoShadowRegion`] if the address is
    /// not inside any attached region.
    pub fn mirror_addr(&self, addr: Addr) -> Result<Addr> {
        self.shadow.mirror_addr(addr)
    }

    /// Translates an application address to its metadata address.
    ///
    /// # Errors
    ///
    /// Returns [`aikido_types::AikidoError::NoShadowRegion`] if the address is
    /// not inside any attached region.
    pub fn metadata_addr(&self, addr: Addr) -> Result<Addr> {
        self.shadow.metadata_addr(addr)
    }

    /// Attaches a mapped application region to the detector: registers it
    /// with the dual shadow mapping, creates the mirror mapping in the guest,
    /// and protects every page for every thread currently registered with the
    /// hypervisor. This is what AikidoSD does for all mapped modules at
    /// program start and for every intercepted `mmap`/`brk` afterwards
    /// (§3.3.2, §3.3.3).
    ///
    /// # Errors
    ///
    /// Propagates shadow-registration and hypervisor errors (overlapping
    /// regions, unmapped source, unknown threads).
    pub fn attach_region(&mut self, vm: &mut AikidoVm, base: Addr, pages: u64) -> Result<RegionId> {
        let region = self
            .shadow
            .register_region(base, pages, RegionKind::Other)?;
        let mirror_base = self.shadow.mirror_base(region)?;
        vm.mmap_mirror(base, mirror_base)?;
        self.stats.pages_registered += pages;
        for thread in vm.threads() {
            self.protect_range_for_thread(vm, thread, base, pages)?;
        }
        Ok(region)
    }

    /// Protects every attached region for a newly created thread, so that its
    /// first access to any page faults exactly like the initial threads'.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (e.g. the thread is not registered with
    /// the VM).
    pub fn protect_thread(&mut self, vm: &mut AikidoVm, thread: ThreadId) -> Result<()> {
        let regions: Vec<(Addr, u64)> = self
            .shadow
            .regions()
            .iter()
            .map(|r| (r.base, r.pages))
            .collect();
        for (base, pages) in regions {
            self.protect_range_for_thread(vm, thread, base, pages)?;
        }
        Ok(())
    }

    fn protect_range_for_thread(
        &mut self,
        vm: &mut AikidoVm,
        thread: ThreadId,
        base: Addr,
        pages: u64,
    ) -> Result<()> {
        vm.hypercall(Hypercall::ProtectRange {
            thread,
            base,
            pages,
            prot: Prot::NONE,
        })?;
        self.stats.protection_hypercalls += 1;
        Ok(())
    }

    /// Handles an Aikido fault forwarded by the DynamoRIO master signal
    /// handler. `instr` identifies the faulting application instruction.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors when changing protections.
    pub fn handle_fault(
        &mut self,
        vm: &mut AikidoVm,
        engine: &mut DbiEngine,
        fault: &AikidoFault,
        instr: InstrId,
    ) -> Result<FaultDisposition> {
        self.stats.faults_handled += 1;
        let page = fault.page();
        let base = page.base();
        match self.pages.on_fault(page, fault.thread) {
            Transition::MadePrivate => {
                self.stats.private_transitions += 1;
                vm.hypercall(Hypercall::UnprotectRange {
                    thread: fault.thread,
                    base,
                    pages: 1,
                })?;
                self.stats.protection_hypercalls += 1;
                Ok(FaultDisposition::MadePrivate)
            }
            Transition::AlreadyPrivateToFaultingThread => {
                self.stats.spurious_faults += 1;
                vm.hypercall(Hypercall::UnprotectRange {
                    thread: fault.thread,
                    base,
                    pages: 1,
                })?;
                self.stats.protection_hypercalls += 1;
                Ok(FaultDisposition::Spurious)
            }
            Transition::MadeShared => {
                self.stats.shared_transitions += 1;
                // The page must become inaccessible to *every* thread so that
                // each new instruction touching it is observed exactly once.
                vm.hypercall(Hypercall::ProtectAllThreads {
                    base,
                    pages: 1,
                    prot: Prot::NONE,
                })?;
                self.stats.protection_hypercalls += 1;
                let newly = engine.request_instrumentation(instr);
                if newly {
                    self.stats.instructions_instrumented += 1;
                }
                Ok(FaultDisposition::MadeShared {
                    newly_instrumented: newly,
                })
            }
            Transition::AlreadyShared => {
                self.stats.shared_page_faults += 1;
                let newly = engine.request_instrumentation(instr);
                if newly {
                    self.stats.instructions_instrumented += 1;
                }
                Ok(FaultDisposition::SharedInstruction {
                    newly_instrumented: newly,
                })
            }
        }
    }

    /// Serializes the detector — attached regions, every non-`Unused` page
    /// state, and the statistics — into a snapshot section.
    ///
    /// The dual shadow mapping itself is not serialized byte-by-byte: shadow
    /// displacements are assigned deterministically at registration, so
    /// replaying the region registrations in order reproduces the exact
    /// mapping. Guest-side effects of attachment (mirror mappings, protection
    /// hypercalls) live in the hypervisor and are restored with it.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        let regions: Vec<_> = self.shadow.regions().iter().collect();
        out.put_usize(regions.len());
        for region in regions {
            out.put_u64(region.base.raw());
            out.put_u64(region.pages);
            out.put_u8(match region.kind {
                RegionKind::Stack => 0,
                RegionKind::Heap => 1,
                RegionKind::Data => 2,
                RegionKind::Code => 3,
                RegionKind::Other => 4,
            });
        }
        out.put_usize(self.pages.iter().count());
        for (page, state) in self.pages.iter() {
            out.put_u64(page.raw());
            match state {
                PageState::Unused => out.put_u8(0),
                PageState::Shared => out.put_u8(1),
                PageState::Private(owner) => {
                    out.put_u8(2);
                    out.put_u32(owner.raw());
                }
            }
        }
        for v in [
            self.stats.faults_handled,
            self.stats.private_transitions,
            self.stats.shared_transitions,
            self.stats.shared_page_faults,
            self.stats.spurious_faults,
            self.stats.instructions_instrumented,
            self.stats.pages_registered,
            self.stats.protection_hypercalls,
        ] {
            out.put_u64(v);
        }
    }

    /// Rebuilds a detector from a section written by
    /// [`AikidoSd::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed payload, including region
    /// registrations that fail to replay (overlaps, shadow-area collisions).
    pub fn decode_snapshot(
        r: &mut SectionReader<'_>,
    ) -> std::result::Result<AikidoSd, SnapshotError> {
        let mut sd = AikidoSd::new();
        let region_count = r.get_usize()?;
        for _ in 0..region_count {
            let base = Addr::new(r.get_u64()?);
            let pages = r.get_u64()?;
            let kind = match r.get_u8()? {
                0 => RegionKind::Stack,
                1 => RegionKind::Heap,
                2 => RegionKind::Data,
                3 => RegionKind::Code,
                4 => RegionKind::Other,
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid region kind {other}"),
                    ))
                }
            };
            sd.shadow.register_region(base, pages, kind).map_err(|e| {
                SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("region replay failed: {e}"),
                )
            })?;
        }
        let page_count = r.get_usize()?;
        for _ in 0..page_count {
            let page = Vpn::new(r.get_u64()?);
            let state = match r.get_u8()? {
                0 => PageState::Unused,
                1 => PageState::Shared,
                2 => PageState::Private(ThreadId::new(r.get_u32()?)),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid page state tag {other}"),
                    ))
                }
            };
            sd.pages.restore(page, state);
        }
        let stats = &mut sd.stats;
        for field in [
            &mut stats.faults_handled,
            &mut stats.private_transitions,
            &mut stats.shared_transitions,
            &mut stats.shared_page_faults,
            &mut stats.spurious_faults,
            &mut stats.instructions_instrumented,
            &mut stats.pages_registered,
            &mut stats.protection_hypercalls,
        ] {
            *field = r.get_u64()?;
        }
        Ok(sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_dbi::{Program, StaticInstr};
    use aikido_types::{AccessKind, AddrMode};
    use aikido_vm::{TouchOutcome, VmConfig};

    struct Rig {
        vm: AikidoVm,
        engine: DbiEngine,
        sd: AikidoSd,
        instrs: Vec<InstrId>,
    }

    fn rig(threads: u32, pages: u64) -> (Rig, Addr) {
        let mut vm = AikidoVm::new(VmConfig::default());
        for i in 0..threads {
            vm.register_thread(ThreadId::new(i)).unwrap();
        }
        let base = Addr::new(0x40_0000);
        vm.mmap(base, pages, Prot::RW_USER).unwrap();

        let mut program = Program::new();
        let block = program.add_block(vec![
            StaticInstr::Mem {
                kind: AccessKind::Write,
                mode: AddrMode::Indirect,
            },
            StaticInstr::Mem {
                kind: AccessKind::Read,
                mode: AddrMode::Indirect,
            },
        ]);
        let instrs = vec![InstrId::new(block, 0), InstrId::new(block, 1)];
        let engine = DbiEngine::new(program);

        let mut sd = AikidoSd::new();
        sd.attach_region(&mut vm, base, pages).unwrap();
        (
            Rig {
                vm,
                engine,
                sd,
                instrs,
            },
            base,
        )
    }

    /// Drives one access through the VM + sharing detector until it succeeds,
    /// returning the number of Aikido faults it took.
    fn access(
        rig: &mut Rig,
        thread: ThreadId,
        addr: Addr,
        kind: AccessKind,
        instr: InstrId,
    ) -> u32 {
        let mut faults = 0;
        for _ in 0..4 {
            let touch = rig.vm.touch(thread, addr, kind).unwrap();
            match touch.outcome {
                TouchOutcome::Ok => return faults,
                TouchOutcome::AikidoFault(fault) => {
                    faults += 1;
                    let disp = rig
                        .sd
                        .handle_fault(&mut rig.vm, &mut rig.engine, &fault, instr)
                        .unwrap();
                    if disp.instruments_instruction() {
                        // The instrumented instruction accesses shared data via
                        // the mirror page from now on.
                        let mirror = rig.sd.mirror_addr(addr).unwrap();
                        let t = rig.vm.touch(thread, mirror, kind).unwrap();
                        assert!(matches!(t.outcome, TouchOutcome::Ok));
                        return faults;
                    }
                }
                TouchOutcome::Fatal(segv) => panic!("unexpected segv: {segv}"),
            }
        }
        panic!("access did not converge");
    }

    #[test]
    fn private_page_costs_one_fault_per_thread_then_runs_free() {
        let (mut rig, base) = rig(2, 4);
        let t0 = ThreadId::new(0);
        let i0 = rig.instrs[0];
        assert_eq!(access(&mut rig, t0, base, AccessKind::Write, i0), 1);
        assert_eq!(rig.sd.page_state(base.page()), PageState::Private(t0));
        // Subsequent accesses by the same thread do not fault.
        for k in 1..10u64 {
            assert_eq!(
                access(&mut rig, t0, base.offset(k * 8), AccessKind::Write, i0),
                0
            );
        }
        assert_eq!(rig.sd.stats().faults_handled, 1);
        assert!(!rig.engine.is_instrumented(i0));
    }

    #[test]
    fn second_thread_makes_page_shared_and_instruments_instruction() {
        let (mut rig, base) = rig(2, 4);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let i0 = rig.instrs[0];
        access(&mut rig, t0, base, AccessKind::Write, i0);
        access(&mut rig, t1, base, AccessKind::Write, i0);
        assert_eq!(rig.sd.page_state(base.page()), PageState::Shared);
        assert!(rig.engine.is_instrumented(i0));
        assert_eq!(rig.sd.stats().shared_transitions, 1);
        assert_eq!(rig.sd.page_counts(), (0, 1));
    }

    #[test]
    fn every_new_instruction_on_a_shared_page_faults_once() {
        let (mut rig, base) = rig(2, 4);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (i0, i1) = (rig.instrs[0], rig.instrs[1]);
        access(&mut rig, t0, base, AccessKind::Write, i0);
        access(&mut rig, t1, base, AccessKind::Write, i0);
        // A different static instruction touching the shared page faults and
        // is instrumented too.
        let faults = access(&mut rig, t0, base.offset(16), AccessKind::Read, i1);
        assert_eq!(faults, 1);
        assert!(rig.engine.is_instrumented(i1));
        assert_eq!(rig.sd.stats().instructions_instrumented, 2);
        // Once instrumented, accesses go via the mirror and no longer fault.
        let mirror = rig.sd.mirror_addr(base.offset(16)).unwrap();
        let touch = rig.vm.touch(t0, mirror, AccessKind::Read).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::Ok));
    }

    #[test]
    fn pages_touched_by_one_thread_only_never_become_shared() {
        let (mut rig, base) = rig(4, 8);
        let i0 = rig.instrs[0];
        // Each thread gets its own page.
        for i in 0..4u32 {
            let t = ThreadId::new(i);
            let addr = base.offset(i as u64 * 4096);
            access(&mut rig, t, addr, AccessKind::Write, i0);
            access(&mut rig, t, addr.offset(128), AccessKind::Read, i0);
        }
        let (private, shared) = rig.sd.page_counts();
        assert_eq!(private, 4);
        assert_eq!(shared, 0);
        assert_eq!(rig.sd.stats().instructions_instrumented, 0);
    }

    #[test]
    fn new_thread_gets_protected_view_of_existing_regions() {
        let (mut rig, base) = rig(1, 2);
        let i0 = rig.instrs[0];
        let t0 = ThreadId::new(0);
        access(&mut rig, t0, base, AccessKind::Write, i0);

        // A thread created later is registered with the VM and protected by
        // the detector; its first access to the (private) page faults and the
        // page becomes shared.
        let t9 = ThreadId::new(9);
        rig.vm.register_thread(t9).unwrap();
        rig.sd.protect_thread(&mut rig.vm, t9).unwrap();
        let faults = access(&mut rig, t9, base, AccessKind::Read, i0);
        assert_eq!(faults, 1);
        assert!(rig.sd.is_shared_page(base.page()));
    }

    #[test]
    fn mirror_translation_is_exposed() {
        let (rig, base) = rig(1, 2);
        let mirror = rig.sd.mirror_addr(base.offset(24)).unwrap();
        assert_ne!(mirror.page(), base.page());
        let meta = rig.sd.metadata_addr(base.offset(24)).unwrap();
        assert_ne!(meta, mirror);
        assert!(rig.sd.mirror_addr(Addr::new(0x1)).is_err());
    }

    #[test]
    fn shared_state_is_sticky_across_further_faults() {
        // The batched run kernel answers one page-state read for a whole run
        // of accesses; that is only sound because `Shared` can never revert.
        let (mut rig, base) = rig(3, 2);
        let (t0, t1, t2) = (ThreadId::new(0), ThreadId::new(1), ThreadId::new(2));
        let (i0, i1) = (rig.instrs[0], rig.instrs[1]);
        access(&mut rig, t0, base, AccessKind::Write, i0);
        access(&mut rig, t1, base, AccessKind::Write, i0);
        assert!(rig.sd.read_view().is_shared_page(base.page()));
        // Every subsequent fault on the page — new thread, new instruction —
        // leaves it shared.
        access(&mut rig, t2, base.offset(8), AccessKind::Read, i1);
        access(&mut rig, t0, base.offset(16), AccessKind::Write, i1);
        assert!(rig.sd.read_view().is_shared_page(base.page()));
        assert_eq!(rig.sd.page_state(base.page()), PageState::Shared);
    }

    #[test]
    fn snapshot_roundtrip_preserves_sharing_state() {
        let (mut rig, base) = rig(3, 4);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let (i0, i1) = (rig.instrs[0], rig.instrs[1]);
        access(&mut rig, t0, base, AccessKind::Write, i0); // page 0 shared below
        access(&mut rig, t1, base, AccessKind::Write, i0);
        access(&mut rig, t0, base.offset(4096), AccessKind::Write, i1); // page 1 private

        let mut w = aikido_snapshot::SectionWriter::new(*b"AKSD", 1);
        rig.sd.encode_snapshot(&mut w);
        let mut b = aikido_snapshot::SnapshotBuilder::new();
        b.push(w);
        let snap = b.finish();
        let mut reader = snap.reader().unwrap();
        let mut section = reader.section(*b"AKSD", 1).unwrap();
        let restored = AikidoSd::decode_snapshot(&mut section).unwrap();
        section.finish().unwrap();
        reader.finish().unwrap();

        assert_eq!(restored.stats(), rig.sd.stats());
        assert_eq!(restored.page_counts(), rig.sd.page_counts());
        assert_eq!(restored.page_state(base.page()), PageState::Shared);
        assert_eq!(
            restored.page_state(base.offset(4096).page()),
            PageState::Private(t0)
        );
        // The replayed shadow mapping assigns identical displacements.
        for off in [0u64, 0x123, 4096, 2 * 4096 + 8] {
            assert_eq!(
                restored.mirror_addr(base.offset(off)).unwrap(),
                rig.sd.mirror_addr(base.offset(off)).unwrap()
            );
            assert_eq!(
                restored.metadata_addr(base.offset(off)).unwrap(),
                rig.sd.metadata_addr(base.offset(off)).unwrap()
            );
        }
        // Future fault handling evolves identically.
        let mut restored_rig = Rig {
            vm: rig.vm,
            engine: rig.engine,
            sd: restored,
            instrs: rig.instrs,
        };
        let faults = access(
            &mut restored_rig,
            ThreadId::new(2),
            base.offset(4096),
            AccessKind::Write,
            i0,
        );
        assert_eq!(faults, 1);
        assert!(restored_rig.sd.is_shared_page(base.offset(4096).page()));
    }

    #[test]
    fn shared_state_is_queryable_by_address() {
        let (mut rig, base) = rig(2, 2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let i0 = rig.instrs[0];
        assert!(!rig.sd.is_shared_addr(base));
        access(&mut rig, t0, base, AccessKind::Write, i0);
        access(&mut rig, t1, base, AccessKind::Write, i0);
        assert!(rig.sd.is_shared_addr(base.offset(100)));
        assert!(!rig.sd.is_shared_addr(base.offset(4096)));
    }
}

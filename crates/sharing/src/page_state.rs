//! The per-page sharing state machine (Figure 3 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

use aikido_types::{ShadowWord, SlabDirectory, ThreadId, Vpn};

/// The sharing state of one page.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageState {
    /// No thread has touched the page yet.
    Unused,
    /// Exactly one thread has touched the page so far.
    Private(ThreadId),
    /// At least two threads have touched the page; it stays shared forever.
    Shared,
}

impl fmt::Display for PageState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageState::Unused => write!(f, "unused"),
            PageState::Private(t) => write!(f, "private to {t}"),
            PageState::Shared => write!(f, "shared"),
        }
    }
}

/// What a fault did to the page's state.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// Unused → Private(faulting thread).
    MadePrivate,
    /// Private(other) → Shared.
    MadeShared,
    /// The page was already shared; no state change.
    AlreadyShared,
    /// The page was already private to the faulting thread (a spurious fault,
    /// e.g. after protections were restored following a kernel emulation).
    AlreadyPrivateToFaultingThread,
}

impl Transition {
    /// True if after this transition the page is shared.
    pub fn page_is_shared(self) -> bool {
        matches!(self, Transition::MadeShared | Transition::AlreadyShared)
    }
}

/// The word encoding [`PageState::Shared`] (see [`PageStateTable`]).
const SHARED_WORD: u64 = 1;
/// Tag bit of the word encoding [`PageState::Private`]; the owning thread
/// id lives in the bits above [`PRIVATE_SHIFT`].
const PRIVATE_TAG: u64 = 2;
/// Bit position of the private owner's thread id.
const PRIVATE_SHIFT: u32 = 8;

/// Packs a page state into one word (zero = [`PageState::Unused`]).
#[inline]
const fn encode(state: PageState) -> u64 {
    match state {
        PageState::Unused => 0,
        PageState::Shared => SHARED_WORD,
        PageState::Private(owner) => PRIVATE_TAG | ((owner.raw() as u64) << PRIVATE_SHIFT),
    }
}

/// Unpacks a page-state word.
#[inline]
const fn decode(word: u64) -> PageState {
    if word == 0 {
        PageState::Unused
    } else if word == SHARED_WORD {
        PageState::Shared
    } else {
        PageState::Private(ThreadId::new((word >> PRIVATE_SHIFT) as u32))
    }
}

/// The table of page states maintained by the sharing detector.
///
/// `is_shared` sits on the instrumented-access hot path, so the states live
/// as packed words in the same page-indexed [`SlabDirectory`] structure the
/// analysis metadata plane uses — the sharing fast path and the analysis
/// slow path agree on one layout. Keyed by page number, a slab covers 512
/// consecutive pages (2 MiB of address space) and the shared-page query is
/// one probe plus one word compare, with no enum tag or `Option` in the
/// slot.
#[derive(Debug, Default, Clone)]
pub struct PageStateTable {
    states: SlabDirectory,
}

impl PageStateTable {
    /// Creates an empty table: every page is implicitly [`PageState::Unused`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The state of `page`.
    #[inline]
    pub fn get(&self, page: Vpn) -> PageState {
        decode(self.states.get(page.raw()).raw())
    }

    /// True if `page` is currently shared.
    #[inline]
    pub fn is_shared(&self, page: Vpn) -> bool {
        self.states.get(page.raw()).raw() == SHARED_WORD
    }

    /// Applies the state machine for a fault by `thread` on `page` and
    /// returns what happened. The transition is atomic with respect to the
    /// table (the paper performs it with an atomic compare-and-swap).
    pub fn on_fault(&mut self, page: Vpn, thread: ThreadId) -> Transition {
        match self.get(page) {
            PageState::Unused => {
                self.set(page, PageState::Private(thread));
                Transition::MadePrivate
            }
            PageState::Private(owner) if owner == thread => {
                Transition::AlreadyPrivateToFaultingThread
            }
            PageState::Private(_) => {
                self.set(page, PageState::Shared);
                Transition::MadeShared
            }
            PageState::Shared => Transition::AlreadyShared,
        }
    }

    #[inline]
    fn set(&mut self, page: Vpn, state: PageState) {
        self.states
            .set(page.raw(), ShadowWord::from_raw(encode(state)));
    }

    /// Reinstalls a page state directly, bypassing the fault state machine
    /// (snapshot restore only — normal operation goes through `on_fault`).
    pub(crate) fn restore(&mut self, page: Vpn, state: PageState) {
        self.set(page, state);
    }

    /// Number of pages in each state: `(private, shared)`.
    pub fn counts(&self) -> (usize, usize) {
        let mut private = 0;
        let mut shared = 0;
        for (_, state) in self.iter() {
            match state {
                PageState::Private(_) => private += 1,
                PageState::Shared => shared += 1,
                PageState::Unused => {}
            }
        }
        (private, shared)
    }

    /// Iterates over all pages with a non-`Unused` state, in page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, PageState)> + '_ {
        self.states
            .iter_nonempty()
            .map(|(p, w)| (Vpn::new(p), decode(w.raw())))
    }

    /// Number of pages ever touched.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no page has been touched.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn unused_to_private_to_shared() {
        let mut table = PageStateTable::new();
        let p = Vpn::new(5);
        assert_eq!(table.get(p), PageState::Unused);
        assert_eq!(table.on_fault(p, t(0)), Transition::MadePrivate);
        assert_eq!(table.get(p), PageState::Private(t(0)));
        assert_eq!(table.on_fault(p, t(1)), Transition::MadeShared);
        assert_eq!(table.get(p), PageState::Shared);
        assert!(table.is_shared(p));
    }

    #[test]
    fn same_thread_fault_on_private_page_is_spurious() {
        let mut table = PageStateTable::new();
        let p = Vpn::new(9);
        table.on_fault(p, t(2));
        assert_eq!(
            table.on_fault(p, t(2)),
            Transition::AlreadyPrivateToFaultingThread
        );
        assert_eq!(table.get(p), PageState::Private(t(2)));
    }

    #[test]
    fn shared_pages_never_downgrade() {
        let mut table = PageStateTable::new();
        let p = Vpn::new(1);
        table.on_fault(p, t(0));
        table.on_fault(p, t(1));
        for i in 0..4 {
            assert_eq!(table.on_fault(p, t(i)), Transition::AlreadyShared);
            assert_eq!(table.get(p), PageState::Shared);
        }
    }

    #[test]
    fn counts_reflect_states() {
        let mut table = PageStateTable::new();
        table.on_fault(Vpn::new(1), t(0));
        table.on_fault(Vpn::new(2), t(0));
        table.on_fault(Vpn::new(2), t(1));
        let (private, shared) = table.counts();
        assert_eq!(private, 1);
        assert_eq!(shared, 1);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn encoding_roundtrips_every_state() {
        for state in [
            PageState::Unused,
            PageState::Shared,
            PageState::Private(t(0)),
            PageState::Private(t(7)),
            PageState::Private(ThreadId::new(u32::MAX)),
        ] {
            assert_eq!(decode(encode(state)), state, "{state}");
        }
        // Private(0) must be distinguishable from Unused and Shared.
        assert_ne!(encode(PageState::Private(t(0))), 0);
        assert_ne!(encode(PageState::Private(t(0))), SHARED_WORD);
    }

    #[test]
    fn widely_separated_pages_coexist_in_the_directory() {
        // Application, mirror and fake-fault page numbers span the whole
        // address space; the slab directory must hold them all sparsely.
        let mut table = PageStateTable::new();
        let pages = [0x400u64, 0x6_0000_0000, u64::MAX >> 12];
        for (i, &p) in pages.iter().enumerate() {
            table.on_fault(Vpn::new(p), t(i as u32));
        }
        for &p in &pages {
            assert!(matches!(table.get(Vpn::new(p)), PageState::Private(_)));
        }
        assert_eq!(table.len(), pages.len());
    }

    #[test]
    fn transition_shared_predicate() {
        assert!(Transition::MadeShared.page_is_shared());
        assert!(Transition::AlreadyShared.page_is_shared());
        assert!(!Transition::MadePrivate.page_is_shared());
        assert!(!Transition::AlreadyPrivateToFaultingThread.page_is_shared());
    }
}

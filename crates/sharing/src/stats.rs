//! Sharing-detector statistics (feeds the paper's Table 2 and Figure 6).

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::AikidoSd`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingStats {
    /// Aikido faults handled by the sharing detector (the paper's
    /// "Segmentation Faults" column of Table 2).
    pub faults_handled: u64,
    /// Unused → Private transitions.
    pub private_transitions: u64,
    /// Private → Shared transitions.
    pub shared_transitions: u64,
    /// Faults on pages that were already shared (new instructions discovered).
    pub shared_page_faults: u64,
    /// Spurious faults (page already private to the faulting thread).
    pub spurious_faults: u64,
    /// Distinct static instructions handed to the tool for instrumentation.
    pub instructions_instrumented: u64,
    /// Pages registered (protected + mirrored) with the detector.
    pub pages_registered: u64,
    /// Hypercalls the detector issued to change protections.
    pub protection_hypercalls: u64,
}

impl SharingStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_zero() {
        let s = SharingStats::new();
        assert_eq!(s.faults_handled, 0);
        assert_eq!(s.instructions_instrumented, 0);
        assert_eq!(s, SharingStats::default());
    }
}

//! Sharing-detector statistics (feeds the paper's Table 2 and Figure 6).

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::AikidoSd`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharingStats {
    /// Aikido faults handled by the sharing detector (the paper's
    /// "Segmentation Faults" column of Table 2).
    pub faults_handled: u64,
    /// Unused → Private transitions.
    pub private_transitions: u64,
    /// Private → Shared transitions.
    pub shared_transitions: u64,
    /// Faults on pages that were already shared (new instructions discovered).
    pub shared_page_faults: u64,
    /// Spurious faults (page already private to the faulting thread).
    pub spurious_faults: u64,
    /// Distinct static instructions handed to the tool for instrumentation.
    pub instructions_instrumented: u64,
    /// Pages registered (protected + mirrored) with the detector.
    pub pages_registered: u64,
    /// Hypercalls the detector issued to change protections.
    pub protection_hypercalls: u64,
}

impl SharingStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another set of statistics to this one componentwise. The epoch
    /// engine uses this to fold per-worker counters into one report at epoch
    /// boundaries, where page-state transitions are serialized; the merged
    /// result is independent of merge order.
    pub fn merge(&mut self, other: &SharingStats) {
        self.faults_handled += other.faults_handled;
        self.private_transitions += other.private_transitions;
        self.shared_transitions += other.shared_transitions;
        self.shared_page_faults += other.shared_page_faults;
        self.spurious_faults += other.spurious_faults;
        self.instructions_instrumented += other.instructions_instrumented;
        self.pages_registered += other.pages_registered;
        self.protection_hypercalls += other.protection_hypercalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise_and_is_order_independent() {
        let a = SharingStats {
            faults_handled: 3,
            shared_transitions: 1,
            ..SharingStats::new()
        };
        let b = SharingStats {
            faults_handled: 2,
            protection_hypercalls: 7,
            ..SharingStats::new()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.faults_handled, 5);
        assert_eq!(ab.shared_transitions, 1);
        assert_eq!(ab.protection_hypercalls, 7);
    }

    #[test]
    fn default_is_all_zero() {
        let s = SharingStats::new();
        assert_eq!(s.faults_handled, 0);
        assert_eq!(s.instructions_instrumented, 0);
        assert_eq!(s, SharingStats::default());
    }
}

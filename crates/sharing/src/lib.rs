//! AikidoSD — the Aikido sharing detector (§3.3).
//!
//! The sharing detector's goal is that instructions touching only
//! thread-private data run with close to zero overhead. It achieves this with
//! per-thread page protection:
//!
//! 1. When the target application starts, every mapped page is protected for
//!    every thread (and mirrored through the dual shadow mapping).
//! 2. The first access by a thread faults once; the page becomes **private**
//!    to that thread and is unprotected *for that thread only*. All later
//!    accesses by the same thread are full speed.
//! 3. When a *different* thread accesses a private page, the page becomes
//!    **shared** and is protected for *all* threads — permanently, because
//!    Aikido must observe every instruction that touches shared data.
//! 4. From then on every new static instruction that touches the shared page
//!    faults once, is handed to the DBI engine for instrumentation (flush +
//!    re-JIT), and its memory accesses are redirected through mirror pages so
//!    they no longer fault.
//!
//! The detector never downgrades a shared page, and the only false-negative
//! window is the first two accesses that triggered the private→shared
//! transition (§6) — both properties are covered by tests here and in the
//! integration suite.
//!
//! # Examples
//!
//! ```
//! use aikido_sharing::{AikidoSd, PageState};
//! use aikido_types::{AccessKind, Addr, BlockId, InstrId, Prot, ThreadId};
//! use aikido_vm::{AikidoVm, TouchOutcome, VmConfig};
//! use aikido_dbi::{DbiEngine, Program, StaticInstr};
//! use aikido_types::{AddrMode};
//!
//! # fn main() -> aikido_types::Result<()> {
//! let mut vm = AikidoVm::new(VmConfig::default());
//! let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
//! vm.register_thread(t0)?;
//! vm.register_thread(t1)?;
//! let base = Addr::new(0x10_0000);
//! vm.mmap(base, 4, Prot::RW_USER)?;
//!
//! let mut program = Program::new();
//! let block = program.add_block(vec![StaticInstr::Mem {
//!     kind: AccessKind::Write,
//!     mode: AddrMode::Indirect,
//! }]);
//! let mut engine = DbiEngine::new(program);
//! let instr = InstrId::new(block, 0);
//!
//! let mut sd = AikidoSd::new();
//! sd.attach_region(&mut vm, base, 4)?;
//!
//! // Thread 0's first access faults once and the page becomes private.
//! let touch = vm.touch(t0, base, AccessKind::Write)?;
//! if let TouchOutcome::AikidoFault(fault) = touch.outcome {
//!     sd.handle_fault(&mut vm, &mut engine, &fault, instr)?;
//! }
//! assert_eq!(sd.page_state(base.page()), PageState::Private(t0));
//!
//! // Thread 1 touching the same page makes it shared and instruments the
//! // faulting instruction.
//! let touch = vm.touch(t1, base, AccessKind::Write)?;
//! if let TouchOutcome::AikidoFault(fault) = touch.outcome {
//!     sd.handle_fault(&mut vm, &mut engine, &fault, instr)?;
//! }
//! assert_eq!(sd.page_state(base.page()), PageState::Shared);
//! assert!(engine.is_instrumented(instr));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod detector;
mod page_state;
mod stats;

pub use detector::{AikidoSd, FaultDisposition, SharingView};
pub use page_state::{PageState, PageStateTable, Transition};
pub use stats::SharingStats;

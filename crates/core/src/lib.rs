//! Aikido: accelerating shared data dynamic analyses — the public facade of
//! the reproduction of Olszewski et al., ASPLOS 2012.
//!
//! Aikido speeds up dynamic analyses that only care about *shared* data (race
//! detectors, atomicity checkers, sharing profilers) by detecting shared
//! pages with per-thread page protection — exposed to unmodified applications
//! by a custom hypervisor — and instrumenting only the instructions that
//! access them. Everything else runs at near-native speed under dynamic
//! binary instrumentation.
//!
//! This crate is the entry point a downstream user programs against. It
//! re-exports the component crates and offers a small, batteries-included API:
//!
//! * [`AikidoSystem`] — configure a simulator (cost model, scheduling
//!   quantum) and run workloads under [`Mode::Native`],
//!   [`Mode::FullInstrumentation`] or [`Mode::Aikido`], with FastTrack or a
//!   custom [`SharedDataAnalysis`].
//! * [`run_parsec_benchmark`] — the paper's experiment in one call: the
//!   native / FastTrack / Aikido-FastTrack triple for one of the ten PARSEC
//!   presets.
//! * [`prelude`] — the types needed by typical users.
//!
//! # Quick start
//!
//! ```
//! use aikido::prelude::*;
//!
//! // Build the workload the paper's blackscholes preset describes (scaled
//! // down so the doctest stays fast) and compare the three configurations.
//! let spec = WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.05);
//! let comparison = AikidoSystem::new().compare_spec(&spec);
//!
//! // Aikido instruments a subset of accesses yet finds the same races
//! // (none, for this race-free benchmark).
//! assert!(comparison.aikido.counts.instrumented_accesses
//!     <= comparison.full.counts.instrumented_accesses);
//! assert_eq!(comparison.aikido.race_count(), comparison.full.race_count());
//! ```
//!
//! # Writing your own shared data analysis
//!
//! Implement [`SharedDataAnalysis`] and hand it to
//! [`AikidoSystem::run_with_analysis`]; the Aikido pipeline will deliver only
//! the accesses that touch shared pages, plus every synchronisation event.
//!
//! ```
//! use aikido::prelude::*;
//!
//! #[derive(Default, Debug)]
//! struct SharingProfiler {
//!     shared_writes: u64,
//! }
//!
//! impl SharedDataAnalysis for SharingProfiler {
//!     fn name(&self) -> &'static str {
//!         "sharing-profiler"
//!     }
//!     fn on_access(&mut self, cx: AccessContext) {
//!         if cx.kind.is_write() {
//!             self.shared_writes += 1;
//!         }
//!     }
//!     fn reports(&self) -> Vec<AnalysisReport> {
//!         Vec::new()
//!     }
//! }
//!
//! let spec = aikido::workloads::producer_consumer_workload(4).scaled(0.2);
//! let workload = Workload::generate(&spec);
//! let mut profiler = SharingProfiler::default();
//! AikidoSystem::new().run_with_analysis(&workload, Mode::Aikido, &mut profiler);
//! assert!(profiler.shared_writes > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod analyses;

/// The fundamental shared types (re-export of `aikido-types`).
pub use aikido_types as types;

/// The AikidoVM hypervisor model (re-export of `aikido-vm`).
pub use aikido_vm as vm;

/// The Umbra-style shadow memory (re-export of `aikido-shadow`).
pub use aikido_shadow as shadow;

/// The DynamoRIO-style DBI engine (re-export of `aikido-dbi`).
pub use aikido_dbi as dbi;

/// The FastTrack race detector (re-export of `aikido-fasttrack`).
pub use aikido_fasttrack as fasttrack;

/// The AikidoSD sharing detector (re-export of `aikido-sharing`).
pub use aikido_sharing as sharing;

/// Synthetic PARSEC-calibrated workloads (re-export of `aikido-workloads`).
pub use aikido_workloads as workloads;

/// The execution engine and cost model (re-export of `aikido-sim`).
pub use aikido_sim as sim;

/// The checkpoint/restore snapshot plane: versioned, checksummed state
/// images and the fault-injection plans that attack them (re-export of
/// `aikido-snapshot`).
pub use aikido_snapshot as snapshot;

/// The static pre-analysis and its runtime audit oracle (re-export of
/// `aikido-staticcheck`).
pub use aikido_staticcheck as staticcheck;

pub use aikido_fasttrack::{FastTrack, FastTrackConfig};
pub use aikido_sim::{
    CheckpointOutcome, Comparison, CostModel, FaultPlan, Mode, RunCounts, RunReport,
    ShardOccupancy, SimConfig, SimConfigError, SimError, Simulator, Snapshot, SnapshotError,
};
pub use aikido_staticcheck::{StaticAudit, StaticReport};
pub use aikido_types::{
    AccessContext, AccessKind, Addr, AnalysisReport, Prot, ReportKind, SharedDataAnalysis,
    ThreadId, Vpn,
};
pub use aikido_workloads::{Workload, WorkloadSpec, PARSEC_BENCHMARKS};

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use crate::{
        AccessContext, AccessKind, Addr, AikidoSystem, AnalysisReport, CheckpointOutcome,
        Comparison, CostModel, FastTrack, Mode, ReportKind, RunReport, SharedDataAnalysis,
        SimConfig, SimConfigError, SimError, Simulator, Snapshot, SnapshotError, ThreadId,
        Workload, WorkloadSpec,
    };
}

/// A configured Aikido system: the simulator plus its cost model, ready to
/// run workloads in any mode.
///
/// This is a thin, non-consuming builder over [`Simulator`]; see the
/// crate-level examples.
#[derive(Debug, Clone, Default)]
pub struct AikidoSystem {
    simulator: Simulator,
}

impl AikidoSystem {
    /// Creates a system with the default (paper-calibrated) cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a system with a custom cost model.
    pub fn with_cost_model(cost: CostModel) -> Self {
        AikidoSystem {
            simulator: Simulator::new(cost),
        }
    }

    /// Creates a system from a validated [`SimConfig`] (see
    /// [`Simulator::from_config`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SimConfigError`] naming the first invalid field.
    pub fn from_config(config: SimConfig) -> Result<Self, SimConfigError> {
        Ok(AikidoSystem {
            simulator: Simulator::from_config(config)?,
        })
    }

    /// Sets the scheduling quantum (basic-block executions per thread before
    /// the simulated scheduler switches threads).
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.simulator = self.simulator.clone().with_quantum(quantum);
        self
    }

    /// Sets the epoch-engine worker count (1 = sequential). Any count
    /// produces byte-identical reports; higher counts move block production
    /// onto a pool of OS threads. See [`Simulator::with_workers`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.simulator = self.simulator.clone().with_workers(workers);
        self
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }

    /// Runs `workload` in `mode` with the FastTrack race detector.
    pub fn run(&self, workload: &Workload, mode: Mode) -> RunReport {
        self.simulator.run(workload, mode)
    }

    /// Runs `workload` in `mode` with a custom analysis.
    pub fn run_with_analysis<A: SharedDataAnalysis>(
        &self,
        workload: &Workload,
        mode: Mode,
        analysis: &mut A,
    ) -> RunReport {
        self.simulator.run_with_analysis(workload, mode, analysis)
    }

    /// Runs `workload` in `mode`, pausing every `SimConfig::checkpoint_every`
    /// block executions to serialize, re-validate and restore the full
    /// simulation state (see [`Simulator::run_checkpointed`]). Without a
    /// configured policy this is an ordinary run.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a worker panics or a checkpoint image fails
    /// its integrity validation.
    pub fn run_checkpointed(&self, workload: &Workload, mode: Mode) -> Result<RunReport, SimError> {
        self.simulator.run_checkpointed(workload, mode)
    }

    /// Runs `workload` in `mode` until `after_blocks` block executions have
    /// retired, then pauses and serializes the full state (see
    /// [`Simulator::checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the run fails before reaching the target.
    pub fn checkpoint(
        &self,
        workload: &Workload,
        mode: Mode,
        after_blocks: u64,
    ) -> Result<CheckpointOutcome, SimError> {
        self.simulator.checkpoint(workload, mode, after_blocks)
    }

    /// Resumes a checkpointed run to completion; the final report is
    /// byte-identical to the uninterrupted run's (see [`Simulator::resume`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] naming the failing section and offset if the
    /// snapshot is corrupt or belongs to a different configuration.
    pub fn resume(&self, workload: &Workload, snapshot: &Snapshot) -> Result<RunReport, SimError> {
        self.simulator.resume(workload, snapshot)
    }

    /// Runs the native / FastTrack / Aikido-FastTrack triple for `workload`.
    pub fn compare(&self, workload: &Workload) -> Comparison {
        self.simulator.compare(workload)
    }

    /// Generates the workload described by `spec` and runs the comparison
    /// triple.
    pub fn compare_spec(&self, spec: &WorkloadSpec) -> Comparison {
        let workload = Workload::generate(spec);
        self.compare(&workload)
    }
}

/// Runs the paper's core experiment for one PARSEC benchmark preset at the
/// given workload scale (1.0 = the default calibrated size), returning the
/// native / FastTrack / Aikido-FastTrack comparison.
///
/// # Errors
///
/// Returns an error if `name` is not one of [`PARSEC_BENCHMARKS`].
pub fn run_parsec_benchmark(name: &str, scale: f64) -> Result<Comparison, types::AikidoError> {
    let spec = WorkloadSpec::parsec(name).ok_or_else(|| types::AikidoError::InvalidConfig {
        reason: format!("unknown PARSEC benchmark '{name}'"),
    })?;
    Ok(AikidoSystem::new().compare_spec(&spec.scaled(scale)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_builder_configures_quantum_and_cost_model() {
        let system = AikidoSystem::with_cost_model(CostModel::default()).quantum(2);
        let spec = WorkloadSpec::parsec("canneal")
            .unwrap()
            .scaled(0.02)
            .with_threads(2);
        let report = system.run(&Workload::generate(&spec), Mode::Aikido);
        assert!(report.cycles > 0);
        assert_eq!(report.threads, 2);
    }

    #[test]
    fn run_parsec_benchmark_rejects_unknown_names() {
        assert!(run_parsec_benchmark("doesnotexist", 1.0).is_err());
    }

    #[test]
    fn run_parsec_benchmark_produces_the_three_reports() {
        let cmp = run_parsec_benchmark("blackscholes", 0.02).unwrap();
        assert_eq!(cmp.native.mode, "native");
        assert_eq!(cmp.full.mode, "full");
        assert_eq!(cmp.aikido.mode, "aikido");
        assert!(cmp.full_slowdown() > 1.0);
    }
}

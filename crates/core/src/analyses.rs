//! Additional shared data analyses built on the Aikido framework.
//!
//! The paper positions Aikido as a *framework* for shared data analyses, with
//! the FastTrack race detector as the flagship client (§4) and other tools —
//! lockset race detectors, atomicity checkers, sharing profilers — as further
//! candidates (§1, §7.3). This module provides two such clients:
//!
//! * [`LockSet`] — an Eraser-style lockset race detector (Savage et al.,
//!   cited as \[31\] in the paper). Unlike FastTrack it can report false
//!   positives, but it is schedule-insensitive for the accesses it observes,
//!   which makes it a useful cross-check.
//! * [`SharingProfile`] — a page/variable-granularity sharing profiler, the
//!   kind of "understand your program's communication" tool the paper's
//!   introduction motivates.
//!
//! Both implement [`SharedDataAnalysis`], so they can be driven by the Aikido
//! pipeline (shared accesses only) or by full instrumentation, exactly like
//! FastTrack.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use aikido_types::{
    AccessContext, AccessKind, Addr, AnalysisReport, InstrId, LockId, ReportKind,
    SharedDataAnalysis, ThreadId, Vpn,
};

/// The per-variable state of the Eraser lockset algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LocksetState {
    /// Only one thread has touched the variable so far. The candidate set is
    /// refined on every access but violations are not reported yet (this is
    /// Eraser's allowance for unlocked initialisation).
    Exclusive {
        owner: ThreadId,
        candidates: BTreeSet<LockId>,
    },
    /// Several threads read the variable, no writes since it became shared.
    SharedRead { candidates: BTreeSet<LockId> },
    /// Several threads access the variable with writes; the candidate set
    /// must stay non-empty.
    SharedModified { candidates: BTreeSet<LockId> },
}

/// An Eraser-style lockset race detector.
///
/// For every variable (8-byte block) it intersects the set of locks held at
/// each access; if the candidate set becomes empty while the variable is
/// written by multiple threads, a potential race is reported.
///
/// # Examples
///
/// ```
/// use aikido::analyses::LockSet;
/// use aikido::types::{AccessContext, AccessKind, Addr, BlockId, InstrId, LockId, SharedDataAnalysis, ThreadId};
///
/// let mut eraser = LockSet::new();
/// let cx = |t: u32, kind| AccessContext {
///     thread: ThreadId::new(t),
///     addr: Addr::new(0x100),
///     kind,
///     size: 8,
///     instr: InstrId::new(BlockId::new(0), 0),
/// };
/// eraser.on_acquire(ThreadId::new(0), LockId::new(1));
/// eraser.on_access(cx(0, AccessKind::Write));
/// eraser.on_release(ThreadId::new(0), LockId::new(1));
/// // Second thread writes without any lock: candidate set empties.
/// eraser.on_access(cx(1, AccessKind::Write));
/// assert_eq!(eraser.reports().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct LockSet {
    granularity: u64,
    held: HashMap<ThreadId, BTreeSet<LockId>>,
    vars: HashMap<u64, LocksetState>,
    reported: HashSet<u64>,
    reports: Vec<AnalysisReport>,
}

impl LockSet {
    /// Creates a lockset detector with the paper's 8-byte variable blocks.
    pub fn new() -> Self {
        LockSet {
            granularity: 8,
            ..Default::default()
        }
    }

    fn block_of(&self, addr: Addr) -> u64 {
        addr.raw() / self.granularity.max(1)
    }

    fn held_by(&self, thread: ThreadId) -> BTreeSet<LockId> {
        self.held.get(&thread).cloned().unwrap_or_default()
    }

    /// Number of variables currently tracked.
    pub fn tracked_variables(&self) -> usize {
        self.vars.len()
    }

    fn report(&mut self, cx: &AccessContext, block: u64) {
        if !self.reported.insert(block) {
            return;
        }
        self.reports.push(AnalysisReport {
            kind: ReportKind::DataRace,
            addr: Addr::new(block * self.granularity.max(1)),
            thread: cx.thread,
            other_thread: None,
            instr: Some(cx.instr),
            message: "lockset became empty for a shared-modified variable".to_string(),
        });
    }
}

impl SharedDataAnalysis for LockSet {
    fn name(&self) -> &'static str {
        "eraser-lockset"
    }

    fn on_access(&mut self, cx: AccessContext) {
        let block = self.block_of(cx.addr);
        let held = self.held_by(cx.thread);
        let state = self.vars.entry(block).or_insert(LocksetState::Exclusive {
            owner: cx.thread,
            candidates: held.clone(),
        });
        let mut racy = false;
        let next = match state {
            LocksetState::Exclusive { owner, candidates } if *owner == cx.thread => {
                // Keep refining the candidate set during the exclusive phase,
                // but never report: single-thread histories are race free.
                *candidates = candidates.intersection(&held).copied().collect();
                None
            }
            LocksetState::Exclusive { candidates, .. } => {
                // Second thread: the candidate set carries over from the
                // exclusive phase and is intersected with the locks held now.
                let intersection: BTreeSet<LockId> =
                    candidates.intersection(&held).copied().collect();
                if cx.kind.is_write() {
                    racy = intersection.is_empty();
                    Some(LocksetState::SharedModified {
                        candidates: intersection,
                    })
                } else {
                    Some(LocksetState::SharedRead {
                        candidates: intersection,
                    })
                }
            }
            LocksetState::SharedRead { candidates } => {
                let intersection: BTreeSet<LockId> =
                    candidates.intersection(&held).copied().collect();
                if cx.kind.is_write() {
                    racy = intersection.is_empty();
                    Some(LocksetState::SharedModified {
                        candidates: intersection,
                    })
                } else {
                    Some(LocksetState::SharedRead {
                        candidates: intersection,
                    })
                }
            }
            LocksetState::SharedModified { candidates } => {
                let intersection: BTreeSet<LockId> =
                    candidates.intersection(&held).copied().collect();
                racy = intersection.is_empty();
                Some(LocksetState::SharedModified {
                    candidates: intersection,
                })
            }
        };
        if let Some(next) = next {
            *state = next;
        }
        if racy {
            self.report(&cx, block);
        }
    }

    fn on_acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.held.entry(thread).or_default().insert(lock);
    }

    fn on_release(&mut self, thread: ThreadId, lock: LockId) {
        if let Some(set) = self.held.get_mut(&thread) {
            set.remove(&lock);
        }
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        self.reports.clone()
    }

    fn access_cost_cycles(&self) -> u64 {
        // A lockset intersection is cheaper than a vector-clock comparison.
        38
    }
}

/// A sharing profile: per-page and per-instruction communication statistics.
#[derive(Debug, Default, Clone)]
pub struct SharingProfile {
    reads: BTreeMap<Vpn, u64>,
    writes: BTreeMap<Vpn, u64>,
    instr_pages: BTreeMap<InstrId, BTreeSet<Vpn>>,
    threads_per_page: BTreeMap<Vpn, BTreeSet<ThreadId>>,
}

impl SharingProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accesses observed for `page`.
    pub fn page_accesses(&self, page: Vpn) -> u64 {
        self.reads.get(&page).copied().unwrap_or(0) + self.writes.get(&page).copied().unwrap_or(0)
    }

    /// Pages touched by more than one thread, with their access counts,
    /// sorted hottest first.
    pub fn hottest_shared_pages(&self) -> Vec<(Vpn, u64)> {
        let mut pages: Vec<(Vpn, u64)> = self
            .threads_per_page
            .iter()
            .filter(|(_, threads)| threads.len() > 1)
            .map(|(&p, _)| (p, self.page_accesses(p)))
            .collect();
        pages.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        pages
    }

    /// Number of distinct static instructions that touched `page`.
    pub fn instructions_touching(&self, page: Vpn) -> usize {
        self.instr_pages
            .values()
            .filter(|pages| pages.contains(&page))
            .count()
    }

    /// Write fraction over all profiled accesses (0 when nothing was seen).
    pub fn write_fraction(&self) -> f64 {
        let writes: u64 = self.writes.values().sum();
        let total: u64 = writes + self.reads.values().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            writes as f64 / total as f64
        }
    }
}

impl SharedDataAnalysis for SharingProfile {
    fn name(&self) -> &'static str {
        "sharing-profile"
    }

    fn on_access(&mut self, cx: AccessContext) {
        let page = cx.addr.page();
        match cx.kind {
            AccessKind::Read => *self.reads.entry(page).or_default() += 1,
            AccessKind::Write => *self.writes.entry(page).or_default() += 1,
        }
        self.instr_pages.entry(cx.instr).or_default().insert(page);
        self.threads_per_page
            .entry(page)
            .or_default()
            .insert(cx.thread);
    }

    fn on_access_batch(&mut self, run: &[AccessContext], costs: &mut Vec<u64>) {
        costs.clear();
        let Some(first) = run.first() else {
            return;
        };
        let page = first.addr.page();
        if run.len() == 1 || !run.iter().all(|cx| cx.addr.page() == page) {
            // Mixed pages (callers normally group runs by page, but the
            // contract does not require it): scalar delivery.
            for cx in run {
                self.on_access(*cx);
                costs.push(self.last_access_cost_cycles());
            }
            return;
        }
        // One page for the whole run: one read-counter lookup, one
        // write-counter lookup and one thread-set update replace the
        // per-access BTree walks; the final state is exactly what per-access
        // delivery would have produced (counters are additive, sets are
        // idempotent, and per-instruction pages still update per access).
        let reads = run.iter().filter(|cx| cx.kind == AccessKind::Read).count() as u64;
        let writes = run.len() as u64 - reads;
        if reads > 0 {
            *self.reads.entry(page).or_default() += reads;
        }
        if writes > 0 {
            *self.writes.entry(page).or_default() += writes;
        }
        self.threads_per_page
            .entry(page)
            .or_default()
            .insert(first.thread);
        for cx in run {
            self.instr_pages.entry(cx.instr).or_default().insert(page);
            if cx.thread != first.thread {
                self.threads_per_page
                    .entry(page)
                    .or_default()
                    .insert(cx.thread);
            }
        }
        let cost = self.last_access_cost_cycles();
        costs.resize(run.len(), cost);
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        Vec::new()
    }

    fn access_cost_cycles(&self) -> u64 {
        15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::BlockId;

    fn cx(thread: u32, addr: u64, kind: AccessKind) -> AccessContext {
        AccessContext {
            thread: ThreadId::new(thread),
            addr: Addr::new(addr),
            kind,
            size: 8,
            instr: InstrId::new(BlockId::new(1), 0),
        }
    }

    #[test]
    fn lockset_accepts_consistently_locked_accesses() {
        let mut eraser = LockSet::new();
        let lock = LockId::new(7);
        for t in 0..3u32 {
            eraser.on_acquire(ThreadId::new(t), lock);
            eraser.on_access(cx(t, 0x100, AccessKind::Write));
            eraser.on_release(ThreadId::new(t), lock);
        }
        assert!(eraser.reports().is_empty());
        assert_eq!(eraser.tracked_variables(), 1);
    }

    #[test]
    fn lockset_reports_unprotected_shared_writes() {
        let mut eraser = LockSet::new();
        eraser.on_access(cx(0, 0x200, AccessKind::Write));
        eraser.on_access(cx(1, 0x200, AccessKind::Write));
        assert_eq!(eraser.reports().len(), 1);
        // Duplicate reports for the same block are suppressed.
        eraser.on_access(cx(0, 0x200, AccessKind::Write));
        assert_eq!(eraser.reports().len(), 1);
    }

    #[test]
    fn lockset_reports_inconsistent_lock_usage() {
        let mut eraser = LockSet::new();
        let (l1, l2) = (LockId::new(1), LockId::new(2));
        eraser.on_acquire(ThreadId::new(0), l1);
        eraser.on_access(cx(0, 0x300, AccessKind::Write));
        eraser.on_release(ThreadId::new(0), l1);
        eraser.on_acquire(ThreadId::new(1), l2);
        eraser.on_access(cx(1, 0x300, AccessKind::Write));
        eraser.on_release(ThreadId::new(1), l2);
        assert_eq!(
            eraser.reports().len(),
            1,
            "disjoint locksets must be flagged"
        );
    }

    #[test]
    fn lockset_read_sharing_without_writes_is_fine() {
        let mut eraser = LockSet::new();
        for t in 0..4u32 {
            eraser.on_access(cx(t, 0x400, AccessKind::Read));
        }
        assert!(eraser.reports().is_empty());
    }

    #[test]
    fn lockset_exclusive_phase_never_reports() {
        let mut eraser = LockSet::new();
        for i in 0..10 {
            eraser.on_access(cx(0, 0x500 + i * 8, AccessKind::Write));
        }
        assert!(eraser.reports().is_empty());
    }

    #[test]
    fn sharing_profile_tracks_pages_threads_and_instructions() {
        let mut profile = SharingProfile::new();
        profile.on_access(cx(0, 0x1000, AccessKind::Write));
        profile.on_access(cx(1, 0x1008, AccessKind::Read));
        profile.on_access(cx(1, 0x2000, AccessKind::Read));
        let page = Addr::new(0x1000).page();
        assert_eq!(profile.page_accesses(page), 2);
        assert_eq!(profile.hottest_shared_pages(), vec![(page, 2)]);
        assert_eq!(profile.instructions_touching(page), 1);
        assert!((profile.write_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_profile_batch_delivery_matches_scalar_delivery() {
        let same_page = [
            cx(0, 0x1000, AccessKind::Write),
            cx(0, 0x1010, AccessKind::Read),
            cx(0, 0x1020, AccessKind::Read),
        ];
        let mixed_pages = [
            cx(1, 0x1000, AccessKind::Read),
            cx(1, 0x2000, AccessKind::Write),
        ];
        let mut scalar = SharingProfile::new();
        let mut batched = SharingProfile::new();
        let mut scalar_costs = Vec::new();
        let mut batched_costs = Vec::new();
        for run in [&same_page[..], &mixed_pages[..]] {
            scalar_costs.clear();
            for &a in run {
                scalar.on_access(a);
                scalar_costs.push(scalar.last_access_cost_cycles());
            }
            batched.on_access_batch(run, &mut batched_costs);
            assert_eq!(batched_costs, scalar_costs);
        }
        assert_eq!(batched.write_fraction(), scalar.write_fraction());
        assert_eq!(
            batched.hottest_shared_pages(),
            scalar.hottest_shared_pages()
        );
        let page = Addr::new(0x1000).page();
        assert_eq!(batched.page_accesses(page), scalar.page_accesses(page));
        assert_eq!(
            batched.instructions_touching(page),
            scalar.instructions_touching(page)
        );
    }

    #[test]
    fn sharing_profile_handles_empty_state() {
        let profile = SharingProfile::new();
        assert_eq!(profile.write_fraction(), 0.0);
        assert!(profile.hottest_shared_pages().is_empty());
    }
}

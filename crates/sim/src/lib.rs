//! The execution engine that ties the Aikido stack together and reproduces
//! the paper's measurements.
//!
//! A [`Simulator`] takes a workload from [`aikido_workloads`], an execution
//! [`Mode`] and a [`CostModel`], drives every thread's operation trace through
//! the appropriate pipeline, and produces a [`RunReport`]:
//!
//! * [`Mode::Native`] — the uninstrumented application: only native cycles.
//!   This is the denominator of every slowdown the paper reports.
//! * [`Mode::FullInstrumentation`] — the conventional shared data analysis:
//!   DynamoRIO dispatch + Umbra shadow translation + the analysis check on
//!   *every* memory access (the paper's "FastTrack" bars in Figure 5).
//! * [`Mode::Aikido`] — the full Aikido stack: the AikidoVM hypervisor
//!   provides per-thread page protection, AikidoSD turns protection faults
//!   into a private/shared page classification, only instructions that touch
//!   shared pages are instrumented (flush + re-JIT), their accesses are
//!   redirected through mirror pages, and everything else runs at near-native
//!   speed under the DBI engine.
//!
//! Wall-clock time is modelled as cycles: every event that costs time on real
//! hardware (instruction execution, analysis checks, shadow translations, VM
//! exits, page faults, block rebuilds, lock contention on analysis metadata)
//! is charged through the [`CostModel`]. Slowdowns are ratios of cycle
//! counts, which is exactly how the paper normalises its measurements, so the
//! *shape* of the results (who wins, by how much, where the crossovers are)
//! carries over even though the absolute constants are calibrated rather than
//! measured on a Xeon X7550.
//!
//! # Examples
//!
//! ```
//! use aikido_sim::{CostModel, Mode, Simulator};
//! use aikido_workloads::{Workload, WorkloadSpec};
//!
//! let spec = WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.02);
//! let workload = Workload::generate(&spec);
//! let native = Simulator::new(CostModel::default()).run(&workload, Mode::Native);
//! let aikido = Simulator::new(CostModel::default()).run(&workload, Mode::Aikido);
//! assert!(aikido.cycles > native.cycles);
//! assert!(aikido.slowdown_vs(&native) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod cost;
mod engine;
mod epoch;
mod report;
mod shard_plane;

pub use aikido_snapshot::{FaultPlan, Snapshot, SnapshotError};
pub use config::{SimConfig, SimConfigError};
pub use cost::CostModel;
pub use engine::{CheckpointOutcome, Comparison, Mode, SimError, Simulator};
pub use report::{RunCounts, RunReport};
pub use shard_plane::ShardOccupancy;

//! The parallel epoch engine: a hand-rolled worker pool that generates each
//! guest thread's block executions on real OS threads while the commit thread
//! retires them in deterministic logical-clock order.
//!
//! # Design
//!
//! The simulator's observable state (VM protections, sharing transitions,
//! FastTrack clocks, cycle accounting) is mutated exclusively by the *commit*
//! thread, which runs the exact same round-robin scheduler as sequential
//! mode. What moves onto the worker pool is the stage that needs no global
//! state at all: trace generation. Each guest thread's block stream is a pure
//! function of the workload (seeded RNG per thread), so workers can run
//! arbitrarily far ahead without observing — or perturbing — the simulated
//! execution.
//!
//! ```text
//!              producer workers (guest threads partitioned round-robin)
//!   worker 0: [T0 batch][T2 batch][T0 batch] ──┐ bounded
//!   worker 1: [T1 batch][T3 batch][T1 batch] ──┤ SPSC     commit thread
//!                                              ▼ lanes    (logical clock)
//!                                   lane T0 ▸▸▸▸──────┐
//!                                   lane T1 ▸▸──────┐ │  round-robin epochs:
//!                                   lane T2 ▸▸▸────┐│ │  T0 T1 T2 T3 │ T0 …
//!                                   lane T3 ▸─────┐││ └► VM ▪ sharing ▪
//!                                                 └┴┴──► FastTrack ▪ cycles
//!                     (consumed shells recycle back to their producer)
//! ```
//!
//! Epochs are delimited by batch boundaries: a worker produces one batch of
//! [`EPOCH_BLOCKS`] executions per owned guest thread per round, and the
//! bounded lane (capacity [`LANE_BATCHES`]) acts as the barrier that stops
//! producers from running unboundedly ahead of the commit clock. Because
//! commit order — and therefore every report, race, and example transcript —
//! is fixed by the logical clock rather than by OS scheduling, a parallel run
//! is byte-identical to the sequential one by construction; the
//! `parallel_equivalence` suite proves it per release.
//!
//! Consumed [`BlockExec`] shells flow back to their producer through an
//! unbounded recycle lane, so the steady state allocates nothing on either
//! side (mirroring the sequential scheduler's buffer reuse).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::Scope;

use aikido_types::ThreadId;
use aikido_workloads::{BlockExec, ThreadTrace, Workload};

use crate::engine::BlockFeed;

/// Where a run's per-thread block streams come from. The production
/// implementation is [`Workload`] (each stream is a [`ThreadTrace`]); tests
/// inject faulty sources to prove the engine contains producer panics
/// instead of hanging or tearing down the process.
pub(crate) trait TraceSource: Sync {
    /// One guest thread's block stream.
    type Stream<'s>: BlockStream + Send
    where
        Self: 's;

    /// Opens `thread`'s stream from the beginning.
    fn stream(&self, thread: ThreadId) -> Self::Stream<'_>;
}

/// One guest thread's stream of block executions (the producer half of
/// [`BlockFeed`]).
pub(crate) trait BlockStream {
    /// Appends up to `target` executions to `batch` (recycling its shells);
    /// returns `false` once the stream is exhausted.
    fn fill_batch(&mut self, batch: &mut Vec<BlockExec>, target: usize) -> bool;

    /// Produces the next execution into `out` (recycling its buffers);
    /// returns `false` once the stream is exhausted.
    fn next_into(&mut self, out: &mut BlockExec) -> bool;
}

impl TraceSource for Workload {
    type Stream<'s> = ThreadTrace<'s>;

    fn stream(&self, thread: ThreadId) -> ThreadTrace<'_> {
        self.thread_trace(thread)
    }
}

impl BlockStream for ThreadTrace<'_> {
    fn fill_batch(&mut self, batch: &mut Vec<BlockExec>, target: usize) -> bool {
        ThreadTrace::fill_batch(self, batch, target)
    }

    fn next_into(&mut self, out: &mut BlockExec) -> bool {
        ThreadTrace::next_into(self, out)
    }
}

/// Shared record of the first producer panic: the worker writes it before
/// exiting, the commit side inspects it once every producer has joined.
pub(crate) type PanicRecord = Arc<Mutex<Option<String>>>;

/// Renders a `catch_unwind` payload into the human-readable message carried
/// by [`SimError::WorkerPanic`](crate::SimError::WorkerPanic).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "producer panicked with a non-string payload".to_string()
    }
}

/// Block executions per produced batch (one epoch's worth for one guest
/// thread). Large enough to amortise channel traffic, small enough that the
/// commit thread never waits long for a lane refill.
pub(crate) const EPOCH_BLOCKS: usize = 1024;

/// Batches a lane buffers ahead of the commit clock. Bounds producer
/// run-ahead (the epoch barrier) and with it peak memory.
pub(crate) const LANE_BATCHES: usize = 4;

/// Commit-side view of one guest thread's lane.
struct Lane {
    rx: Receiver<Vec<BlockExec>>,
    recycle_tx: SyncSender<Vec<BlockExec>>,
    batch: Vec<BlockExec>,
    cursor: usize,
    exhausted: bool,
}

impl Lane {
    /// Hands the consumed batch's shells back to the producer (best effort —
    /// if the producer already exited, the shells are simply dropped).
    fn recycle_consumed(&mut self) {
        if !self.batch.is_empty() {
            let shells = std::mem::take(&mut self.batch);
            let _ = self.recycle_tx.try_send(shells);
        }
        self.cursor = 0;
    }
}

/// The commit thread's block source when running parallel: pops each guest
/// thread's next execution from its lane, blocking only when the producers
/// have genuinely not caught up yet.
pub(crate) struct ParallelFeed {
    lanes: Vec<Lane>,
    panic: PanicRecord,
}

impl ParallelFeed {
    /// A handle to the producers' panic record, inspected after every
    /// producer has joined (i.e. outside the thread scope). A closed lane and
    /// a panicked producer are indistinguishable mid-run — both drop the
    /// sender — so only the joined record separates "trace exhausted" from
    /// "producer died".
    pub(crate) fn panic_handle(&self) -> PanicRecord {
        Arc::clone(&self.panic)
    }
}

impl BlockFeed for ParallelFeed {
    fn next_into(&mut self, slot: usize, out: &mut BlockExec) -> bool {
        let lane = &mut self.lanes[slot];
        if lane.cursor == lane.batch.len() {
            lane.recycle_consumed();
            if lane.exhausted {
                return false;
            }
            match lane.rx.recv() {
                Ok(batch) => lane.batch = batch,
                Err(_) => {
                    // Producer dropped its sender: the trace is exhausted.
                    lane.exhausted = true;
                    return false;
                }
            }
        }
        std::mem::swap(out, &mut lane.batch[lane.cursor]);
        lane.cursor += 1;
        true
    }
}

/// Producer-side state for one owned guest thread.
struct ProducerLane<S> {
    trace: S,
    /// `None` once the trace is exhausted (dropping the sender is what tells
    /// the commit thread the lane is done).
    tx: Option<SyncSender<Vec<BlockExec>>>,
    recycle_rx: Receiver<Vec<BlockExec>>,
    /// A produced batch the bounded lane had no room for yet.
    pending: Option<Vec<BlockExec>>,
}

/// One worker: round-robins over its owned guest threads, each round
/// producing (or retrying delivery of) one epoch batch per thread. `try_send`
/// keeps a full lane from ever blocking the worker's other lanes, which is
/// what makes the pool deadlock-free: the commit thread only ever waits on a
/// lane whose producer is guaranteed to reach it again.
fn producer_loop<S: BlockStream>(mut lanes: Vec<ProducerLane<S>>) {
    // When every open lane is full the worker has outrun the commit clock by
    // LANE_BATCHES whole epochs; sleep with backoff instead of spinning so an
    // oversubscribed machine (CI runners, the 1-core case) gives the core
    // back to the commit thread.
    const IDLE_MIN: std::time::Duration = std::time::Duration::from_micros(10);
    const IDLE_MAX: std::time::Duration = std::time::Duration::from_micros(500);
    let mut idle = IDLE_MIN;
    let mut open = lanes.len();
    while open > 0 {
        let mut made_progress = false;
        for lane in &mut lanes {
            let Some(tx) = lane.tx.as_ref() else {
                continue;
            };
            // Deliver the stalled batch first; skip the lane if still full.
            if let Some(batch) = lane.pending.take() {
                match tx.try_send(batch) {
                    Ok(()) => made_progress = true,
                    Err(TrySendError::Full(batch)) => {
                        lane.pending = Some(batch);
                        continue;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // Commit side finished with this lane early.
                        lane.tx = None;
                        open -= 1;
                        continue;
                    }
                }
            }
            // Produce the next epoch batch into recycled shells.
            let mut batch = lane.recycle_rx.try_recv().unwrap_or_default();
            let more = lane.trace.fill_batch(&mut batch, EPOCH_BLOCKS);
            if !batch.is_empty() {
                made_progress = true;
                match lane.tx.as_ref().expect("lane is open").try_send(batch) {
                    Ok(()) => {}
                    Err(TrySendError::Full(batch)) => lane.pending = Some(batch),
                    Err(TrySendError::Disconnected(_)) => {
                        lane.tx = None;
                        open -= 1;
                        continue;
                    }
                }
            }
            if !more && lane.pending.is_none() {
                // Trace exhausted and everything delivered: close the lane.
                lane.tx = None;
                open -= 1;
            }
        }
        if made_progress {
            idle = IDLE_MIN;
        } else {
            std::thread::sleep(idle);
            idle = (idle * 2).min(IDLE_MAX);
        }
    }
}

/// Spawns `workers` producer threads inside `scope`, partitioning the
/// workload's guest threads round-robin across them, and returns the commit
/// thread's feed. `threads` must be the same slot order the scheduler uses.
pub(crate) fn spawn_producers<'scope, 'w: 'scope, S: TraceSource + ?Sized>(
    scope: &'scope Scope<'scope, '_>,
    source: &'w S,
    threads: &[ThreadId],
    workers: usize,
) -> ParallelFeed {
    let workers = workers.clamp(1, threads.len().max(1));
    let mut commit_lanes = Vec::with_capacity(threads.len());
    let mut producer_lanes: Vec<Vec<ProducerLane<S::Stream<'w>>>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (slot, &thread) in threads.iter().enumerate() {
        let (tx, rx) = sync_channel(LANE_BATCHES);
        // Recycle capacity mirrors the data lane: at most LANE_BATCHES + 1
        // batches are ever in flight per guest thread.
        let (recycle_tx, recycle_rx) = sync_channel(LANE_BATCHES + 1);
        commit_lanes.push(Lane {
            rx,
            recycle_tx,
            batch: Vec::new(),
            cursor: 0,
            exhausted: false,
        });
        producer_lanes[slot % workers].push(ProducerLane {
            trace: source.stream(thread),
            tx: Some(tx),
            recycle_rx,
            pending: None,
        });
    }
    let panic: PanicRecord = Arc::new(Mutex::new(None));
    for lanes in producer_lanes {
        let record = Arc::clone(&panic);
        scope.spawn(move || {
            // A panicking stream must not tear down the whole process (or
            // deadlock the commit thread): the unwind drops the worker's
            // lanes — disconnecting every owned guest thread, which the
            // commit side reads as exhaustion and drains normally — and the
            // first payload is recorded for `Simulator::try_run` to surface
            // as a structured `SimError::WorkerPanic`.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| producer_loop(lanes))) {
                let message = panic_message(payload);
                let mut slot = record
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                if slot.is_none() {
                    *slot = Some(message);
                }
            }
        });
    }
    ParallelFeed {
        lanes: commit_lanes,
        panic,
    }
}

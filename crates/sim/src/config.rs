//! `SimConfig`: one serializable, validated description of everything a
//! [`Simulator`](crate::Simulator) can be configured to do.
//!
//! Historically the simulator grew one `with_*` toggle per PR — scheduling
//! quantum (PR 1), epoch workers (PR 3), batched kernels and the inline TLB
//! (PR 4), packed shadow words (PR 5), the static pre-check (PR 6) and the
//! periodic checkpoint policy (PR 7) — plus a matching `*_from_env` helper
//! scattered per crate. `SimConfig` consolidates the sprawl:
//!
//! * every knob is a plain named field, so a configuration can be built,
//!   inspected, serialized (it is part of service requests and fleet
//!   reports) and compared;
//! * [`SimConfig::validate`] rejects nonsense (`quantum == 0`,
//!   `checkpoint_every == Some(0)`, a non-finite scale) with a structured
//!   [`SimConfigError`] naming the offending field — a service admission
//!   layer can turn that into a rejection instead of a panic;
//! * [`SimConfig::from_env_overrides`] is the *single* place environment
//!   variables are parsed. Library code never reads the environment; only
//!   binaries and examples opt in by starting from this constructor.
//!
//! The existing `Simulator::with_*` methods remain as thin delegates writing
//! into the simulator's embedded config, so no call site breaks.

use serde::{Deserialize, Serialize};

/// A structured configuration error: which field is invalid and why.
///
/// Returned by [`SimConfig::validate`] and [`SimConfig::from_json_value`];
/// surfaced verbatim by service admission layers so a bad request is a
/// rejection, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfigError {
    /// The offending `SimConfig` field.
    pub field: &'static str,
    /// Human-readable description of the problem.
    pub reason: String,
}

impl SimConfigError {
    fn new(field: &'static str, reason: impl Into<String>) -> Self {
        SimConfigError {
            field,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid SimConfig.{}: {}", self.field, self.reason)
    }
}

impl std::error::Error for SimConfigError {}

/// The full simulator configuration, as one serializable value.
///
/// Field defaults reproduce `Simulator::default()` exactly; see each field
/// for the `with_*` method it replaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Basic-block executions a thread runs before the round-robin scheduler
    /// switches to the next thread (`Simulator::with_quantum`). Must be ≥ 1.
    pub quantum: u32,
    /// OS worker threads for epoch-parallel block production
    /// (`Simulator::with_workers`); 1 is the sequential reference path.
    /// Reports are byte-identical at every count. Must be ≥ 1.
    pub workers: usize,
    /// Batched per-mode block kernels (default) vs the scalar per-access
    /// reference loop (`Simulator::with_batched_kernels`). Byte-identical by
    /// construction; the scalar path is the equivalence oracle.
    pub batched_kernels: bool,
    /// The simulator's per-thread inline-check tables
    /// (`Simulator::with_inline_tlb`). Disabling routes every access through
    /// `vm.touch`; reports do not change.
    pub inline_tlb: bool,
    /// The static pre-analysis plan installed into the DBI engine in Aikido
    /// mode (`Simulator::with_static_precheck`). Advice only; reports do not
    /// change.
    pub static_precheck: bool,
    /// Packed epoch shadow words vs the retained enum-store reference oracle
    /// in the FastTrack analysis (`FastTrack::with_packed_words`). Reports
    /// are byte-identical either way.
    pub packed_words: bool,
    /// Sharded parallel analysis (`Simulator::with_sharded_analysis`): when
    /// running with `workers > 1` in an analysed mode, FastTrack work for
    /// pages owned by a single worker partition is analysed on per-shard
    /// replicas drained by pool threads, with contended pages escalated to
    /// the commit thread and shard state merged deterministically. Reports
    /// are byte-identical either way; `false` retains the commit-thread-only
    /// path as the equivalence oracle. Inert at `workers == 1`.
    pub sharded_analysis: bool,
    /// Periodic checkpoint policy for
    /// [`Simulator::run_checkpointed`](crate::Simulator::run_checkpointed):
    /// every `N` block executions the run pauses, serializes, re-validates
    /// and resumes from the restored state. `None` disables the policy;
    /// `Some(0)` is invalid.
    pub checkpoint_every: Option<u64>,
    /// Workload scale factor for harnesses that generate workloads from
    /// specs (`spec.scaled(config.scale)`): benchmarks, the service layer
    /// and CI lanes. The simulator itself does not consume it — a
    /// `Simulator` runs whatever workload it is handed — but carrying it
    /// here keeps "how big" next to "how" in one serializable request.
    /// Must be finite and > 0.
    pub scale: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            quantum: 8,
            workers: 1,
            batched_kernels: true,
            inline_tlb: true,
            static_precheck: true,
            packed_words: true,
            sharded_analysis: true,
            checkpoint_every: None,
            scale: 1.0,
        }
    }
}

impl SimConfig {
    /// The default configuration (identical to `SimConfig::default()`,
    /// spelled as a constructor for builder chains).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: sets the scheduling quantum.
    pub fn with_quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum;
        self
    }

    /// Builder: sets the epoch-engine worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder: selects batched kernels (true) or the scalar reference loop.
    pub fn with_batched_kernels(mut self, batched: bool) -> Self {
        self.batched_kernels = batched;
        self
    }

    /// Builder: enables or disables the inline-check tables.
    pub fn with_inline_tlb(mut self, enabled: bool) -> Self {
        self.inline_tlb = enabled;
        self
    }

    /// Builder: enables or disables the static pre-analysis.
    pub fn with_static_precheck(mut self, enabled: bool) -> Self {
        self.static_precheck = enabled;
        self
    }

    /// Builder: selects the packed shadow-word plane (true) or the reference
    /// enum store for the FastTrack analysis.
    pub fn with_packed_words(mut self, packed: bool) -> Self {
        self.packed_words = packed;
        self
    }

    /// Builder: enables or disables sharded parallel analysis (`false`
    /// retains the commit-thread-only oracle path).
    pub fn with_sharded_analysis(mut self, sharded: bool) -> Self {
        self.sharded_analysis = sharded;
        self
    }

    /// Builder: sets the periodic checkpoint policy (`None` disables it).
    pub fn with_checkpoint_every(mut self, every: Option<u64>) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Builder: sets the workload scale factor.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Validates the configuration, returning a structured error naming the
    /// first invalid field.
    pub fn validate(&self) -> Result<(), SimConfigError> {
        if self.quantum == 0 {
            return Err(SimConfigError::new("quantum", "must be at least 1"));
        }
        if self.workers == 0 {
            return Err(SimConfigError::new(
                "workers",
                "must be at least 1 (1 = sequential)",
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err(SimConfigError::new(
                "checkpoint_every",
                "must be at least 1 when set (use null/None to disable)",
            ));
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(SimConfigError::new(
                "scale",
                format!("must be finite and > 0, got {}", self.scale),
            ));
        }
        Ok(())
    }

    /// The default configuration with the documented environment overrides
    /// applied — the single place the simulator's environment variables are
    /// parsed, intended for binaries and examples only (library behaviour
    /// stays a pure function of arguments):
    ///
    /// | variable | field | parsing |
    /// |----------|-------|---------|
    /// | `AIKIDO_PARALLEL` | `workers` | integer ≥ 1; otherwise ignored |
    /// | `AIKIDO_CHECKPOINT_EVERY` | `checkpoint_every` | integer ≥ 1; 0, unset or unparsable disable the policy |
    /// | `AIKIDO_SCALE` | `scale` | float > 0; otherwise ignored |
    /// | `AIKIDO_SHARDED` | `sharded_analysis` | `1`/`true` or `0`/`false`; otherwise ignored |
    pub fn from_env_overrides() -> Self {
        Self::default().with_env_overrides()
    }

    /// Applies the environment overrides of [`SimConfig::from_env_overrides`]
    /// on top of `self` (unset or unparsable variables leave the field
    /// untouched).
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(workers) = parse_env::<usize>("AIKIDO_PARALLEL").filter(|&w| w >= 1) {
            self.workers = workers;
        }
        if let Some(every) = parse_env::<u64>("AIKIDO_CHECKPOINT_EVERY") {
            self.checkpoint_every = (every > 0).then_some(every);
        }
        if let Some(scale) = parse_env::<f64>("AIKIDO_SCALE").filter(|s| s.is_finite() && *s > 0.0)
        {
            self.scale = scale;
        }
        if let Some(sharded) =
            parse_env::<String>("AIKIDO_SHARDED").and_then(|v| match v.as_str() {
                "1" | "true" => Some(true),
                "0" | "false" => Some(false),
                _ => None,
            })
        {
            self.sharded_analysis = sharded;
        }
        self
    }

    /// Parses a configuration from a JSON object (as produced by serializing
    /// a `SimConfig`), starting from the defaults: absent fields keep their
    /// default, unknown fields and type mismatches are structured errors,
    /// and the result is validated before it is returned.
    ///
    /// This is the wire format of the service request API: a `RunRequest`'s
    /// `config` member is exactly this object.
    pub fn from_json_value(value: &serde_json::Value) -> Result<Self, SimConfigError> {
        let serde_json::Value::Object(entries) = value else {
            return Err(SimConfigError::new("config", "must be a JSON object"));
        };
        let mut config = SimConfig::default();
        for (key, value) in entries {
            match key.as_str() {
                "quantum" => config.quantum = json_u64(value, "quantum")? as u32,
                "workers" => config.workers = json_u64(value, "workers")? as usize,
                "batched_kernels" => config.batched_kernels = json_bool(value, "batched_kernels")?,
                "inline_tlb" => config.inline_tlb = json_bool(value, "inline_tlb")?,
                "static_precheck" => config.static_precheck = json_bool(value, "static_precheck")?,
                "packed_words" => config.packed_words = json_bool(value, "packed_words")?,
                "sharded_analysis" => {
                    config.sharded_analysis = json_bool(value, "sharded_analysis")?
                }
                "checkpoint_every" => {
                    config.checkpoint_every = match value {
                        serde_json::Value::Null => None,
                        other => Some(json_u64(other, "checkpoint_every")?),
                    }
                }
                "scale" => {
                    config.scale = value
                        .as_f64()
                        .ok_or_else(|| SimConfigError::new("scale", "must be a JSON number"))?
                }
                unknown => {
                    return Err(SimConfigError::new(
                        "config",
                        format!("unknown field '{unknown}'"),
                    ))
                }
            }
        }
        config.validate()?;
        Ok(config)
    }
}

/// Reads and parses one environment variable (`None` when unset or
/// unparsable).
fn parse_env<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse::<T>().ok())
}

/// A JSON number as a non-negative integer, rejecting fractions and
/// negatives with a structured error.
fn json_u64(value: &serde_json::Value, field: &'static str) -> Result<u64, SimConfigError> {
    let n = value
        .as_f64()
        .ok_or_else(|| SimConfigError::new(field, "must be a JSON number"))?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(SimConfigError::new(
            field,
            format!("must be a non-negative integer, got {n}"),
        ));
    }
    Ok(n as u64)
}

/// A JSON boolean, with a structured error otherwise.
fn json_bool(value: &serde_json::Value, field: &'static str) -> Result<bool, SimConfigError> {
    value
        .as_bool()
        .ok_or_else(|| SimConfigError::new(field, "must be a JSON boolean"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_match_the_documented_values() {
        let config = SimConfig::default();
        config.validate().unwrap();
        assert_eq!(config.quantum, 8);
        assert_eq!(config.workers, 1);
        assert!(config.batched_kernels);
        assert!(config.inline_tlb);
        assert!(config.static_precheck);
        assert!(config.packed_words);
        assert!(config.sharded_analysis);
        assert_eq!(config.checkpoint_every, None);
        assert_eq!(config.scale, 1.0);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: [(SimConfig, &str); 5] = [
            (SimConfig::default().with_quantum(0), "quantum"),
            (SimConfig::default().with_workers(0), "workers"),
            (
                SimConfig::default().with_checkpoint_every(Some(0)),
                "checkpoint_every",
            ),
            (SimConfig::default().with_scale(0.0), "scale"),
            (SimConfig::default().with_scale(f64::NAN), "scale"),
        ];
        for (config, field) in cases {
            let err = config.validate().unwrap_err();
            assert_eq!(err.field, field, "{err}");
            assert!(err.to_string().contains(field));
        }
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let config = SimConfig::default()
            .with_quantum(3)
            .with_workers(4)
            .with_batched_kernels(false)
            .with_inline_tlb(false)
            .with_static_precheck(false)
            .with_packed_words(false)
            .with_sharded_analysis(false)
            .with_checkpoint_every(Some(512))
            .with_scale(0.25);
        let json = serde_json::to_string(&config).unwrap();
        let parsed = SimConfig::from_json_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(parsed, config);
    }

    #[test]
    fn json_parsing_defaults_absent_fields_and_rejects_unknown_ones() {
        let value = serde_json::from_str(r#"{"workers": 2}"#).unwrap();
        let config = SimConfig::from_json_value(&value).unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.quantum, 8, "absent fields keep their defaults");

        let bad = serde_json::from_str(r#"{"wrokers": 2}"#).unwrap();
        let err = SimConfig::from_json_value(&bad).unwrap_err();
        assert!(err.reason.contains("wrokers"), "{err}");

        let bad = serde_json::from_str(r#"{"quantum": true}"#).unwrap();
        assert_eq!(
            SimConfig::from_json_value(&bad).unwrap_err().field,
            "quantum"
        );

        let bad = serde_json::from_str(r#"{"quantum": 0}"#).unwrap();
        assert_eq!(
            SimConfig::from_json_value(&bad).unwrap_err().field,
            "quantum",
            "parsed configs are validated"
        );

        let bad = serde_json::from_str(r#"{"workers": 1.5}"#).unwrap();
        assert!(SimConfig::from_json_value(&bad).is_err());

        let bad = serde_json::from_str("[1,2]").unwrap();
        assert_eq!(
            SimConfig::from_json_value(&bad).unwrap_err().field,
            "config"
        );
    }

    #[test]
    fn checkpoint_every_accepts_null_and_rejects_zero() {
        let value = serde_json::from_str(r#"{"checkpoint_every": null}"#).unwrap();
        assert_eq!(
            SimConfig::from_json_value(&value).unwrap().checkpoint_every,
            None
        );
        let value = serde_json::from_str(r#"{"checkpoint_every": 64}"#).unwrap();
        assert_eq!(
            SimConfig::from_json_value(&value).unwrap().checkpoint_every,
            Some(64)
        );
        let value = serde_json::from_str(r#"{"checkpoint_every": 0}"#).unwrap();
        assert!(SimConfig::from_json_value(&value).is_err());
    }
}

//! Sharded parallel analysis: per-page ownership of FastTrack work across
//! the worker pool, merged deterministically on the commit thread.
//!
//! PR 3's epoch engine parallelised block *production* but retired every
//! access through one commit thread that performed all analysis, so the
//! sequential analysis path was the Amdahl ceiling. This module moves the
//! access-check work onto worker shards while keeping results byte-identical
//! to the sequential detector at every worker count:
//!
//! * **Page ownership.** The first guest thread to touch a page assigns the
//!   page to that thread's shard (threads map to shards round-robin, the
//!   same slot order the epoch engine uses). Accesses to a shard-owned page
//!   are analysed by that shard. When a *different* shard's thread touches
//!   the page, ownership escalates to the commit thread's canonical
//!   detector: the page's variable states and dedup entries migrate at the
//!   next flush and every later access is analysed canonically. Pages that
//!   were live in a restored snapshot are commit-owned from the start.
//! * **Broadcast synchronisation.** Accesses never mutate thread or lock
//!   vector clocks — only synchronisation operations do. Every replica
//!   (each shard and the canonical detector) receives the full
//!   synchronisation stream in global program order, so each replica's
//!   clock plane is identical to the sequential detector's at every point
//!   of the stream, and any replica can judge any access it owns exactly
//!   as the sequential detector would have.
//! * **Deterministic merge.** Each access carries the global sequence
//!   number the sequential detector would have given it. Race reports are
//!   collected as `(seq, report)` candidates on every replica and admitted
//!   centrally in sequence order, reproducing the sequential `max_reports`
//!   cutoff. Costs are converted shard-side with the engine's exact
//!   contention expression and summed; statistics merge componentwise with
//!   sync counters taken from the canonical replica alone. Blocks are
//!   page-disjoint, so variable states merge without conflicts.
//!
//! The plane defers work: accesses queue at delivery and are analysed when
//! the queue fills (or at pause/completion), with shard queues processed on
//! scoped worker threads. Shard panics are caught and surfaced as
//! [`SimError::WorkerPanic`](crate::SimError::WorkerPanic) without merging
//! anything from the failed flush.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use aikido_fasttrack::FastTrack;
use aikido_types::{AccessContext, AccessKind, Addr, LockId, SharedDataAnalysis, ThreadId, Vpn};
use serde::Serialize;

use crate::epoch::panic_message;

/// Queued accesses per flush. Small enough to keep shard caches warm,
/// large enough to amortise the scoped-thread fan-out.
const FLUSH_ACCESSES: usize = 16_384;

/// How the analysed/escalated access split landed across shards for one
/// run — the observable record of shard skew.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ShardOccupancy {
    /// Accesses analysed locally by each worker shard, indexed by shard.
    pub per_shard: Vec<u64>,
    /// Accesses escalated to the commit thread's canonical detector:
    /// contended or ownership-migrating pages, plus pages restored from a
    /// snapshot (commit-owned from the start).
    pub escalated: u64,
}

impl ShardOccupancy {
    /// Total accesses routed through the plane.
    pub fn total(&self) -> u64 {
        self.per_shard.iter().sum::<u64>() + self.escalated
    }

    /// Fraction of accesses analysed locally on a shard, in `[0, 1]`.
    /// Zero when the plane saw no accesses.
    pub fn local_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (total - self.escalated) as f64 / total as f64
        }
    }
}

/// Which replica analyses accesses to a page.
#[derive(Copy, Clone, PartialEq, Eq)]
enum PageOwner {
    /// A worker shard owns the page exclusively.
    Shard(usize),
    /// The commit thread's canonical detector owns the page (contended,
    /// migrated, or restored from a snapshot).
    Commit,
}

/// One deferred analysis event. Synchronisation events are broadcast to
/// every replica's queue; access runs go only to the owning replica.
#[derive(Copy, Clone)]
enum Event {
    /// A run of same-page, same-kind accesses by one thread.
    /// `start..start + len` indexes the queue's context buffer; `seq` is
    /// the global sequence number of the run's first access.
    Run {
        start: usize,
        len: usize,
        page: Vpn,
        kind: AccessKind,
        shared: bool,
        seq: u64,
    },
    /// `thread` acquired `lock`.
    Acquire { thread: ThreadId, lock: LockId },
    /// `thread` released `lock`.
    Release { thread: ThreadId, lock: LockId },
    /// `parent` spawned `child`.
    Fork { parent: ThreadId, child: ThreadId },
    /// `parent` joined `child`.
    Join { parent: ThreadId, child: ThreadId },
    /// All workload threads crossed barrier `id`.
    Barrier { id: u32 },
    /// Materialise `thread`'s vector clock. Broadcast to the replicas that
    /// did *not* receive the thread's first delivered event, because the
    /// detector reads the thread population (for `threads_known`) before
    /// ensuring the accessing thread's clock.
    EnsureThread(ThreadId),
}

/// A replica's deferred event stream plus the access contexts its runs
/// index into.
#[derive(Default)]
struct EventQueue {
    events: Vec<Event>,
    cxs: Vec<AccessContext>,
}

impl EventQueue {
    fn clear(&mut self) {
        self.events.clear();
        self.cxs.clear();
    }
}

/// One analysis replica: a detector plus its deferred queue and the cost /
/// merge bookkeeping the plane needs. Worker shards and the canonical
/// detector share this shape; `dead_pages` is only ever non-empty on
/// shards.
struct Replica {
    ft: FastTrack,
    queue: EventQueue,
    /// Pages whose states migrated to the canonical detector. The stale
    /// local metadata they leave behind is excluded from the final merge.
    dead_pages: HashSet<u64>,
    /// Analysis cycles accumulated by this replica's accesses, already
    /// contention-converted with the engine's exact expression.
    cycles: u64,
    /// `(global seq, detector cost memo)` of the last access this replica
    /// processed; the merge elects the globally last one.
    last: Option<(u64, u64)>,
    cost_scratch: Vec<u64>,
}

impl Replica {
    fn new(ft: FastTrack) -> Replica {
        let mut ft = ft;
        ft.set_candidate_mode(true);
        Replica {
            ft,
            queue: EventQueue::default(),
            dead_pages: HashSet::new(),
            cycles: 0,
            last: None,
            cost_scratch: Vec::new(),
        }
    }

    /// Drains this replica's queue through its detector, accumulating
    /// converted cycles and the last-access memo.
    fn process(&mut self, threads: &[ThreadId], contention: f64) {
        for event in &self.queue.events {
            match *event {
                Event::Run {
                    start,
                    len,
                    page,
                    kind,
                    shared,
                    seq,
                } => {
                    self.ft.set_access_seq(seq);
                    if len == 1 {
                        self.ft.on_access(self.queue.cxs[start]);
                        let base = self.ft.last_access_cost_cycles();
                        self.cycles += convert_cost(base, shared, contention);
                    } else {
                        self.ft.on_access_run(
                            page,
                            kind,
                            &self.queue.cxs[start..start + len],
                            &mut self.cost_scratch,
                        );
                        for &base in &self.cost_scratch {
                            self.cycles += convert_cost(base, shared, contention);
                        }
                    }
                    let last_seq = seq + len as u64 - 1;
                    self.last = Some((last_seq, self.ft.last_access_cost_cycles()));
                }
                Event::Acquire { thread, lock } => self.ft.on_acquire(thread, lock),
                Event::Release { thread, lock } => self.ft.on_release(thread, lock),
                Event::Fork { parent, child } => self.ft.on_fork(parent, child),
                Event::Join { parent, child } => self.ft.on_join(parent, child),
                Event::Barrier { id } => self.ft.on_barrier(threads, id),
                Event::EnsureThread(thread) => self.ft.ensure_thread(thread),
            }
        }
        self.queue.clear();
    }
}

/// The engine's shared-access contention conversion, verbatim: replicas
/// convert detector base costs exactly where the sequential engine would.
#[inline]
fn convert_cost(base: u64, shared: bool, contention: f64) -> u64 {
    if shared {
        (base as f64 * contention).round() as u64
    } else {
        base
    }
}

/// The page a detector block lives on, given the detector granularity.
#[inline]
fn page_of_block(block: u64, granularity: u64) -> u64 {
    Addr::new(block * granularity).page().raw()
}

/// The sharded analysis plane: the canonical detector plus one replica per
/// epoch-engine worker, with page-ownership routing and a deterministic
/// merge. Owned by [`Run`](crate::engine) while sharded analysis is active;
/// the run's built-in analysis slot becomes a never-delivered placeholder.
pub(crate) struct ShardPlane {
    canonical: Replica,
    shards: Vec<Replica>,
    /// Which replica owns each page (by raw VPN).
    owners: HashMap<u64, PageOwner>,
    /// Pages whose ownership escalated since the last flush, with the shard
    /// they must migrate out of.
    pending_migrations: Vec<(u64, usize)>,
    /// Threads whose clocks every replica already materialised (or will,
    /// via queued events).
    clocked: HashSet<ThreadId>,
    /// Workload threads in scheduler slot order; slot *i* maps to shard
    /// `i % shards`, mirroring the epoch engine's producer partition.
    threads: Vec<ThreadId>,
    thread_slot: HashMap<ThreadId, usize>,
    /// The run's shared-access contention factor.
    contention: f64,
    /// Next global access sequence number.
    seq: u64,
    /// Accesses queued since the last flush.
    pending_accesses: usize,
    occupancy: ShardOccupancy,
    finalized: bool,
    /// First shard-panic message; sticky so every later flush re-fails.
    failed: Option<String>,
    /// Test seam: panic inside this shard's next non-empty flush.
    #[cfg(test)]
    inject_panic_shard: Option<usize>,
}

impl std::fmt::Debug for ShardPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlane")
            .field("shards", &self.shards.len())
            .field("pages", &self.owners.len())
            .field("pending_accesses", &self.pending_accesses)
            .field("occupancy", &self.occupancy)
            .finish_non_exhaustive()
    }
}

impl ShardPlane {
    /// Builds a plane around `canonical` with one shard replica per
    /// worker. Handles fresh and restored canonical detectors uniformly:
    /// pages already tracked (or already reported) by `canonical` are
    /// commit-owned, threads it already knows are pre-clocked, and each
    /// shard forks the canonical clock plane so replicas created
    /// mid-history judge accesses with the right clocks.
    pub(crate) fn new(
        canonical: FastTrack,
        workers: usize,
        threads: Vec<ThreadId>,
        contention: f64,
    ) -> ShardPlane {
        let workers = workers.max(1);
        let shards: Vec<Replica> = (0..workers)
            .map(|_| Replica::new(canonical.fork_clock_plane()))
            .collect();
        let granularity = canonical.config().granularity;
        let mut owners = HashMap::new();
        for (block, _) in canonical.var_states() {
            owners.insert(page_of_block(block, granularity), PageOwner::Commit);
        }
        for block in canonical.reported_block_list() {
            owners.insert(page_of_block(block, granularity), PageOwner::Commit);
        }
        let clocked = threads
            .iter()
            .copied()
            .filter(|&t| canonical.knows_thread(t))
            .collect();
        let thread_slot = threads.iter().copied().zip(0..).collect();
        ShardPlane {
            canonical: Replica::new(canonical),
            shards,
            owners,
            pending_migrations: Vec::new(),
            clocked,
            threads,
            thread_slot,
            contention,
            seq: 0,
            pending_accesses: 0,
            occupancy: ShardOccupancy {
                per_shard: vec![0; workers],
                escalated: 0,
            },
            finalized: false,
            failed: None,
            #[cfg(test)]
            inject_panic_shard: None,
        }
    }

    /// Arms the injected-panic test seam for `shard`.
    #[cfg(test)]
    pub(crate) fn inject_panic_in_shard(&mut self, shard: usize) {
        self.inject_panic_shard = Some(shard);
    }

    /// The canonical detector (merged view after [`ShardPlane::finalize`]).
    pub(crate) fn canonical(&self) -> &FastTrack {
        &self.canonical.ft
    }

    /// Consumes the plane, yielding the canonical detector.
    pub(crate) fn into_canonical(self) -> FastTrack {
        self.canonical.ft
    }

    /// The run's shard-occupancy record so far.
    pub(crate) fn occupancy(&self) -> ShardOccupancy {
        self.occupancy.clone()
    }

    /// True once enough accesses queued that the engine should flush at
    /// the next round boundary.
    pub(crate) fn should_flush(&self) -> bool {
        self.pending_accesses >= FLUSH_ACCESSES
    }

    /// Routes an access to `page` by `thread`, updating ownership: first
    /// touch claims the page for the thread's shard, a cross-shard touch
    /// escalates it to the commit thread and schedules the migration.
    fn route(&mut self, page: u64, thread: ThreadId) -> PageOwner {
        let shard = self.thread_slot.get(&thread).copied().unwrap_or(0) % self.shards.len();
        match self.owners.get(&page).copied() {
            None => {
                self.owners.insert(page, PageOwner::Shard(shard));
                PageOwner::Shard(shard)
            }
            Some(PageOwner::Shard(owner)) if owner == shard => PageOwner::Shard(owner),
            Some(PageOwner::Shard(owner)) => {
                self.owners.insert(page, PageOwner::Commit);
                self.pending_migrations.push((page, owner));
                PageOwner::Commit
            }
            Some(PageOwner::Commit) => PageOwner::Commit,
        }
    }

    fn queue_mut(&mut self, dest: PageOwner) -> &mut EventQueue {
        match dest {
            PageOwner::Shard(i) => &mut self.shards[i].queue,
            PageOwner::Commit => &mut self.canonical.queue,
        }
    }

    /// Ensures every replica will materialise `thread`'s clock before its
    /// next event, *except* the replica receiving the thread's first
    /// delivered access: `read_at`/`write_at` count the thread population
    /// before ensuring the accessor, so the destination must see the bare
    /// access exactly like the sequential detector did.
    fn note_thread(&mut self, thread: ThreadId, dest: PageOwner) {
        if !self.clocked.insert(thread) {
            return;
        }
        for (index, shard) in self.shards.iter_mut().enumerate() {
            if dest != PageOwner::Shard(index) {
                shard.queue.events.push(Event::EnsureThread(thread));
            }
        }
        if dest != PageOwner::Commit {
            self.canonical
                .queue
                .events
                .push(Event::EnsureThread(thread));
        }
    }

    fn note_occupancy(&mut self, dest: PageOwner, len: u64) {
        match dest {
            PageOwner::Shard(index) => self.occupancy.per_shard[index] += len,
            PageOwner::Commit => self.occupancy.escalated += len,
        }
    }

    /// Queues a run of same-page, same-kind accesses by one thread.
    pub(crate) fn enqueue_run(
        &mut self,
        thread: ThreadId,
        page: Vpn,
        kind: AccessKind,
        cxs: &[AccessContext],
        shared: bool,
    ) {
        debug_assert!(!cxs.is_empty(), "runs are non-empty");
        let dest = self.route(page.raw(), thread);
        self.note_thread(thread, dest);
        let seq = self.seq;
        self.seq += cxs.len() as u64;
        self.pending_accesses += cxs.len();
        self.note_occupancy(dest, cxs.len() as u64);
        let len = cxs.len();
        let queue = self.queue_mut(dest);
        let start = queue.cxs.len();
        queue.cxs.extend_from_slice(cxs);
        queue.events.push(Event::Run {
            start,
            len,
            page,
            kind,
            shared,
            seq,
        });
    }

    /// Queues a single access.
    pub(crate) fn enqueue_access(&mut self, cx: AccessContext, shared: bool) {
        let page = cx.addr.page();
        let kind = cx.kind;
        self.enqueue_run(cx.thread, page, kind, &[cx], shared);
    }

    /// Broadcasts a synchronisation event to every replica's queue.
    fn broadcast(&mut self, event: Event) {
        for shard in &mut self.shards {
            shard.queue.events.push(event);
        }
        self.canonical.queue.events.push(event);
    }

    /// Queues a lock acquire.
    pub(crate) fn enqueue_acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.clocked.insert(thread);
        self.broadcast(Event::Acquire { thread, lock });
    }

    /// Queues a lock release.
    pub(crate) fn enqueue_release(&mut self, thread: ThreadId, lock: LockId) {
        self.clocked.insert(thread);
        self.broadcast(Event::Release { thread, lock });
    }

    /// Queues a thread fork.
    pub(crate) fn enqueue_fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.clocked.insert(parent);
        self.clocked.insert(child);
        self.broadcast(Event::Fork { parent, child });
    }

    /// Queues a thread join.
    pub(crate) fn enqueue_join(&mut self, parent: ThreadId, child: ThreadId) {
        self.clocked.insert(parent);
        self.clocked.insert(child);
        self.broadcast(Event::Join { parent, child });
    }

    /// Queues a barrier episode. The detector snapshots every workload
    /// thread's clock, so all of them count as contacted.
    pub(crate) fn enqueue_barrier(&mut self, id: u32) {
        for index in 0..self.threads.len() {
            let thread = self.threads[index];
            self.clocked.insert(thread);
        }
        self.broadcast(Event::Barrier { id });
    }

    /// Drains every queue: shard queues on scoped worker threads (panics
    /// caught and surfaced, nothing merged on failure), then page
    /// migrations, then the canonical queue inline, then globally
    /// seq-ordered candidate admission.
    pub(crate) fn flush(&mut self) -> Result<(), String> {
        if let Some(message) = &self.failed {
            return Err(message.clone());
        }
        self.pending_accesses = 0;
        let threads = &self.threads;
        let contention = self.contention;
        let shards = &mut self.shards;
        #[cfg(test)]
        let inject = self.inject_panic_shard;
        let mut failure: Option<String> = None;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (index, shard) in shards.iter_mut().enumerate() {
                if shard.queue.events.is_empty() {
                    continue;
                }
                #[cfg(test)]
                let inject_here = inject == Some(index);
                #[cfg(not(test))]
                let inject_here = {
                    let _ = index;
                    false
                };
                handles.push(scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        if inject_here {
                            panic!("injected analysis shard panic");
                        }
                        shard.process(threads, contention);
                    }))
                    .map_err(panic_message)
                }));
            }
            for handle in handles {
                let outcome = handle
                    .join()
                    .expect("shard panics are caught inside the worker");
                if let Err(message) = outcome {
                    failure.get_or_insert(message);
                }
            }
        });
        if let Some(message) = failure {
            self.failed = Some(message.clone());
            return Err(message);
        }

        let migrations = std::mem::take(&mut self.pending_migrations);
        if !migrations.is_empty() {
            let granularity = self.canonical.ft.config().granularity;
            let mut by_shard: HashMap<usize, HashSet<u64>> = HashMap::new();
            for (page, shard) in migrations {
                by_shard.entry(shard).or_default().insert(page);
            }
            for (shard_index, pages) in by_shard {
                let shard = &mut self.shards[shard_index];
                for (block, state) in shard.ft.var_states() {
                    if pages.contains(&page_of_block(block, granularity)) {
                        self.canonical.ft.insert_var_state(block, state);
                    }
                }
                let migrated: Vec<u64> = shard
                    .ft
                    .reported_block_list()
                    .into_iter()
                    .filter(|&block| pages.contains(&page_of_block(block, granularity)))
                    .collect();
                self.canonical.ft.extend_reported_blocks(migrated);
                shard.dead_pages.extend(pages);
            }
        }

        self.canonical.process(&self.threads, self.contention);

        let mut candidates = self.canonical.ft.take_candidates();
        for shard in &mut self.shards {
            candidates.extend(shard.ft.take_candidates());
        }
        candidates.sort_unstable_by_key(|&(seq, _)| seq);
        for (_, report) in candidates {
            self.canonical.ft.admit_candidate(report);
        }
        Ok(())
    }

    /// Flushes, then merges every shard into the canonical detector:
    /// variable states (minus migrated pages), dedup entries, per-access
    /// statistics, the globally last access-cost memo, and the plane's
    /// total analysis cycles (returned for the engine to charge).
    /// Idempotent: a second call flushes whatever queued since and
    /// contributes only those new cycles.
    pub(crate) fn finalize(&mut self) -> Result<u64, String> {
        self.flush()?;
        if self.finalized {
            return Ok(0);
        }
        self.finalized = true;
        let granularity = self.canonical.ft.config().granularity;
        let mut last = self.canonical.last;
        for shard_index in 0..self.shards.len() {
            let shard = &mut self.shards[shard_index];
            for (block, state) in shard.ft.var_states() {
                if !shard
                    .dead_pages
                    .contains(&page_of_block(block, granularity))
                {
                    self.canonical.ft.insert_var_state(block, state);
                }
            }
            let reported = shard.ft.reported_block_list();
            self.canonical.ft.extend_reported_blocks(reported);
            self.canonical.ft.merge_access_stats(shard.ft.stats());
            if let Some((seq, cost)) = shard.last {
                if last.map(|(s, _)| seq > s).unwrap_or(true) {
                    last = Some((seq, cost));
                }
            }
        }
        if let Some((_, cost)) = last {
            self.canonical.ft.set_last_cost(cost);
        }
        let cycles =
            self.canonical.cycles + self.shards.iter().map(|shard| shard.cycles).sum::<u64>();
        Ok(cycles)
    }
}

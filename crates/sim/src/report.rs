//! Run reports: everything a single simulated execution measured.

use serde::{Deserialize, Serialize};

use aikido_dbi::CodeCacheStats;
use aikido_fasttrack::FastTrackStats;
use aikido_sharing::SharingStats;
use aikido_types::AnalysisReport;
use aikido_vm::VmStats;

/// Dynamic counts gathered during a run — the quantities behind the paper's
/// Table 2 and Figure 6.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunCounts {
    /// Dynamic instructions executed (memory + compute + sync).
    pub dynamic_instrs: u64,
    /// Dynamic memory-referencing instructions executed (Table 2, column 1).
    pub mem_accesses: u64,
    /// Dynamic executions of instructions that carry instrumentation
    /// (Table 2, column 2). Under full instrumentation this equals
    /// `mem_accesses`.
    pub instrumented_accesses: u64,
    /// Accesses that actually targeted a shared page (Table 2, column 3;
    /// Figure 6 is this divided by `mem_accesses`).
    pub shared_accesses: u64,
    /// Aikido page faults delivered and handled (Table 2, column 4).
    pub segfaults: u64,
    /// Synchronisation operations executed.
    pub sync_ops: u64,
    /// Basic-block executions dispatched through the code cache.
    pub block_execs: u64,
}

impl RunCounts {
    /// Fraction of memory accesses that targeted shared pages (Figure 6).
    pub fn shared_access_fraction(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.shared_accesses as f64 / self.mem_accesses as f64
        }
    }

    /// Fraction of memory accesses executed by instrumented instructions.
    pub fn instrumented_fraction(&self) -> f64 {
        if self.mem_accesses == 0 {
            0.0
        } else {
            self.instrumented_accesses as f64 / self.mem_accesses as f64
        }
    }
}

/// The result of simulating one workload in one mode.
///
/// Reports compare with `==` field-for-field; the parallel-equivalence suite
/// leans on this (plus the serialized JSON) to prove the epoch-parallel
/// engine byte-identical to the sequential reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Execution mode, as a string (`"native"`, `"full"`, `"aikido"`).
    pub mode: String,
    /// Number of threads simulated.
    pub threads: u32,
    /// Total cycles charged across all threads.
    pub cycles: u64,
    /// Dynamic counts.
    pub counts: RunCounts,
    /// Hypervisor statistics (zeroed for modes that do not use the VM).
    pub vm: VmStats,
    /// Code-cache statistics (zeroed for native mode).
    pub code_cache: CodeCacheStats,
    /// Sharing-detector statistics (zeroed unless running under Aikido).
    pub sharing: SharingStats,
    /// Analysis (FastTrack) statistics, if a FastTrack analysis ran.
    pub fasttrack: Option<FastTrackStats>,
    /// Reports produced by the analysis (data races found).
    pub races: Vec<AnalysisReport>,
}

impl RunReport {
    /// Slowdown of this run relative to `baseline` (typically the native
    /// run): ratio of cycle counts.
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.cycles == 0 {
            0.0
        } else {
            self.cycles as f64 / baseline.cycles as f64
        }
    }

    /// Number of distinct races reported.
    pub fn race_count(&self) -> usize {
        self.races.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> RunReport {
        RunReport {
            workload: "w".into(),
            mode: "native".into(),
            threads: 2,
            cycles,
            counts: RunCounts::default(),
            vm: VmStats::default(),
            code_cache: CodeCacheStats::default(),
            sharing: SharingStats::default(),
            fasttrack: None,
            races: Vec::new(),
        }
    }

    #[test]
    fn slowdown_is_a_cycle_ratio() {
        let base = report(100);
        let slow = report(450);
        assert!((slow.slowdown_vs(&base) - 4.5).abs() < 1e-12);
        assert_eq!(slow.slowdown_vs(&report(0)), 0.0);
    }

    #[test]
    fn fractions_handle_zero_accesses() {
        let c = RunCounts::default();
        assert_eq!(c.shared_access_fraction(), 0.0);
        assert_eq!(c.instrumented_fraction(), 0.0);
    }

    #[test]
    fn fractions_divide_by_total_accesses() {
        let c = RunCounts {
            mem_accesses: 200,
            instrumented_accesses: 50,
            shared_accesses: 40,
            ..RunCounts::default()
        };
        assert!((c.shared_access_fraction() - 0.2).abs() < 1e-12);
        assert!((c.instrumented_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report(10);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"cycles\":10"));
    }
}

//! The simulator: scheduler, per-mode pipelines and cycle accounting.

use aikido_dbi::DbiEngine;
use aikido_fasttrack::FastTrack;
use aikido_shadow::{CacheLevel, DualShadow, RegionId, RegionKind, TranslationCache};
use aikido_sharing::AikidoSd;
use aikido_snapshot::{SectionReader, SectionWriter, Snapshot, SnapshotBuilder, SnapshotError};
use aikido_types::{
    AccessContext, AccessKind, Addr, LockId, MemRef, Operation, Prot, SharedDataAnalysis, SyncOp,
    ThreadId, Vpn,
};
use aikido_vm::{AikidoVm, TouchOutcome, VmConfig};
use aikido_workloads::{BlockExec, Workload, WorkloadSpec};

use crate::config::{SimConfig, SimConfigError};
use crate::cost::CostModel;
use crate::epoch::TraceSource;
use crate::report::{RunCounts, RunReport};
use crate::shard_plane::{ShardOccupancy, ShardPlane};

/// A recoverable simulation failure surfaced by the `try_` entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A pool worker panicked — an epoch-engine block producer or an
    /// analysis-shard worker. The commit thread drained the surviving
    /// lanes and shut the pool down cleanly; nothing from the failed
    /// epoch or flush is merged and the partial run is discarded.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A snapshot failed validation during [`Simulator::resume`] (corrupt
    /// image, or state that does not match the workload being resumed).
    Snapshot(SnapshotError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WorkerPanic { message } => {
                write!(f, "pool worker panicked: {message}")
            }
            SimError::Snapshot(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<SnapshotError> for SimError {
    fn from(err: SnapshotError) -> Self {
        SimError::Snapshot(err)
    }
}

/// What [`Simulator::checkpoint`] (and [`Simulator::resume_until`]) produced:
/// either the run reached its end before the block target, or it paused at an
/// epoch boundary with its full state serialized.
#[derive(Debug)]
pub enum CheckpointOutcome {
    /// The workload ran to completion; no snapshot was taken. (Boxed: a
    /// report is an order of magnitude larger than a snapshot handle.)
    Completed(Box<RunReport>),
    /// The run paused once `counts.block_execs` reached the target; resuming
    /// the snapshot continues it byte-identically.
    Paused(Snapshot),
}

/// How a workload is executed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Uninstrumented native execution (the slowdown baseline).
    Native,
    /// Conventional shared data analysis: every memory access instrumented
    /// (the paper's plain "FastTrack" configuration).
    FullInstrumentation,
    /// The Aikido pipeline: per-thread page protection, sharing detection,
    /// and instrumentation of shared-page instructions only.
    Aikido,
}

impl Mode {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Mode::Native => "native",
            Mode::FullInstrumentation => "full",
            Mode::Aikido => "aikido",
        }
    }

    /// Parses a mode from its [`Mode::label`] string — the inverse used by
    /// request-shaped APIs (the service control plane's `RunRequest` carries
    /// the label on the wire).
    pub fn from_label(label: &str) -> Option<Mode> {
        match label {
            "native" => Some(Mode::Native),
            "full" => Some(Mode::FullInstrumentation),
            "aikido" => Some(Mode::Aikido),
            _ => None,
        }
    }
}

impl serde::Serialize for Mode {
    fn json_write(&self, out: &mut String) {
        serde::write_json_string(self.label(), out);
    }
}

/// The three runs the paper compares for every benchmark.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Native (uninstrumented) run.
    pub native: RunReport,
    /// Fully instrumented analysis run.
    pub full: RunReport,
    /// Aikido-accelerated analysis run.
    pub aikido: RunReport,
}

impl Comparison {
    /// Slowdown of the fully instrumented run versus native (a Figure 5 bar).
    pub fn full_slowdown(&self) -> f64 {
        self.full.slowdown_vs(&self.native)
    }

    /// Slowdown of the Aikido run versus native (a Figure 5 bar).
    pub fn aikido_slowdown(&self) -> f64 {
        self.aikido.slowdown_vs(&self.native)
    }

    /// Speedup of Aikido over full instrumentation (>1 means Aikido wins).
    pub fn aikido_speedup(&self) -> f64 {
        if self.aikido.cycles == 0 {
            0.0
        } else {
            self.full.cycles as f64 / self.aikido.cycles as f64
        }
    }
}

/// Drives workloads through the Aikido stack (or its baselines) and produces
/// [`RunReport`]s.
#[derive(Debug, Clone)]
pub struct Simulator {
    cost: CostModel,
    config: SimConfig,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl Simulator {
    /// Entries in each thread's inline-check table (the simulator's model of
    /// the code Aikido emits in front of every access). Direct mapped: pages
    /// this many apart collide in the same slot.
    pub const INLINE_TLB_ENTRIES: usize = SIM_TLB_ENTRIES;

    /// Creates a simulator with the given cost model and the default
    /// [`SimConfig`] (scheduling quantum 8, sequential, all fast paths on).
    pub fn new(cost: CostModel) -> Self {
        Simulator {
            cost,
            config: SimConfig::default(),
        }
    }

    /// Creates a simulator from a validated [`SimConfig`] with the default
    /// cost model. This is the request-shaped entry point: a serialized
    /// config (for example the `config` member of a service `RunRequest`)
    /// fully determines the simulator, and an invalid one is a structured
    /// [`SimConfigError`] instead of a clamp or a panic.
    pub fn from_config(config: SimConfig) -> Result<Self, SimConfigError> {
        Self::from_config_with_cost(config, CostModel::default())
    }

    /// [`Simulator::from_config`] with an explicit cost model.
    pub fn from_config_with_cost(
        config: SimConfig,
        cost: CostModel,
    ) -> Result<Self, SimConfigError> {
        config.validate()?;
        Ok(Simulator { cost, config })
    }

    /// The full configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Sets how many basic-block executions a thread runs before the
    /// round-robin scheduler switches to the next thread.
    pub fn with_quantum(mut self, quantum: u32) -> Self {
        self.config.quantum = quantum.max(1);
        self
    }

    /// Sets how many OS worker threads the epoch engine uses for block
    /// production. `1` (the default) is the fully sequential reference path;
    /// any higher count runs trace generation on a worker pool while the
    /// commit thread retires blocks in logical-clock order, so reports are
    /// byte-identical at every worker count (see the `epoch` module docs —
    /// the `parallel_equivalence` integration suite pins this).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// The configured worker count (1 = sequential).
    pub fn workers(&self) -> usize {
        self.config.workers
    }

    /// Selects between the batched per-mode block kernels (the default) and
    /// the scalar per-access reference loop. The two are byte-identical by
    /// construction — the scalar path exists as the equivalence oracle the
    /// tests and the `block_kernels` benchmark compare against, not as a
    /// user-facing feature.
    pub fn with_batched_kernels(mut self, batched: bool) -> Self {
        self.config.batched_kernels = batched;
        self
    }

    /// Enables or disables the simulator's per-thread inline-check tables
    /// (the Figure-4 analogue that proves accesses free without consulting
    /// the VM). Disabling them routes every access through `vm.touch`;
    /// because a free touch mutates no observable state, reports are
    /// byte-identical either way — which is exactly what the TLB-aliasing
    /// property tests pin down.
    pub fn with_inline_tlb(mut self, enabled: bool) -> Self {
        self.config.inline_tlb = enabled;
        self
    }

    /// Enables or disables the static pre-analysis (the default is enabled).
    /// When enabled, Aikido-mode runs derive a
    /// [`StaticReport`](aikido_staticcheck::StaticReport) from the workload's
    /// scenario model and install its plan into the DBI engine before the
    /// first block executes: proven-private blocks extend the whole-block
    /// free fast path even when they are too wide for an exact mask. The
    /// plan never changes which analysis callbacks are delivered, so reports
    /// are byte-identical with the pre-check on or off (pinned by
    /// `static_precheck_*` tests and the golden suite).
    pub fn with_static_precheck(mut self, enabled: bool) -> Self {
        self.config.static_precheck = enabled;
        self
    }

    /// Selects the packed shadow-word plane (the default) or the reference
    /// enum store for the built-in FastTrack analysis — the simulator-level
    /// spelling of [`FastTrack::with_packed_words`]. Reports are
    /// byte-identical either way (the `packed_equivalence` suite pins it).
    pub fn with_packed_words(mut self, packed: bool) -> Self {
        self.config.packed_words = packed;
        self
    }

    /// Sets the periodic checkpoint policy [`Simulator::run_checkpointed`]
    /// follows (`None`, the default, disables it; `Some(0)` is clamped to
    /// `Some(1)` to mirror the other builders' lenient clamping — use
    /// [`SimConfig::validate`] for strict rejection).
    pub fn with_checkpoint_every(mut self, every: Option<u64>) -> Self {
        self.config.checkpoint_every = every.map(|n| n.max(1));
        self
    }

    /// Enables or disables sharded parallel analysis (the default is
    /// enabled) — the simulator-level spelling of
    /// [`SimConfig::with_sharded_analysis`]. With it off, parallel runs
    /// retire every analysis callback on the commit thread, which is the
    /// equivalence oracle the sharded plane is pinned against: reports are
    /// byte-identical either way at every worker count.
    pub fn with_sharded_analysis(mut self, enabled: bool) -> Self {
        self.config.sharded_analysis = enabled;
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The FastTrack instance the built-in-analysis entry points construct,
    /// honouring the configured shadow-word representation.
    fn new_fasttrack(&self) -> FastTrack {
        FastTrack::new().with_packed_words(self.config.packed_words)
    }

    /// Runs `workload` in `mode` with a FastTrack race detector as the
    /// analysis (the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (see [`Simulator::try_run`] for the
    /// recoverable form).
    pub fn run(&self, workload: &Workload, mode: Mode) -> RunReport {
        self.try_run(workload, mode).expect("simulation failed")
    }

    /// Runs `workload` in `mode` with a FastTrack analysis, surfacing
    /// failures (such as a panicking epoch producer) as a structured
    /// [`SimError`] instead of panicking or hanging.
    pub fn try_run(&self, workload: &Workload, mode: Mode) -> Result<RunReport, SimError> {
        self.try_run_with_occupancy(workload, mode)
            .map(|(report, _)| report)
    }

    /// [`Simulator::try_run`], additionally returning the sharded-analysis
    /// occupancy record — how many accesses each worker shard analysed
    /// locally and how many escalated to the commit thread. `None` when the
    /// run analysed on the commit thread only (sharding disabled, a single
    /// worker or thread, or native mode).
    pub fn try_run_with_occupancy(
        &self,
        workload: &Workload,
        mode: Mode,
    ) -> Result<(RunReport, Option<ShardOccupancy>), SimError> {
        let mut analysis = self.new_fasttrack();
        let mut run = Run::new(self, workload, mode, &mut analysis);
        if self.sharded_analysis_active(workload, mode) {
            run.shard_plane = Some(self.new_shard_plane(workload));
        }
        let mut states = run.initial_states();
        self.drive(workload, workload, &mut run, &mut states, None, false)?;
        let occupancy = run.shard_plane.as_ref().map(ShardPlane::occupancy);
        let mut report = run.into_report();
        if report.fasttrack.is_none() {
            report.fasttrack = Some(*analysis.stats());
        }
        Ok((report, occupancy))
    }

    /// True when this run analyses on the sharded worker-pool plane: the
    /// [`SimConfig::sharded_analysis`] toggle is on, the run is parallel
    /// (multiple workers and guest threads — the same condition that turns
    /// on the epoch engine) and the mode delivers analysis callbacks at all.
    fn sharded_analysis_active(&self, workload: &Workload, mode: Mode) -> bool {
        self.config.sharded_analysis
            && mode != Mode::Native
            && self.config.workers > 1
            && workload.threads().len() > 1
    }

    /// Builds the sharded-analysis plane around a fresh canonical detector.
    fn new_shard_plane(&self, workload: &Workload) -> ShardPlane {
        let threads = workload.threads();
        let contention = self.cost.contention_factor(threads.len() as u32);
        ShardPlane::new(
            self.new_fasttrack(),
            self.config.workers,
            threads,
            contention,
        )
    }

    /// Runs `workload` in `mode` with a caller-provided analysis tool.
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails (see
    /// [`Simulator::try_run_with_analysis`] for the recoverable form).
    pub fn run_with_analysis<A: SharedDataAnalysis>(
        &self,
        workload: &Workload,
        mode: Mode,
        analysis: &mut A,
    ) -> RunReport {
        self.try_run_with_analysis(workload, mode, analysis)
            .expect("simulation failed")
    }

    /// Runs `workload` in `mode` with a caller-provided analysis tool,
    /// surfacing failures as a structured [`SimError`].
    pub fn try_run_with_analysis<A: SharedDataAnalysis>(
        &self,
        workload: &Workload,
        mode: Mode,
        analysis: &mut A,
    ) -> Result<RunReport, SimError> {
        let mut run = Run::new(self, workload, mode, analysis);
        let mut states = run.initial_states();
        self.drive(workload, workload, &mut run, &mut states, None, false)?;
        Ok(run.into_report())
    }

    /// Runs `workload` in `mode` under the configured periodic checkpoint
    /// policy (`SimConfig::checkpoint_every`, settable from the
    /// `AIKIDO_CHECKPOINT_EVERY` variable via
    /// [`SimConfig::from_env_overrides`]): every `N` block executions the run
    /// pauses at an epoch boundary, serializes its full state, re-validates
    /// the image from its own bytes (every section checksum is re-verified)
    /// and resumes from the *restored* state. With the policy unset this is
    /// exactly [`Simulator::try_run`]; with it set, the final report is
    /// still byte-identical to an uninterrupted run — that equivalence is
    /// what the crash-recovery suite pins.
    pub fn run_checkpointed(&self, workload: &Workload, mode: Mode) -> Result<RunReport, SimError> {
        let Some(every) = self.config.checkpoint_every else {
            return self.try_run(workload, mode);
        };
        let mut target = every;
        let mut outcome = self.checkpoint(workload, mode, target)?;
        loop {
            match outcome {
                CheckpointOutcome::Completed(report) => return Ok(*report),
                CheckpointOutcome::Paused(snapshot) => {
                    // Round-trip through raw bytes so every period re-runs
                    // the full integrity validation a crash recovery would.
                    let snapshot =
                        Snapshot::from_bytes(snapshot.into_bytes()).map_err(SimError::Snapshot)?;
                    target += every;
                    outcome = self.resume_until(workload, &snapshot, target)?;
                }
            }
        }
    }

    /// Runs `workload` in `mode` with a FastTrack analysis until the run
    /// retires `after_blocks` block executions (a cumulative count), then
    /// pauses at the next scheduling-round boundary and serializes the full
    /// simulation state — scheduler, analysis clocks, hypervisor, sharing
    /// detector, DBI engine and translation cache. Returns
    /// [`CheckpointOutcome::Completed`] when the workload finishes first.
    pub fn checkpoint(
        &self,
        workload: &Workload,
        mode: Mode,
        after_blocks: u64,
    ) -> Result<CheckpointOutcome, SimError> {
        let mut analysis = self.new_fasttrack();
        let mut run = Run::new(self, workload, mode, &mut analysis);
        if self.sharded_analysis_active(workload, mode) {
            run.shard_plane = Some(self.new_shard_plane(workload));
        }
        let mut states = run.initial_states();
        let status = self.drive(
            workload,
            workload,
            &mut run,
            &mut states,
            Some(after_blocks),
            false,
        )?;
        Ok(match status {
            ExecStatus::Paused => CheckpointOutcome::Paused(run.encode_snapshot(&states)),
            ExecStatus::Completed => {
                let mut report = run.into_report();
                if report.fasttrack.is_none() {
                    report.fasttrack = Some(*analysis.stats());
                }
                CheckpointOutcome::Completed(Box::new(report))
            }
        })
    }

    /// Resumes a run from `snapshot` and drives it to completion. The final
    /// report is byte-identical to the uninterrupted run's, at any worker
    /// count. The snapshot must have been taken for the same workload,
    /// scheduling quantum and cost model — a mismatch (or any corruption the
    /// container checksums missed) returns a structured
    /// [`SnapshotError`] naming the failing section and offset.
    pub fn resume(&self, workload: &Workload, snapshot: &Snapshot) -> Result<RunReport, SimError> {
        match self.resume_inner(workload, snapshot, None)? {
            CheckpointOutcome::Completed(report) => Ok(*report),
            CheckpointOutcome::Paused(_) => unreachable!("no block target was set"),
        }
    }

    /// Resumes a run from `snapshot` until it retires `after_blocks` *total*
    /// block executions (the same cumulative clock
    /// [`Simulator::checkpoint`] uses), pausing again at the next round
    /// boundary. Chained checkpoints compose: pause, serialize, restore,
    /// pause again — the final report never moves.
    pub fn resume_until(
        &self,
        workload: &Workload,
        snapshot: &Snapshot,
        after_blocks: u64,
    ) -> Result<CheckpointOutcome, SimError> {
        self.resume_inner(workload, snapshot, Some(after_blocks))
    }

    fn resume_inner(
        &self,
        workload: &Workload,
        snapshot: &Snapshot,
        stop_after: Option<u64>,
    ) -> Result<CheckpointOutcome, SimError> {
        let mut reader = snapshot.reader()?;
        let mut meta = reader.section(*b"META", META_VERSION)?;
        let recorded = meta.get_str()?;
        let mode = [Mode::Native, Mode::FullInstrumentation, Mode::Aikido]
            .into_iter()
            .find(|&mode| snapshot_meta_json(self, workload, mode) == recorded)
            .ok_or_else(|| {
                SnapshotError::new(
                    "META",
                    0,
                    "snapshot metadata does not match this run: workload spec, \
                     scheduling quantum or cost model differ",
                )
            })?;
        meta.finish()?;

        let mut schd = reader.section(*b"SCHD", SCHD_VERSION)?;
        let sched = SchedState::decode(&mut schd, workload.threads().len())?;
        schd.finish()?;

        let mut ftrk = reader.section(*b"FTRK", FTRK_VERSION)?;
        let mut analysis = FastTrack::decode_snapshot(&mut ftrk)?;
        ftrk.finish()?;

        // Under sharded analysis the restored detector becomes the plane's
        // canonical detector (its tracked pages start commit-owned and the
        // shard replicas fork its clock plane); the run's analysis slot
        // holds a fresh never-delivered placeholder. The toggle is not part
        // of the snapshot identity: images resume cleanly across sharding
        // configurations, exactly like worker counts.
        let shard_plane = if self.sharded_analysis_active(workload, mode) {
            let canonical = std::mem::replace(&mut analysis, self.new_fasttrack());
            let threads = workload.threads();
            let contention = self.cost.contention_factor(threads.len() as u32);
            Some(ShardPlane::new(
                canonical,
                self.config.workers,
                threads,
                contention,
            ))
        } else {
            None
        };

        let mut tcch = reader.section(*b"TCCH", TCCH_VERSION)?;
        let cache = TranslationCache::decode_snapshot(&mut tcch)?;
        tcch.finish()?;

        let engine = if mode == Mode::Native {
            None
        } else {
            let mut dbie = reader.section(*b"DBIE", DBIE_VERSION)?;
            let engine = DbiEngine::decode_snapshot(workload.program_arc(), &mut dbie)?;
            dbie.finish()?;
            Some(engine)
        };
        let (vm, sd) = if mode == Mode::Aikido {
            let mut akvm = reader.section(*b"AKVM", AKVM_VERSION)?;
            let vm = AikidoVm::decode_snapshot(&mut akvm)?;
            akvm.finish()?;
            let mut aksd = reader.section(*b"AKSD", AKSD_VERSION)?;
            let sd = AikidoSd::decode_snapshot(&mut aksd)?;
            aksd.finish()?;
            (Some(vm), Some(sd))
        } else {
            (None, None)
        };
        reader.finish()?;

        let (mut run, mut states) = Run::from_restored(
            self,
            workload,
            mode,
            &mut analysis,
            vm,
            sd,
            engine,
            cache,
            sched,
        );
        run.shard_plane = shard_plane;
        let status = self.drive(workload, workload, &mut run, &mut states, stop_after, true)?;
        Ok(match status {
            ExecStatus::Paused => CheckpointOutcome::Paused(run.encode_snapshot(&states)),
            ExecStatus::Completed => {
                let mut report = run.into_report();
                if report.fasttrack.is_none() {
                    report.fasttrack = Some(*analysis.stats());
                }
                CheckpointOutcome::Completed(Box::new(report))
            }
        })
    }

    /// Drives `run` to completion (or to the `stop_after` block target) over
    /// the configured feed: sequential for one worker, the epoch-parallel
    /// engine otherwise. `source` supplies the per-thread block streams
    /// (always the workload itself outside tests). When `fast_forward` is
    /// set, each slot's stream is first replayed past the executions a
    /// restored scheduler already consumed.
    fn drive<'w, A: SharedDataAnalysis, S: TraceSource + ?Sized>(
        &self,
        workload: &'w Workload,
        source: &S,
        run: &mut Run<'_, 'w, A>,
        states: &mut [ThreadState],
        stop_after: Option<u64>,
        fast_forward: bool,
    ) -> Result<ExecStatus, SimError> {
        let threads = workload.threads();
        if self.config.workers <= 1 || threads.len() <= 1 {
            let mut feed = SeqFeed::new(source, &threads);
            if fast_forward {
                fast_forward_feed(&mut feed, states)?;
            }
            return run.execute(&mut feed, states, stop_after);
        }
        let (status, panic) = std::thread::scope(|scope| {
            let mut feed =
                crate::epoch::spawn_producers(scope, source, &threads, self.config.workers);
            let panic = feed.panic_handle();
            let status = (|| -> Result<ExecStatus, SimError> {
                if fast_forward {
                    fast_forward_feed(&mut feed, states)?;
                }
                run.execute(&mut feed, states, stop_after)
            })();
            // Dropping the feed disconnects every lane, letting any
            // producer that ran ahead of the commit clock exit before the
            // scope joins it.
            drop(feed);
            (status, panic)
        });
        // Every producer has joined: the record is final. A recorded panic
        // outranks whatever the commit side salvaged — the run is truncated.
        let recorded = panic
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(message) = recorded {
            return Err(SimError::WorkerPanic { message });
        }
        status
    }

    /// Test seam: runs `workload` but pulls the per-thread block streams from
    /// `source` instead — how the fault-injection tests plant a panicking
    /// producer without touching the workload generator.
    #[cfg(test)]
    fn try_run_with_source<S: TraceSource + ?Sized>(
        &self,
        workload: &Workload,
        source: &S,
        mode: Mode,
    ) -> Result<RunReport, SimError> {
        let mut analysis = FastTrack::new();
        let mut run = Run::new(self, workload, mode, &mut analysis);
        let mut states = run.initial_states();
        self.drive(workload, source, &mut run, &mut states, None, false)?;
        Ok(run.into_report())
    }

    /// Test seam: runs with the sharded analysis plane forced on and a
    /// panic injected into `shard`'s analysis worker at its first
    /// non-empty flush — how the fault-injection tests prove a shard
    /// panic is contained (structured error, nothing merged, no hang).
    #[cfg(test)]
    fn try_run_with_shard_fault(
        &self,
        workload: &Workload,
        mode: Mode,
        shard: usize,
    ) -> Result<RunReport, SimError> {
        let mut analysis = self.new_fasttrack();
        let mut run = Run::new(self, workload, mode, &mut analysis);
        let mut plane = self.new_shard_plane(workload);
        plane.inject_panic_in_shard(shard);
        run.shard_plane = Some(plane);
        let mut states = run.initial_states();
        self.drive(workload, workload, &mut run, &mut states, None, false)?;
        Ok(run.into_report())
    }

    /// Runs the native / full / Aikido triple the paper compares for every
    /// benchmark.
    pub fn compare(&self, workload: &Workload) -> Comparison {
        Comparison {
            native: self.run(workload, Mode::Native),
            full: self.run(workload, Mode::FullInstrumentation),
            aikido: self.run(workload, Mode::Aikido),
        }
    }
}

/// Where the scheduler's blocks come from: the sequential path pulls straight
/// from each thread's trace; the parallel path pops batches produced by the
/// epoch worker pool. `slot` indexes the workload's thread list, and every
/// implementation must yield the exact same per-slot stream — the scheduler
/// (and therefore every report) cannot tell the feeds apart.
pub(crate) trait BlockFeed {
    /// Moves `slot`'s next execution into `out` (recycling `out`'s previous
    /// buffers); returns `false` once the slot's trace is exhausted.
    fn next_into(&mut self, slot: usize, out: &mut BlockExec) -> bool;
}

/// The sequential feed: one block stream per slot (a
/// [`aikido_workloads::ThreadTrace`] in production), consumed in place on
/// the scheduler thread. This is the reference path the parallel engine is
/// proven byte-identical against.
struct SeqFeed<T> {
    traces: Vec<T>,
}

impl<'s, T: crate::epoch::BlockStream> SeqFeed<T> {
    fn new<S: TraceSource<Stream<'s> = T> + ?Sized>(source: &'s S, threads: &[ThreadId]) -> Self {
        SeqFeed {
            traces: threads.iter().map(|&id| source.stream(id)).collect(),
        }
    }
}

impl<T: crate::epoch::BlockStream> BlockFeed for SeqFeed<T> {
    #[inline]
    fn next_into(&mut self, slot: usize, out: &mut BlockExec) -> bool {
        self.traces[slot].next_into(out)
    }
}

/// Per-thread scheduling state.
///
/// `exec` is a reusable scratch buffer filled through the run's [`BlockFeed`],
/// so the scheduler's steady state performs no per-block allocation.
struct ThreadState {
    id: ThreadId,
    started: bool,
    finished: bool,
    exec: BlockExec,
    /// True if `exec` holds a produced-but-unconsumed execution (a blocked
    /// synchronisation operation waiting to retry).
    has_exec: bool,
    /// Successful feed pulls so far. Because every feed yields the same
    /// per-slot stream (a pure function of the workload), this count is all
    /// a snapshot needs to reposition a fresh feed on resume: re-pull this
    /// many executions, keeping the last one when `has_exec` is set.
    pulled: u64,
}

/// How [`Run::execute`] returned.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ExecStatus {
    /// Every started thread ran to completion.
    Completed,
    /// The block target was reached; the run paused at a round boundary.
    Paused,
}

struct Run<'a, 'w, A: SharedDataAnalysis> {
    sim: &'a Simulator,
    workload: &'w Workload,
    mode: Mode,
    analysis: &'a mut A,
    threads: Vec<ThreadId>,
    cycles: u64,
    counts: RunCounts,
    // Components (presence depends on mode).
    vm: Option<AikidoVm>,
    sd: Option<AikidoSd>,
    engine: Option<DbiEngine>,
    cache: TranslationCache,
    region_lookup: DualShadow,
    // Shared-region bounds for the contention model and for counting shared
    // accesses under full instrumentation.
    shared_range: (u64, u64),
    contention: f64,
    last_scheduled: Option<ThreadId>,
    /// Per-barrier arrival sets, indexed by barrier id (ids are small
    /// sequential integers). Dense so the scheduler's sync path performs no
    /// hashing.
    barrier_arrivals: Vec<ArrivalSet>,
    /// Completed barriers, indexed by barrier id.
    barriers_done: Vec<bool>,
    /// Which thread currently holds each lock; acquires of a held lock block
    /// the acquiring thread, exactly as a real mutex would. Indexed by raw
    /// lock id (workload lock ids are small sequential integers); the rare
    /// huge id spills into the scanned overflow list.
    lock_owners: Vec<Option<ThreadId>>,
    /// Owners of locks whose raw id exceeds the dense table.
    lock_owner_spill: Vec<(aikido_types::LockId, ThreadId)>,
    fatal_accesses: u64,
    /// The simulator's inline check, mirroring the code Aikido emits in front
    /// of every access (Figure 4): a per-thread direct-mapped table of pages
    /// whose accesses the hypervisor has already proven free. A hit skips the
    /// `vm.touch` call entirely. Sound because a free touch mutates no VM
    /// state, and every VM-mutating interaction clears the table.
    inline_tlb: Vec<[(Vpn, u8); SIM_TLB_ENTRIES]>,
    /// Memo of the last `(analysis base cost → contended cost)` conversion;
    /// the float multiply-and-round is deterministic in the base cost, and
    /// the analysis fast path reports the same base almost every access.
    last_contended_cost: (u64, u64),
    /// Reusable buffer of access contexts for one run, handed to
    /// [`SharedDataAnalysis::on_access_batch`] — no per-run allocation.
    cx_scratch: Vec<AccessContext>,
    /// Reusable buffer receiving the per-access analysis costs of one run.
    cost_scratch: Vec<u64>,
    /// Direct-mapped memo over *shared* pages: page → (region, mirror page).
    /// Pure memoization of monotone facts — sharing is sticky and the region
    /// and mirror displacements are fixed at setup — so entries never need
    /// invalidation, and a hit replaces one page-state read, one region
    /// lookup and one mirror translation per instrumented run with a single
    /// probe. Misses fall through to the authoritative lookups.
    shared_pages: Vec<SharedPageInfo>,
    /// The sharded analysis plane, when active. While present it receives
    /// every analysis delivery (accesses routed by page ownership, sync
    /// broadcast) and `analysis` is a never-delivered placeholder; the
    /// plane's canonical detector supplies the report, races and snapshot
    /// bytes instead.
    shard_plane: Option<ShardPlane>,
}

/// One [`Run::shared_pages`] entry.
#[derive(Copy, Clone)]
struct SharedPageInfo {
    /// The shared page, or `Vpn::new(u64::MAX)` for an empty slot.
    page: Vpn,
    /// The page's owning region (None: outside every registered region).
    region: Option<RegionId>,
    /// The page's mirror page.
    mirror: Vpn,
}

impl SharedPageInfo {
    const EMPTY: SharedPageInfo = SharedPageInfo {
        page: Vpn::new(u64::MAX),
        region: None,
        mirror: Vpn::new(u64::MAX),
    };
}

/// Which threads have arrived at one barrier: a flag per thread slot plus
/// the arrival count (insertion is idempotent, exactly like the `HashSet`
/// of thread ids it replaces).
#[derive(Clone, Debug, Default)]
struct ArrivalSet {
    arrived: Vec<bool>,
    count: usize,
}

impl ArrivalSet {
    fn insert(&mut self, thread: ThreadId) {
        let idx = thread.index();
        if idx >= self.arrived.len() {
            self.arrived.resize(idx + 1, false);
        }
        if !self.arrived[idx] {
            self.arrived[idx] = true;
            self.count += 1;
        }
    }
}

/// Raw lock ids below this bound use the dense owner table.
const DENSE_LOCKS: u64 = 1 << 12;

const MAX_FAULT_ITERATIONS: usize = 6;
/// Entries in each thread's inline-check table (power of two).
const SIM_TLB_ENTRIES: usize = 64;
/// Entries in the shared-page memo (power of two; comfortably above the
/// shared page count of every preset, so collisions stay rare).
const SHARED_PAGE_ENTRIES: usize = 256;
/// An inline-TLB slot that can never match a real page.
const SIM_TLB_EMPTY: (Vpn, u8) = (Vpn::new(u64::MAX), 0);
/// Runs shorter than this charge translations through the scalar call: the
/// batched cache pass only wins once its setup cost amortizes over the run.
const TRANSLATION_BATCH_MIN: usize = 4;

#[inline]
fn kind_bit(kind: AccessKind) -> u8 {
    match kind {
        AccessKind::Read => 1,
        AccessKind::Write => 2,
    }
}

impl<'a, 'w, A: SharedDataAnalysis> Run<'a, 'w, A> {
    fn new(sim: &'a Simulator, workload: &'w Workload, mode: Mode, analysis: &'a mut A) -> Self {
        let threads = workload.threads();
        let layout = workload.layout();
        let shared_range = (
            layout.shared_base().raw(),
            layout.shared_base().raw() + layout.shared_bytes(),
        );
        let contention = sim.cost.contention_factor(threads.len() as u32);

        let mut region_lookup = DualShadow::new();
        for (base, pages) in layout.regions() {
            region_lookup
                .register_region(base, pages, RegionKind::Other)
                .expect("workload regions are disjoint");
        }

        let mut run = Run {
            sim,
            workload,
            mode,
            analysis,
            threads,
            cycles: 0,
            counts: RunCounts::default(),
            vm: None,
            sd: None,
            engine: None,
            cache: TranslationCache::new(),
            region_lookup,
            shared_range,
            contention,
            last_scheduled: None,
            barrier_arrivals: Vec::new(),
            barriers_done: Vec::new(),
            lock_owners: Vec::new(),
            lock_owner_spill: Vec::new(),
            fatal_accesses: 0,
            inline_tlb: Vec::new(),
            last_contended_cost: (u64::MAX, 0),
            cx_scratch: Vec::new(),
            cost_scratch: Vec::new(),
            shared_pages: vec![SharedPageInfo::EMPTY; SHARED_PAGE_ENTRIES],
            shard_plane: None,
        };
        run.setup();
        run
    }

    fn setup(&mut self) {
        match self.mode {
            Mode::Native => {}
            Mode::FullInstrumentation => {
                // Conventional pipeline: every memory instruction carries
                // instrumentation from the start.
                let mut engine = DbiEngine::new(self.workload.program_arc());
                for block in self.workload.program().iter() {
                    for (id, instr) in block.iter_ids() {
                        if instr.is_mem() {
                            engine.request_instrumentation(id);
                        }
                    }
                }
                self.engine = Some(engine);
            }
            Mode::Aikido => {
                let mut vm = AikidoVm::new(VmConfig::default());
                vm.register_thread(ThreadId::MAIN)
                    .expect("main thread registers once");
                let mut sd = AikidoSd::new();
                for (base, pages) in self.workload.layout().regions() {
                    vm.mmap(base, pages, Prot::RW_USER)
                        .expect("workload regions are disjoint");
                    sd.attach_region(&mut vm, base, pages)
                        .expect("regions attach cleanly");
                }
                let mut engine = DbiEngine::new(self.workload.program_arc());
                if self.sim.config.static_precheck {
                    // Run the static pre-analysis and hand its derived plan
                    // to the engine. The plan is advice: it stamps
                    // proven-private bits onto cached blocks (enabling the
                    // wide-block free fast path) and bounds the
                    // instrumentation the detector should ever request, but
                    // it cannot change what the analysis observes.
                    let report = aikido_staticcheck::StaticReport::for_workload(self.workload);
                    engine.install_static_plan(report.plan());
                }
                self.engine = Some(engine);
                self.vm = Some(vm);
                self.sd = Some(sd);
            }
        }
    }

    /// Reassembles a run from restored components, bypassing [`Run::setup`]
    /// entirely — the decoded VM, sharing detector, DBI engine, translation
    /// cache and scheduler state *are* the setup, exactly as they stood at
    /// the pause. Derived structures (region table, shared-range bounds,
    /// contention factor) are rebuilt from the workload, and the droppable
    /// memos (inline-check tables, shared-page memo, contended-cost memo)
    /// restart cold: all of them are pure accelerations whose absence is
    /// proven unobservable, so the resumed run stays byte-identical.
    #[allow(clippy::too_many_arguments)]
    fn from_restored(
        sim: &'a Simulator,
        workload: &'w Workload,
        mode: Mode,
        analysis: &'a mut A,
        vm: Option<AikidoVm>,
        sd: Option<AikidoSd>,
        engine: Option<DbiEngine>,
        cache: TranslationCache,
        sched: SchedState,
    ) -> (Self, Vec<ThreadState>) {
        let threads = workload.threads();
        let layout = workload.layout();
        let shared_range = (
            layout.shared_base().raw(),
            layout.shared_base().raw() + layout.shared_bytes(),
        );
        let contention = sim.cost.contention_factor(threads.len() as u32);
        let mut region_lookup = DualShadow::new();
        for (base, pages) in layout.regions() {
            region_lookup
                .register_region(base, pages, RegionKind::Other)
                .expect("workload regions are disjoint");
        }
        let states = threads
            .iter()
            .zip(&sched.slots)
            .map(|(&id, slot)| ThreadState {
                id,
                started: slot.started,
                finished: slot.finished,
                exec: BlockExec::default(),
                has_exec: slot.has_exec,
                pulled: slot.pulled,
            })
            .collect();
        let run = Run {
            sim,
            workload,
            mode,
            analysis,
            threads,
            cycles: sched.cycles,
            counts: sched.counts,
            vm,
            sd,
            engine,
            cache,
            region_lookup,
            shared_range,
            contention,
            last_scheduled: sched.last_scheduled,
            barrier_arrivals: sched.barrier_arrivals,
            barriers_done: sched.barriers_done,
            lock_owners: sched.lock_owners,
            lock_owner_spill: sched.lock_owner_spill,
            fatal_accesses: sched.fatal_accesses,
            inline_tlb: Vec::new(),
            last_contended_cost: (u64::MAX, 0),
            cx_scratch: Vec::new(),
            cost_scratch: Vec::new(),
            shared_pages: vec![SharedPageInfo::EMPTY; SHARED_PAGE_ENTRIES],
            shard_plane: None,
        };
        (run, states)
    }

    /// The per-slot scheduling states a fresh run starts from.
    fn initial_states(&self) -> Vec<ThreadState> {
        self.threads
            .iter()
            .map(|&id| ThreadState {
                id,
                started: id == ThreadId::MAIN,
                finished: false,
                exec: BlockExec::default(),
                has_exec: false,
                pulled: 0,
            })
            .collect()
    }

    /// Drives the round-robin scheduler until every started thread finishes
    /// ([`ExecStatus::Completed`]) or — when `stop_after` is set — until the
    /// run has retired that many block executions in total, pausing at the
    /// end of the scheduling round ([`ExecStatus::Paused`]). Pausing only at
    /// round boundaries keeps the checkpoint surface small: no thread is
    /// mid-quantum, so `states` plus the components is the whole state.
    ///
    /// With the shard plane active, queued analysis work is flushed at round
    /// boundaries once enough accesses accumulate, and the plane is finalized
    /// (merged into its canonical detector, cycles charged) before either
    /// return — so a pause snapshot and a completed report both see the fully
    /// merged detector. A shard panic surfaces as [`SimError::WorkerPanic`].
    fn execute<F: BlockFeed>(
        &mut self,
        feed: &mut F,
        states: &mut [ThreadState],
        stop_after: Option<u64>,
    ) -> Result<ExecStatus, SimError> {
        loop {
            let mut progress = false;
            for i in 0..states.len() {
                if !states[i].started || states[i].finished {
                    continue;
                }
                self.context_switch_to(states[i].id);
                let mut executed = 0;
                while executed < self.sim.config.quantum {
                    if !states[i].has_exec {
                        let st = &mut states[i];
                        if !feed.next_into(i, &mut st.exec) {
                            st.finished = true;
                            break;
                        }
                        st.has_exec = true;
                        st.pulled += 1;
                    }
                    match self.classify(&states[i].exec) {
                        BlockKind::Work => {
                            self.execute_work_block(states[i].id, &states[i].exec);
                            states[i].has_exec = false;
                            executed += 1;
                            progress = true;
                        }
                        BlockKind::Sync(op) => {
                            let thread = states[i].id;
                            match self.execute_sync(thread, op, &mut *states) {
                                SyncOutcome::Done => {
                                    states[i].has_exec = false;
                                    executed += 1;
                                    progress = true;
                                }
                                SyncOutcome::Blocked => {
                                    // The execution stays stashed in `exec`
                                    // for the next scheduling round.
                                    break;
                                }
                                SyncOutcome::Exited => {
                                    states[i].finished = true;
                                    states[i].has_exec = false;
                                    progress = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            if !progress {
                break;
            }
            if let Some(plane) = self.shard_plane.as_mut() {
                if plane.should_flush() {
                    plane
                        .flush()
                        .map_err(|message| SimError::WorkerPanic { message })?;
                }
            }
            if let Some(stop) = stop_after {
                if self.counts.block_execs >= stop
                    && states.iter().any(|s| s.started && !s.finished)
                {
                    self.finalize_shard_plane()?;
                    return Ok(ExecStatus::Paused);
                }
            }
        }
        debug_assert!(
            states.iter().all(|s| !s.started || s.finished),
            "scheduler ended with runnable threads (deadlock in the generated workload?)"
        );
        self.finalize_shard_plane()?;
        Ok(ExecStatus::Completed)
    }

    /// Merges the shard plane (when active) into its canonical detector and
    /// charges the plane's accumulated analysis cycles; a shard panic during
    /// the final flush surfaces as [`SimError::WorkerPanic`] with nothing
    /// merged.
    fn finalize_shard_plane(&mut self) -> Result<(), SimError> {
        if let Some(plane) = self.shard_plane.as_mut() {
            let cycles = plane
                .finalize()
                .map_err(|message| SimError::WorkerPanic { message })?;
            self.cycles += cycles;
        }
        Ok(())
    }

    fn classify(&self, exec: &BlockExec) -> BlockKind {
        if exec.ops.len() == 1 {
            match exec.ops[0] {
                Operation::Sync(op) => return BlockKind::Sync(SyncEvent::Sync(op)),
                Operation::Exit => return BlockKind::Sync(SyncEvent::Exit),
                _ => {}
            }
        }
        BlockKind::Work
    }

    fn context_switch_to(&mut self, thread: ThreadId) {
        if self.last_scheduled == Some(thread) {
            return;
        }
        if let (Some(vm), Some(prev)) = (self.vm.as_mut(), self.last_scheduled) {
            // The guest scheduler notifies the hypervisor of same-address-space
            // context switches through the inserted hypercall (§3.2.3).
            let _ = vm.hypercall(aikido_vm::Hypercall::ContextSwitch {
                from: prev,
                to: thread,
            });
            self.cycles += self.sim.cost.context_switch_cycles;
        }
        self.last_scheduled = Some(thread);
    }

    fn execute_sync(
        &mut self,
        thread: ThreadId,
        event: SyncEvent,
        states: &mut [ThreadState],
    ) -> SyncOutcome {
        match event {
            SyncEvent::Exit => {
                self.charge_sync();
                if self.mode != Mode::Native {
                    self.analysis.on_thread_exit(thread);
                }
                SyncOutcome::Exited
            }
            SyncEvent::Sync(op) => match op {
                SyncOp::Acquire(lock) => {
                    match self.lock_owner(lock) {
                        Some(owner) if owner != thread => return SyncOutcome::Blocked,
                        _ => {}
                    }
                    self.set_lock_owner(lock, Some(thread));
                    self.charge_sync();
                    if self.mode != Mode::Native {
                        if let Some(plane) = self.shard_plane.as_mut() {
                            plane.enqueue_acquire(thread, lock);
                        } else {
                            self.analysis.on_acquire(thread, lock);
                        }
                        self.cycles += self.analysis.sync_cost_cycles();
                    }
                    SyncOutcome::Done
                }
                SyncOp::Release(lock) => {
                    debug_assert_eq!(self.lock_owner(lock), Some(thread));
                    self.set_lock_owner(lock, None);
                    self.charge_sync();
                    if self.mode != Mode::Native {
                        if let Some(plane) = self.shard_plane.as_mut() {
                            plane.enqueue_release(thread, lock);
                        } else {
                            self.analysis.on_release(thread, lock);
                        }
                        self.cycles += self.analysis.sync_cost_cycles();
                    }
                    SyncOutcome::Done
                }
                SyncOp::Fork(child) => {
                    self.charge_sync();
                    if let Some(state) = states.iter_mut().find(|s| s.id == child) {
                        state.started = true;
                    }
                    if self.mode != Mode::Native {
                        if let Some(plane) = self.shard_plane.as_mut() {
                            plane.enqueue_fork(thread, child);
                        } else {
                            self.analysis.on_fork(thread, child);
                        }
                        self.cycles += self.analysis.sync_cost_cycles();
                    }
                    if let (Some(vm), Some(sd)) = (self.vm.as_mut(), self.sd.as_mut()) {
                        let before = sd.stats().protection_hypercalls;
                        vm.register_thread(child).expect("forked thread is new");
                        sd.protect_thread(vm, child)
                            .expect("thread protection succeeds");
                        let hypercalls = sd.stats().protection_hypercalls - before + 1;
                        self.cycles += hypercalls * self.sim.cost.hypercall_cycles;
                        // Only the child's protections changed, and its lane
                        // is necessarily empty (fresh thread id).
                        if let Some(lane) = self.inline_tlb.get_mut(child.index()) {
                            *lane = [SIM_TLB_EMPTY; SIM_TLB_ENTRIES];
                        }
                    }
                    SyncOutcome::Done
                }
                SyncOp::Join(child) => {
                    let child_finished = states
                        .iter()
                        .find(|s| s.id == child)
                        .map(|s| s.finished)
                        .unwrap_or(true);
                    if !child_finished {
                        return SyncOutcome::Blocked;
                    }
                    self.charge_sync();
                    if self.mode != Mode::Native {
                        if let Some(plane) = self.shard_plane.as_mut() {
                            plane.enqueue_join(thread, child);
                        } else {
                            self.analysis.on_join(thread, child);
                        }
                        self.cycles += self.analysis.sync_cost_cycles();
                    }
                    SyncOutcome::Done
                }
                SyncOp::Barrier(id) => {
                    let slot = id as usize;
                    if self.barriers_done.get(slot).copied().unwrap_or(false) {
                        self.charge_sync();
                        return SyncOutcome::Done;
                    }
                    if slot >= self.barrier_arrivals.len() {
                        self.barrier_arrivals
                            .resize_with(slot + 1, ArrivalSet::default);
                    }
                    let arrivals = &mut self.barrier_arrivals[slot];
                    arrivals.insert(thread);
                    let count = arrivals.count;
                    let participants = states.iter().filter(|s| s.started && !s.finished).count();
                    if count >= participants {
                        self.barrier_arrivals[slot] = ArrivalSet::default();
                        if slot >= self.barriers_done.len() {
                            self.barriers_done.resize(slot + 1, false);
                        }
                        self.barriers_done[slot] = true;
                        self.charge_sync();
                        if self.mode != Mode::Native {
                            if let Some(plane) = self.shard_plane.as_mut() {
                                plane.enqueue_barrier(id);
                            } else {
                                self.analysis.on_barrier(&self.threads, id);
                            }
                            self.cycles += self.analysis.sync_cost_cycles();
                        }
                        SyncOutcome::Done
                    } else {
                        SyncOutcome::Blocked
                    }
                }
            },
        }
    }

    /// The current owner of `lock` (dense table for small ids, spill list
    /// for the rest).
    fn lock_owner(&self, lock: aikido_types::LockId) -> Option<ThreadId> {
        if lock.raw() < DENSE_LOCKS {
            self.lock_owners.get(lock.raw() as usize).copied().flatten()
        } else {
            self.lock_owner_spill
                .iter()
                .find(|(l, _)| *l == lock)
                .map(|&(_, owner)| owner)
        }
    }

    /// Sets or clears the owner of `lock`.
    fn set_lock_owner(&mut self, lock: aikido_types::LockId, owner: Option<ThreadId>) {
        if lock.raw() < DENSE_LOCKS {
            let slot = lock.raw() as usize;
            if slot >= self.lock_owners.len() {
                self.lock_owners.resize(slot + 1, None);
            }
            self.lock_owners[slot] = owner;
        } else {
            self.lock_owner_spill.retain(|(l, _)| *l != lock);
            if let Some(owner) = owner {
                self.lock_owner_spill.push((lock, owner));
            }
        }
    }

    fn charge_sync(&mut self) {
        self.counts.sync_ops += 1;
        self.counts.dynamic_instrs += 1;
        self.cycles += self.sim.cost.sync_native_cycles;
        if self.mode != Mode::Native {
            self.cycles += self.sim.cost.dbi_overhead(1);
        }
    }

    /// Executes one work-block: dispatches to the batched per-mode kernel
    /// (the default) or to the scalar reference loop. Both paths perform the
    /// same additions to the same counters in the same stateful order, so
    /// every report is byte-identical between them — `batched_kernels_*`
    /// tests and the `block_kernels` benchmark rely on exactly that.
    fn execute_work_block(&mut self, thread: ThreadId, exec: &BlockExec) {
        self.counts.block_execs += 1;
        if !self.sim.config.batched_kernels {
            return self.execute_work_block_scalar(thread, exec);
        }
        match self.mode {
            Mode::Native => self.block_kernel_native(thread, exec),
            Mode::FullInstrumentation => self.block_kernel_full(thread, exec),
            Mode::Aikido => self.block_kernel_aikido(thread, exec),
        }
    }

    /// The scalar reference implementation: one mode dispatch, one engine
    /// probe and one `Option` unwrap per access. Kept as the equivalence
    /// oracle the batched kernels are proven against.
    fn execute_work_block_scalar(&mut self, thread: ThreadId, exec: &BlockExec) {
        if let Some(engine) = self.engine.as_mut() {
            let result = engine.execute_block(exec.block);
            if result.built {
                self.cycles += self.sim.cost.block_build(result.instr_count as u64);
            }
        }

        for op in &exec.ops {
            self.counts.dynamic_instrs += op.instruction_count();
            match op {
                Operation::Compute { count } => {
                    let n = *count as u64;
                    self.cycles += n * self.sim.cost.alu_cycles;
                    if self.mode != Mode::Native {
                        self.cycles += self.sim.cost.dbi_overhead(n);
                    }
                }
                Operation::Mem(m) => self.execute_mem(thread, m),
                Operation::Sync(op) => {
                    // Work blocks normally contain no sync ops, but handle
                    // them for robustness (custom workloads may embed them).
                    // Shared with the batched kernels so the two paths
                    // cannot drift apart.
                    self.work_block_sync(thread, op);
                }
                Operation::Map { .. } => {
                    // Dynamic mappings are set up ahead of time by the
                    // harness; charge a native syscall-ish cost.
                    self.cycles += self.sim.cost.sync_native_cycles;
                }
                Operation::Exit => self.work_block_exit(thread),
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched block kernels
    // ------------------------------------------------------------------
    //
    // The scalar loop above pays a mode dispatch, two `Option` probes, an
    // engine query and a cost-model field walk for *every* access. The
    // monomorphized kernels below hoist all of that to block entry and then
    // process memory accesses in *runs* — maximal groups of consecutive
    // accesses sharing `(page, kind, instrumented)` — so each run performs
    // one instrumentation-mask test, one sharing-view page-state read, one
    // inline-check probe and one batched analysis delivery. Equivalence with
    // the scalar loop is by construction, not by luck: every charge is the
    // same u64 added the same number of times, and every *stateful* call
    // (translation cache, analysis, VM touch, fault handling) happens in the
    // same order. The soundness arguments for each hoist:
    //
    // * instrumentation mask: a fault can only instrument the faulting
    //   access's own instruction, and ops carry one operation per static
    //   instruction, so decisions for *other* ops of the block cannot change
    //   mid-block — the mask snapshot at block entry stays exact;
    // * page-state read: `Shared` is sticky and transitions happen only
    //   inside fault handling, so one read covers a run until the next slow
    //   access (see `SharingView::is_shared_page`);
    // * inline-check probe: probes have no side effects, and a hit for
    //   `(page, kind)` covers every remaining access of the run because only
    //   VM interactions (which the hit skips) can invalidate it;
    // * region lookup: the region table is fixed at run construction and
    //   workload regions are page-aligned, so one lookup covers a page.

    /// A sync op embedded in a work block (rare; custom workloads only).
    fn work_block_sync(&mut self, thread: ThreadId, op: &SyncOp) {
        self.charge_sync();
        if self.mode != Mode::Native {
            if let Some(plane) = self.shard_plane.as_mut() {
                match op {
                    SyncOp::Acquire(l) => plane.enqueue_acquire(thread, *l),
                    SyncOp::Release(l) => plane.enqueue_release(thread, *l),
                    SyncOp::Fork(c) => plane.enqueue_fork(thread, *c),
                    SyncOp::Join(c) => plane.enqueue_join(thread, *c),
                    SyncOp::Barrier(id) => plane.enqueue_barrier(*id),
                }
            } else {
                match op {
                    SyncOp::Acquire(l) => self.analysis.on_acquire(thread, *l),
                    SyncOp::Release(l) => self.analysis.on_release(thread, *l),
                    SyncOp::Fork(c) => self.analysis.on_fork(thread, *c),
                    SyncOp::Join(c) => self.analysis.on_join(thread, *c),
                    SyncOp::Barrier(id) => self.analysis.on_barrier(&self.threads, *id),
                }
            }
            self.cycles += self.analysis.sync_cost_cycles();
        }
    }

    /// An exit op embedded in a work block (rare; custom workloads only).
    fn work_block_exit(&mut self, thread: ThreadId) {
        if self.mode != Mode::Native {
            self.analysis.on_thread_exit(thread);
        }
    }

    /// Native kernel: no engine, no analysis — count and charge native
    /// cycles, with the per-op decode skipped entirely for plain blocks.
    fn block_kernel_native(&mut self, thread: ThreadId, exec: &BlockExec) {
        let alu = self.sim.cost.alu_cycles;
        let mem = self.sim.cost.mem_cycles;
        if exec.meta.plain {
            self.counts.dynamic_instrs += exec.ops.len() as u64;
            self.counts.mem_accesses += u64::from(exec.meta.mem_ops);
            self.cycles +=
                u64::from(exec.meta.compute_ops) * alu + u64::from(exec.meta.mem_ops) * mem;
            return;
        }
        let mut dynamic = 0u64;
        let mut accesses = 0u64;
        let mut cycles = 0u64;
        for op in &exec.ops {
            match op {
                Operation::Mem(_) => {
                    dynamic += 1;
                    accesses += 1;
                    cycles += mem;
                }
                Operation::Compute { count } => {
                    let n = u64::from(*count);
                    dynamic += n;
                    cycles += n * alu;
                }
                Operation::Sync(op) => {
                    dynamic += 1;
                    self.work_block_sync(thread, op);
                }
                Operation::Map { .. } => {
                    dynamic += 1;
                    cycles += self.sim.cost.sync_native_cycles;
                }
                Operation::Exit => {
                    dynamic += 1;
                    self.work_block_exit(thread);
                }
            }
        }
        self.counts.dynamic_instrs += dynamic;
        self.counts.mem_accesses += accesses;
        self.cycles += cycles;
    }

    /// Full-instrumentation kernel: every access is instrumented, so runs
    /// need no mask — group by `(page, kind)` and batch the analysis.
    fn block_kernel_full(&mut self, thread: ThreadId, exec: &BlockExec) {
        let engine = self
            .engine
            .as_mut()
            .expect("full instrumentation has a dbi engine");
        let result = engine.execute_block(exec.block);
        if result.built {
            self.cycles += self.sim.cost.block_build(result.instr_count as u64);
        }
        let ops = &exec.ops;
        if exec.meta.plain {
            let computes = u64::from(exec.meta.compute_ops);
            self.counts.dynamic_instrs += computes;
            self.cycles += computes * (self.sim.cost.alu_cycles + self.sim.cost.dbi_overhead(1));
            for run in &exec.meta.runs {
                let start = usize::from(run.start);
                self.full_run(
                    thread,
                    &ops[start..start + usize::from(run.len)],
                    run.page,
                    run.kind,
                );
            }
            return;
        }
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                Operation::Mem(first) => {
                    let page = first.addr.page();
                    let kind = first.kind;
                    let mut j = i + 1;
                    while j < ops.len() {
                        match &ops[j] {
                            Operation::Mem(m) if m.addr.page() == page && m.kind == kind => {
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    self.full_run(thread, &ops[i..j], page, kind);
                    i = j;
                }
                op => {
                    self.non_mem_op(thread, op);
                    i += 1;
                }
            }
        }
    }

    /// Aikido kernel: runs additionally split on the block's instrumentation
    /// mask, and each run resolves its fast path (free / instrumented-private
    /// / instrumented-shared) once instead of per access.
    fn block_kernel_aikido(&mut self, thread: ThreadId, exec: &BlockExec) {
        let engine = self.engine.as_mut().expect("aikido mode has a dbi engine");
        let result = engine.execute_block(exec.block);
        if result.built {
            self.cycles += self.sim.cost.block_build(result.instr_count as u64);
        }
        let ops = &exec.ops;
        // The mask indexes by op position, which is only meaningful while
        // ops align one-to-one with the block's static instructions (the
        // `BlockExec` contract); the length check rejects hand-built
        // executions that carry run metadata but break the alignment, so
        // `mask >> run.start` can never shift past the 64-bit mask.
        //
        // A block is whole-block free when its exact mask is empty, or when
        // the static pre-analysis proved it thread-private and no fault has
        // instrumented any of its memory instructions — the latter covers
        // blocks too wide for an exact mask. The instrumented-count guard
        // keeps the condition delivery-preserving even under an unsound
        // claim: any actually-instrumented block falls back to the mask (or
        // scalar) path, and free runs still probe and fault exactly like the
        // fallback, so reports cannot depend on the claim being true.
        let whole_block_free = (result.mask_exact && result.instr_mask == 0)
            || (result.static_private && result.instrumented_mem_instrs == 0);
        if exec.meta.plain
            && exec.ops.len() == result.instr_count
            && (result.mask_exact || whole_block_free)
        {
            let computes = u64::from(exec.meta.compute_ops);
            self.counts.dynamic_instrs += computes;
            self.cycles += computes * (self.sim.cost.alu_cycles + self.sim.cost.dbi_overhead(1));
            let mask = result.instr_mask;
            if whole_block_free {
                // Whole-block free fast path — the steady state for every
                // block no fault has ever instrumented. Charge the accesses
                // in one batch and walk the runs with a single borrow of the
                // thread's inline-check lane; only a missing run falls into
                // the per-access machinery.
                let mems = u64::from(exec.meta.mem_ops);
                self.counts.dynamic_instrs += mems;
                self.counts.mem_accesses += mems;
                self.cycles += mems * (self.sim.cost.mem_cycles + self.sim.cost.dbi_overhead(1));
                let mut first_miss = None;
                if !self.sim.config.inline_tlb {
                    first_miss = Some(0);
                } else if let Some(lane) = self.inline_tlb.get(thread.index()) {
                    for (ri, run) in exec.meta.runs.iter().enumerate() {
                        let (cached, kinds) =
                            lane[(run.page.raw() as usize) & (SIM_TLB_ENTRIES - 1)];
                        if cached != run.page || kinds & kind_bit(run.kind) == 0 {
                            first_miss = Some(ri);
                            break;
                        }
                    }
                } else {
                    first_miss = Some(0);
                }
                if let Some(first_miss) = first_miss {
                    for run in &exec.meta.runs[first_miss..] {
                        let start = usize::from(run.start);
                        let run_ops = &ops[start..start + usize::from(run.len)];
                        self.aikido_free_run_slow(thread, run_ops, run.page, run.kind);
                    }
                }
                return;
            }
            for run in &exec.meta.runs {
                let start = usize::from(run.start);
                let len = usize::from(run.len);
                let run_ops = &ops[start..start + len];
                // Plain executions carry one op per static instruction,
                // aligned by index, so the block mask indexes by op position.
                let full = if len >= 64 {
                    u64::MAX
                } else {
                    (1u64 << len) - 1
                };
                let bits = (mask >> start) & full;
                if bits == 0 {
                    self.aikido_free_run(thread, run_ops, run.page, run.kind);
                } else if bits == full {
                    self.aikido_instrumented_run(thread, run_ops, run.page, run.kind);
                } else {
                    // Mixed instrumentation within one (page, kind) run:
                    // split at the bit boundaries.
                    let mut s = 0usize;
                    while s < len {
                        let instrumented = (bits >> s) & 1 != 0;
                        let mut e = s + 1;
                        while e < len && ((bits >> e) & 1 != 0) == instrumented {
                            e += 1;
                        }
                        let sub = &run_ops[s..e];
                        if instrumented {
                            self.aikido_instrumented_run(thread, sub, run.page, run.kind);
                        } else {
                            self.aikido_free_run(thread, sub, run.page, run.kind);
                        }
                        s = e;
                    }
                }
            }
            return;
        }
        let mut i = 0;
        while i < ops.len() {
            match &ops[i] {
                Operation::Mem(first) => {
                    let page = first.addr.page();
                    let kind = first.kind;
                    let instrumented = self
                        .engine
                        .as_ref()
                        .expect("aikido mode has a dbi engine")
                        .is_instrumented(first.instr);
                    let mut j = i + 1;
                    while j < ops.len() {
                        match &ops[j] {
                            Operation::Mem(m)
                                if m.addr.page() == page
                                    && m.kind == kind
                                    && self
                                        .engine
                                        .as_ref()
                                        .expect("aikido mode has a dbi engine")
                                        .is_instrumented(m.instr)
                                        == instrumented =>
                            {
                                j += 1;
                            }
                            _ => break,
                        }
                    }
                    let run_ops = &ops[i..j];
                    if instrumented {
                        self.aikido_instrumented_run(thread, run_ops, page, kind);
                    } else {
                        self.aikido_free_run(thread, run_ops, page, kind);
                    }
                    i = j;
                }
                op => {
                    self.non_mem_op(thread, op);
                    i += 1;
                }
            }
        }
    }

    /// A non-memory op inside an instrumented-mode work block.
    fn non_mem_op(&mut self, thread: ThreadId, op: &Operation) {
        match op {
            Operation::Compute { count } => {
                let n = u64::from(*count);
                self.counts.dynamic_instrs += n;
                self.cycles += n * self.sim.cost.alu_cycles + self.sim.cost.dbi_overhead(n);
            }
            Operation::Sync(op) => {
                self.counts.dynamic_instrs += 1;
                self.work_block_sync(thread, op);
            }
            Operation::Map { .. } => {
                self.counts.dynamic_instrs += 1;
                self.cycles += self.sim.cost.sync_native_cycles;
            }
            Operation::Exit => {
                self.counts.dynamic_instrs += 1;
                self.work_block_exit(thread);
            }
            Operation::Mem(_) => unreachable!("memory ops are grouped into runs"),
        }
    }

    /// One `(page, kind)` run under full instrumentation.
    fn full_run(&mut self, thread: ThreadId, run: &[Operation], page: Vpn, kind: AccessKind) {
        let n = run.len() as u64;
        self.counts.dynamic_instrs += n;
        self.counts.mem_accesses += n;
        self.counts.instrumented_accesses += n;
        self.cycles += n * (self.sim.cost.mem_cycles + self.sim.cost.dbi_overhead(1));
        let first = run[0]
            .as_mem()
            .expect("runs contain only memory operations");
        let shared = self.in_shared_region(first.addr);
        if shared {
            self.counts.shared_accesses += n;
        }
        // One region lookup covers the run (regions are page-aligned), one
        // batched cache pass prices the per-instruction translation levels,
        // and one run delivery lets the analysis resolve its metadata slab
        // once for the whole page.
        let region = self.region_lookup.region_id_of(first.addr);
        self.charge_translation_run(thread, region, run);
        self.charge_analysis_run(thread, run, shared, page, kind);
    }

    /// One uninstrumented run in Aikido mode: the emitted fast path. A
    /// single inline-check probe covers the whole run; only while it misses
    /// do accesses fall into the VM one at a time.
    fn aikido_free_run(
        &mut self,
        thread: ThreadId,
        run: &[Operation],
        page: Vpn,
        kind: AccessKind,
    ) {
        let n = run.len() as u64;
        self.counts.dynamic_instrs += n;
        self.counts.mem_accesses += n;
        self.cycles += n * (self.sim.cost.mem_cycles + self.sim.cost.dbi_overhead(1));
        self.aikido_free_run_slow(thread, run, page, kind);
    }

    /// The probe-and-fault part of a free run, with the counting already
    /// done by the caller.
    fn aikido_free_run_slow(
        &mut self,
        thread: ThreadId,
        run: &[Operation],
        page: Vpn,
        kind: AccessKind,
    ) {
        let mut rest = run.iter();
        while !self.inline_tlb_hit(thread, page, kind) {
            let Some(op) = rest.next() else { return };
            let m = op.as_mem().expect("runs contain only memory operations");
            self.access_with_fault_handling(thread, m);
        }
    }

    /// One instrumented run in Aikido mode. The page-state read happens once
    /// per slow step instead of once per access: a `Shared` answer covers the
    /// whole remaining run (shared is sticky), an unshared answer stays valid
    /// until the next VM interaction.
    /// Probes the shared-page memo for `page`.
    #[inline]
    fn shared_page_probe(&self, page: Vpn) -> Option<SharedPageInfo> {
        let entry = self.shared_pages[(page.raw() as usize) & (SHARED_PAGE_ENTRIES - 1)];
        (entry.page == page).then_some(entry)
    }

    fn aikido_instrumented_run(
        &mut self,
        thread: ThreadId,
        run: &[Operation],
        page: Vpn,
        kind: AccessKind,
    ) {
        let n = run.len() as u64;
        self.counts.dynamic_instrs += n;
        self.counts.mem_accesses += n;
        self.counts.instrumented_accesses += n;
        self.cycles += n * (self.sim.cost.mem_cycles + self.sim.cost.dbi_overhead(1));
        // A memo hit proves the page shared (sharing is sticky) with its
        // region and mirror already resolved — the common steady state for
        // instrumented instructions, since they were instrumented *because*
        // their pages are shared.
        if let Some(info) = self.shared_page_probe(page) {
            self.aikido_shared_tail(thread, run, kind, info);
            return;
        }
        let first = run[0]
            .as_mem()
            .expect("runs contain only memory operations");
        let region = self.region_lookup.region_id_of(first.addr);
        let mut idx = 0;
        while idx < run.len() {
            let shared = self
                .sd
                .as_ref()
                .expect("aikido mode has a sharing detector")
                .read_view()
                .is_shared_page(page);
            if shared {
                let info = self.resolve_shared_page(page, region, first.addr);
                self.aikido_shared_tail(thread, &run[idx..], kind, info);
                return;
            }
            let m = run[idx]
                .as_mem()
                .expect("runs contain only memory operations");
            self.charge_translation_resolved(thread, m.instr, region);
            if m.mode.is_indirect() {
                self.cycles += self.sim.cost.indirect_check_cycles;
            }
            if self.inline_tlb_hit(thread, page, kind) {
                // Proven free for (page, kind): the rest of the run charges
                // only its translations and indirect checks — the page cannot
                // become shared without a VM interaction the hit skips.
                let rest = &run[idx + 1..];
                self.charge_translation_run(thread, region, rest);
                for op in rest {
                    let m = op.as_mem().expect("runs contain only memory operations");
                    if m.mode.is_indirect() {
                        self.cycles += self.sim.cost.indirect_check_cycles;
                    }
                }
                return;
            }
            self.access_with_fault_handling(thread, m);
            idx += 1;
        }
    }

    /// Resolves the mirror page of a page just observed shared and installs
    /// the memo entry (mirror translation failures are never cached — they
    /// keep taking the authoritative per-access path).
    fn resolve_shared_page(
        &mut self,
        page: Vpn,
        region: Option<RegionId>,
        addr: Addr,
    ) -> SharedPageInfo {
        let mirror = self
            .sd
            .as_ref()
            .expect("aikido mode has a sharing detector")
            .mirror_addr(addr)
            .map(|m| m.page());
        match mirror {
            Ok(mirror) => {
                let info = SharedPageInfo {
                    page,
                    region,
                    mirror,
                };
                self.shared_pages[(page.raw() as usize) & (SHARED_PAGE_ENTRIES - 1)] = info;
                info
            }
            Err(_) => SharedPageInfo {
                page,
                region,
                mirror: Vpn::new(u64::MAX),
            },
        }
    }

    /// The shared remainder of an instrumented run: batch-charge translation,
    /// analysis (contended) and redirection, then drive the mirror accesses
    /// through one probe — same app page means same mirror page.
    fn aikido_shared_tail(
        &mut self,
        thread: ThreadId,
        tail: &[Operation],
        kind: AccessKind,
        info: SharedPageInfo,
    ) {
        let k = tail.len() as u64;
        self.counts.shared_accesses += k;
        self.charge_translation_run(thread, info.region, tail);
        self.charge_analysis_run(thread, tail, true, info.page, kind);
        self.cycles += k * self.sim.cost.mirror_redirect_cycles;
        if info.mirror == Vpn::new(u64::MAX) {
            // No mirror translation exists: each access fails exactly like
            // the scalar loop's per-access `access_via_mirror` would.
            self.fatal_accesses += k;
            return;
        }
        let mut rest = tail.iter();
        while !self.inline_tlb_hit(thread, info.mirror, kind) {
            let Some(op) = rest.next() else { return };
            let m = op.as_mem().expect("runs contain only memory operations");
            self.access_via_mirror(thread, m);
        }
    }

    /// Charges one shadow translation with the region already resolved.
    #[inline]
    fn charge_translation_resolved(
        &mut self,
        thread: ThreadId,
        instr: aikido_types::InstrId,
        region: Option<RegionId>,
    ) {
        match region {
            Some(region) => {
                let level = self.cache.access(thread, instr, region);
                self.cycles += self.sim.cost.shadow_translation(level);
            }
            None => self.cycles += self.sim.cost.shadow_full_cycles,
        }
    }

    /// Charges one run of shadow translations in a single batched cache pass
    /// (one lane lookup instead of one per access). The cache's state
    /// evolution and statistics are identical to the per-access loop by
    /// construction — see [`TranslationCache::access_run`] — and the cycle
    /// total is the same sum grouped by level.
    fn charge_translation_run(
        &mut self,
        thread: ThreadId,
        region: Option<RegionId>,
        run: &[Operation],
    ) {
        let Some(region) = region else {
            self.cycles += run.len() as u64 * self.sim.cost.shadow_full_cycles;
            return;
        };
        if run.len() < TRANSLATION_BATCH_MIN {
            // Short runs dominate these access patterns; the scalar calls
            // beat the batch setup until the lane hoist amortizes.
            for op in run {
                let m = op.as_mem().expect("runs contain only memory operations");
                let level = self.cache.access(thread, m.instr, region);
                self.cycles += self.sim.cost.shadow_translation(level);
            }
            return;
        }
        let levels = self.cache.access_run(
            thread,
            region,
            run.iter().map(|op| {
                op.as_mem()
                    .expect("runs contain only memory operations")
                    .instr
            }),
        );
        self.cycles += levels.inline * self.sim.cost.shadow_translation(CacheLevel::Inline)
            + levels.thread_local * self.sim.cost.shadow_translation(CacheLevel::ThreadLocal)
            + levels.full * self.sim.cost.shadow_translation(CacheLevel::Full);
    }

    /// Delivers one run to the analysis in a single batched call and charges
    /// the per-access costs in access order, preserving the contended-cost
    /// memo's state evolution exactly. The run's page and kind ride along so
    /// slab-backed analyses resolve their metadata slab once per run.
    fn charge_analysis_run(
        &mut self,
        thread: ThreadId,
        run: &[Operation],
        shared: bool,
        page: Vpn,
        kind: AccessKind,
    ) {
        // A batch of one is the scalar call (the batched analysis entry point
        // delivers its first element through `on_access`); skip the scratch
        // round-trip. This is the common case — consecutive accesses rarely
        // share a page.
        if let [op] = run {
            let m = op.as_mem().expect("runs contain only memory operations");
            self.charge_analysis_access(thread, m, shared);
            return;
        }
        self.cx_scratch.clear();
        self.cx_scratch.extend(run.iter().map(|op| {
            let m = op.as_mem().expect("runs contain only memory operations");
            AccessContext {
                thread,
                addr: m.addr,
                kind: m.kind,
                size: m.size,
                instr: m.instr,
            }
        }));
        if let Some(plane) = self.shard_plane.as_mut() {
            plane.enqueue_run(thread, page, kind, &self.cx_scratch, shared);
            return;
        }
        self.analysis
            .on_access_run(page, kind, &self.cx_scratch, &mut self.cost_scratch);
        if shared {
            let mut total = 0u64;
            for idx in 0..self.cost_scratch.len() {
                let base = self.cost_scratch[idx];
                let cost = if self.last_contended_cost.0 == base {
                    self.last_contended_cost.1
                } else {
                    let contended = (base as f64 * self.contention).round() as u64;
                    self.last_contended_cost = (base, contended);
                    contended
                };
                total += cost;
            }
            self.cycles += total;
        } else {
            self.cycles += self.cost_scratch.iter().sum::<u64>();
        }
    }

    /// True if the inline check proves this access free (no VM involvement).
    #[inline]
    fn inline_tlb_hit(&self, thread: ThreadId, page: Vpn, kind: AccessKind) -> bool {
        if !self.sim.config.inline_tlb {
            return false;
        }
        match self.inline_tlb.get(thread.index()) {
            Some(lane) => {
                let (cached, kinds) = lane[(page.raw() as usize) & (SIM_TLB_ENTRIES - 1)];
                cached == page && kinds & kind_bit(kind) != 0
            }
            None => false,
        }
    }

    /// Records a proven-free `(thread, page, kind)` access.
    #[inline]
    fn inline_tlb_fill(&mut self, thread: ThreadId, page: Vpn, kind: AccessKind) {
        if !self.sim.config.inline_tlb {
            return;
        }
        let idx = thread.index();
        if idx >= self.inline_tlb.len() {
            self.inline_tlb
                .resize_with(idx + 1, || [SIM_TLB_EMPTY; SIM_TLB_ENTRIES]);
        }
        let slot = &mut self.inline_tlb[idx][(page.raw() as usize) & (SIM_TLB_ENTRIES - 1)];
        if slot.0 == page {
            slot.1 |= kind_bit(kind);
        } else {
            *slot = (page, kind_bit(kind));
        }
    }

    /// Drops every inline-check entry; the catch-all for VM-state changes
    /// that are not page-targeted (temporary-unprotection restores).
    fn inline_tlb_clear(&mut self) {
        for lane in &mut self.inline_tlb {
            *lane = [SIM_TLB_EMPTY; SIM_TLB_ENTRIES];
        }
    }

    /// Drops any entry for `page` in every thread's table — used after the
    /// sharing detector changes that page's protections. A page can only live
    /// in its own direct-mapped slot.
    fn inline_tlb_invalidate_page(&mut self, page: Vpn) {
        let slot = (page.raw() as usize) & (SIM_TLB_ENTRIES - 1);
        for lane in &mut self.inline_tlb {
            if lane[slot].0 == page {
                lane[slot] = SIM_TLB_EMPTY;
            }
        }
    }

    fn in_shared_region(&self, addr: Addr) -> bool {
        addr.raw() >= self.shared_range.0 && addr.raw() < self.shared_range.1
    }

    fn charge_analysis_access(&mut self, thread: ThreadId, m: &MemRef, shared: bool) {
        let cx = AccessContext {
            thread,
            addr: m.addr,
            kind: m.kind,
            size: m.size,
            instr: m.instr,
        };
        if let Some(plane) = self.shard_plane.as_mut() {
            plane.enqueue_access(cx, shared);
            return;
        }
        self.analysis.on_access(cx);
        let base = self.analysis.last_access_cost_cycles();
        let cost = if shared {
            if self.last_contended_cost.0 == base {
                self.last_contended_cost.1
            } else {
                let contended = (base as f64 * self.contention).round() as u64;
                self.last_contended_cost = (base, contended);
                contended
            }
        } else {
            base
        };
        self.cycles += cost;
    }

    fn charge_translation(&mut self, thread: ThreadId, m: &MemRef) {
        if let Some(region) = self.region_lookup.region_id_of(m.addr) {
            let level = self.cache.access(thread, m.instr, region);
            self.cycles += self.sim.cost.shadow_translation(level);
        } else {
            self.cycles += self.sim.cost.shadow_full_cycles;
        }
    }

    fn execute_mem(&mut self, thread: ThreadId, m: &MemRef) {
        self.counts.mem_accesses += 1;
        self.cycles += self.sim.cost.mem_cycles;
        match self.mode {
            Mode::Native => {}
            Mode::FullInstrumentation => {
                self.cycles += self.sim.cost.dbi_overhead(1);
                self.counts.instrumented_accesses += 1;
                let shared = self.in_shared_region(m.addr);
                if shared {
                    self.counts.shared_accesses += 1;
                }
                self.charge_translation(thread, m);
                self.charge_analysis_access(thread, m, shared);
            }
            Mode::Aikido => {
                self.cycles += self.sim.cost.dbi_overhead(1);
                let instrumented = self
                    .engine
                    .as_ref()
                    .map(|e| e.is_instrumented(m.instr))
                    .unwrap_or(false);
                if instrumented {
                    self.counts.instrumented_accesses += 1;
                    // The emitted code translates the address and checks the
                    // page's sharing state before deciding which path to take
                    // (Figure 4 of the paper).
                    self.charge_translation(thread, m);
                    // Lock-free page-state read (Figure 4's emitted check):
                    // the view types the fast path as read-only, transitions
                    // stay serialized on the commit clock.
                    let shared = self
                        .sd
                        .as_ref()
                        .map(|sd| sd.read_view().is_shared_addr(m.addr))
                        .unwrap_or(false);
                    if shared {
                        self.counts.shared_accesses += 1;
                        self.charge_analysis_access(thread, m, true);
                        self.cycles += self.sim.cost.mirror_redirect_cycles;
                        self.access_via_mirror(thread, m);
                    } else {
                        if m.mode.is_indirect() {
                            self.cycles += self.sim.cost.indirect_check_cycles;
                        }
                        self.access_with_fault_handling(thread, m);
                    }
                } else {
                    self.access_with_fault_handling(thread, m);
                }
            }
        }
    }

    fn access_via_mirror(&mut self, thread: ThreadId, m: &MemRef) {
        if self.sd.is_none() || self.vm.is_none() {
            return;
        }
        let mirror = match self.sd.as_ref().expect("checked above").mirror_addr(m.addr) {
            Ok(mirror) => mirror,
            Err(_) => {
                self.fatal_accesses += 1;
                return;
            }
        };
        let page = mirror.page();
        if self.inline_tlb_hit(thread, page, m.kind) {
            return;
        }
        let vm = self.vm.as_mut().expect("checked above");
        match vm.touch(thread, mirror, m.kind) {
            Ok(touch) => {
                if !touch.charges.is_free() {
                    self.cycles += self.sim.cost.vm_charges(&touch.charges);
                    if touch.charges.temp_reprotections > 0 {
                        self.inline_tlb_clear();
                    }
                }
                if matches!(touch.outcome, TouchOutcome::Ok) {
                    // Demand paging only installs entries for this page, so a
                    // successful touch is provably repeatable: record it.
                    self.inline_tlb_fill(thread, page, m.kind);
                } else {
                    // Mirror pages are never protected; anything else is a bug
                    // in the harness rather than in the modelled system.
                    self.fatal_accesses += 1;
                }
            }
            Err(_) => self.fatal_accesses += 1,
        }
    }

    fn access_with_fault_handling(&mut self, thread: ThreadId, m: &MemRef) {
        let page = m.addr.page();
        if self.inline_tlb_hit(thread, page, m.kind) {
            return;
        }
        for _ in 0..MAX_FAULT_ITERATIONS {
            let touch = {
                let vm = self.vm.as_mut().expect("aikido mode has a vm");
                match vm.touch(thread, m.addr, m.kind) {
                    Ok(t) => t,
                    Err(_) => {
                        self.fatal_accesses += 1;
                        return;
                    }
                }
            };
            if !touch.charges.is_free() {
                self.cycles += self.sim.cost.vm_charges(&touch.charges);
                if touch.charges.temp_reprotections > 0 {
                    // Restores touch every temporarily unprotected page.
                    self.inline_tlb_clear();
                }
            }
            match touch.outcome {
                TouchOutcome::Ok => {
                    self.inline_tlb_fill(thread, page, m.kind);
                    return;
                }
                TouchOutcome::Fatal(_) => {
                    self.fatal_accesses += 1;
                    return;
                }
                TouchOutcome::AikidoFault(fault) => {
                    self.counts.segfaults += 1;
                    let (vm, sd, engine) = (
                        self.vm.as_mut().expect("aikido mode has a vm"),
                        self.sd
                            .as_mut()
                            .expect("aikido mode has a sharing detector"),
                        self.engine.as_mut().expect("aikido mode has a dbi engine"),
                    );
                    let hypercalls_before = sd.stats().protection_hypercalls;
                    let disposition = sd
                        .handle_fault(vm, engine, &fault, m.instr)
                        .expect("fault handling succeeds");
                    let hypercalls = sd.stats().protection_hypercalls - hypercalls_before;
                    let rebuilt_instrs = if disposition.instruments_instruction() {
                        self.workload
                            .program()
                            .block(m.instr.block())
                            .map(|b| b.len() as u64)
                            .unwrap_or(0)
                    } else {
                        0
                    };
                    let thread_count = self.threads.len() as u32;
                    self.cycles +=
                        self.sim
                            .cost
                            .aikido_fault(hypercalls, thread_count, rebuilt_instrs);
                    self.inline_tlb_invalidate_page(page);

                    if disposition.instruments_instruction() {
                        // The block has been re-JITed with instrumentation;
                        // this access now runs the instrumented path and goes
                        // through the mirror page.
                        self.counts.instrumented_accesses += 1;
                        self.counts.shared_accesses += 1;
                        self.charge_translation(thread, m);
                        self.charge_analysis_access(thread, m, true);
                        self.cycles += self.sim.cost.mirror_redirect_cycles;
                        self.access_via_mirror(thread, m);
                        return;
                    }
                    // Otherwise the page became private (or was already);
                    // retry the access.
                }
            }
        }
        self.fatal_accesses += 1;
    }

    fn into_report(mut self) -> RunReport {
        debug_assert_eq!(self.fatal_accesses, 0, "workload produced fatal accesses");
        // The engine honours instrumentation requests even when they
        // contradict the installed static plan, so an unsound claim can never
        // corrupt a run — but in debug builds we refuse to let one pass
        // silently. (The mutation tests exercise unsound claims through the
        // audit wrapper, never through the engine's plan.)
        debug_assert_eq!(
            self.engine
                .as_ref()
                .map(|e| e.static_bound_violations())
                .unwrap_or(0),
            0,
            "static pre-analysis plan contradicted by an instrumentation request"
        );
        // With the shard plane active, the merged canonical detector is the
        // analysis of record (`self.analysis` is the never-delivered
        // placeholder); the plane must already be finalized by `execute`.
        let (fasttrack, races) = match self.shard_plane.take() {
            Some(plane) => {
                let canonical = plane.into_canonical();
                (Some(*canonical.stats()), canonical.races().to_vec())
            }
            None => (None, self.analysis.reports()),
        };
        RunReport {
            workload: self.workload.spec().name.clone(),
            mode: self.mode.label().to_string(),
            threads: self.workload.spec().threads,
            cycles: self.cycles,
            counts: self.counts,
            vm: self.vm.as_ref().map(|v| *v.stats()).unwrap_or_default(),
            code_cache: self
                .engine
                .as_ref()
                .map(|e| *e.cache_stats())
                .unwrap_or_default(),
            sharing: self.sd.as_ref().map(|s| *s.stats()).unwrap_or_default(),
            fasttrack,
            races,
        }
    }
}

// ----------------------------------------------------------------------
// Checkpoint/restore plumbing
// ----------------------------------------------------------------------

/// Section format versions. Bumped whenever a section's wire layout changes;
/// restore rejects any mismatch with a structured error.
const META_VERSION: u16 = 1;
const SCHD_VERSION: u16 = 1;
/// v2: the detector's spill plane moved to inline epoch lanes + ownership
/// epochs (PR 9). The serialized payload is unchanged byte-for-byte, but
/// restore behavior (word hints, owner tags, arena layout) is not — v1
/// images must not silently restore into the new plane.
const FTRK_VERSION: u16 = 2;
const TCCH_VERSION: u16 = 1;
const DBIE_VERSION: u16 = 1;
const AKVM_VERSION: u16 = 1;
const AKSD_VERSION: u16 = 1;

/// The identity a snapshot was taken under, serialized as canonical JSON.
/// Everything that must match for a resumed run to be byte-identical is in
/// here: the full workload spec, the mode, the scheduling quantum and the
/// cost model. Worker count, batched kernels, the inline TLB and the static
/// pre-check are deliberately absent — all four are proven observably
/// inert, so a snapshot resumes cleanly across those configurations.
#[derive(serde::Serialize)]
struct SnapshotMeta {
    format: &'static str,
    workload: WorkloadSpec,
    mode: &'static str,
    quantum: u32,
    cost: CostModel,
}

/// Renders the META payload for `(simulator, workload, mode)`. Restore
/// validates by *string equality* against each candidate mode's rendering:
/// `serde_json` output is deterministic for a fixed struct, so a single
/// comparison covers every field at once.
fn snapshot_meta_json(sim: &Simulator, workload: &Workload, mode: Mode) -> String {
    serde_json::to_string(&SnapshotMeta {
        format: "aikido-checkpoint",
        workload: workload.spec().clone(),
        mode: mode.label(),
        quantum: sim.config.quantum,
        cost: sim.cost.clone(),
    })
    .expect("snapshot metadata serializes")
}

/// One [`ThreadState`]'s serializable core (the `exec` shell is recreated by
/// replaying the feed on resume).
struct SlotState {
    started: bool,
    finished: bool,
    has_exec: bool,
    pulled: u64,
}

/// The scheduler's serialized state: everything [`Run`] owns that is not a
/// component, a derived structure, or a droppable memo.
struct SchedState {
    cycles: u64,
    counts: RunCounts,
    fatal_accesses: u64,
    last_scheduled: Option<ThreadId>,
    barriers_done: Vec<bool>,
    barrier_arrivals: Vec<ArrivalSet>,
    lock_owners: Vec<Option<ThreadId>>,
    lock_owner_spill: Vec<(LockId, ThreadId)>,
    slots: Vec<SlotState>,
}

impl SchedState {
    fn decode(r: &mut SectionReader, expected_slots: usize) -> Result<Self, SnapshotError> {
        let cycles = r.get_u64()?;
        let counts = RunCounts {
            dynamic_instrs: r.get_u64()?,
            mem_accesses: r.get_u64()?,
            instrumented_accesses: r.get_u64()?,
            shared_accesses: r.get_u64()?,
            segfaults: r.get_u64()?,
            sync_ops: r.get_u64()?,
            block_execs: r.get_u64()?,
        };
        let fatal_accesses = r.get_u64()?;
        let last_scheduled = match r.get_u8()? {
            0 => None,
            1 => Some(ThreadId::new(r.get_u32()?)),
            tag => {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("unknown last-scheduled tag {tag}"),
                ));
            }
        };
        let done = r.get_usize()?;
        let mut barriers_done = Vec::with_capacity(done.min(1 << 16));
        for _ in 0..done {
            barriers_done.push(r.get_bool()?);
        }
        let arrivals = r.get_usize()?;
        let mut barrier_arrivals = Vec::with_capacity(arrivals.min(1 << 16));
        for _ in 0..arrivals {
            let len = r.get_usize()?;
            let mut arrived = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                arrived.push(r.get_bool()?);
            }
            let count = arrived.iter().filter(|&&a| a).count();
            barrier_arrivals.push(ArrivalSet { arrived, count });
        }
        let owners = r.get_usize()?;
        let mut lock_owners = Vec::with_capacity(owners.min(DENSE_LOCKS as usize));
        for _ in 0..owners {
            lock_owners.push(match r.get_u8()? {
                0 => None,
                1 => Some(ThreadId::new(r.get_u32()?)),
                tag => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("unknown lock-owner tag {tag}"),
                    ));
                }
            });
        }
        let spills = r.get_usize()?;
        let mut lock_owner_spill = Vec::with_capacity(spills.min(1 << 16));
        for _ in 0..spills {
            let lock = LockId::new(r.get_u64()?);
            lock_owner_spill.push((lock, ThreadId::new(r.get_u32()?)));
        }
        let slots = r.get_usize()?;
        if slots != expected_slots {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                format!("snapshot holds {slots} thread slots, workload has {expected_slots}"),
            ));
        }
        let mut slot_states = Vec::with_capacity(slots);
        for _ in 0..slots {
            let started = r.get_bool()?;
            let finished = r.get_bool()?;
            let has_exec = r.get_bool()?;
            let pulled = r.get_u64()?;
            if has_exec && pulled == 0 {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    "slot claims a stashed execution but recorded zero pulls",
                ));
            }
            slot_states.push(SlotState {
                started,
                finished,
                has_exec,
                pulled,
            });
        }
        Ok(SchedState {
            cycles,
            counts,
            fatal_accesses,
            last_scheduled,
            barriers_done,
            barrier_arrivals,
            lock_owners,
            lock_owner_spill,
            slots: slot_states,
        })
    }
}

/// Repositions a fresh feed to where a restored scheduler paused: each
/// slot's stream re-pulls the executions the original run already consumed.
/// When the slot had a stashed (produced-but-blocked) execution, the final
/// re-pull lands in `st.exec` — exactly the block the resumed scheduler
/// retries first.
fn fast_forward_feed<F: BlockFeed>(
    feed: &mut F,
    states: &mut [ThreadState],
) -> Result<(), SnapshotError> {
    for (i, st) in states.iter_mut().enumerate() {
        for n in 0..st.pulled {
            if !feed.next_into(i, &mut st.exec) {
                return Err(SnapshotError::new(
                    "SCHD",
                    0,
                    format!(
                        "slot {i}: trace exhausted after {n} of {} recorded pulls \
                         (snapshot does not belong to this workload)",
                        st.pulled
                    ),
                ));
            }
        }
    }
    Ok(())
}

impl<'w> Run<'_, 'w, FastTrack> {
    /// Serializes the paused run — scheduler plus every component — into a
    /// versioned, checksummed snapshot image. Section order is fixed:
    /// `META`, `SCHD`, `FTRK`, `TCCH`, then `DBIE`/`AKVM`/`AKSD` as the
    /// mode requires; restore walks the same order and rejects deviations.
    fn encode_snapshot(&self, states: &[ThreadState]) -> Snapshot {
        let mut builder = SnapshotBuilder::new();

        let mut meta = SectionWriter::new(*b"META", META_VERSION);
        meta.put_str(&snapshot_meta_json(self.sim, self.workload, self.mode));
        builder.push(meta);

        let mut schd = SectionWriter::new(*b"SCHD", SCHD_VERSION);
        self.encode_sched(states, &mut schd);
        builder.push(schd);

        let mut ftrk = SectionWriter::new(*b"FTRK", FTRK_VERSION);
        match &self.shard_plane {
            // The plane was finalized before the pause, so its canonical
            // detector holds the fully merged state — byte-identical to
            // what a sequential run would serialize here.
            Some(plane) => plane.canonical().encode_snapshot(&mut ftrk),
            None => self.analysis.encode_snapshot(&mut ftrk),
        }
        builder.push(ftrk);

        let mut tcch = SectionWriter::new(*b"TCCH", TCCH_VERSION);
        self.cache.encode_snapshot(&mut tcch);
        builder.push(tcch);

        if let Some(engine) = &self.engine {
            let mut dbie = SectionWriter::new(*b"DBIE", DBIE_VERSION);
            engine.encode_snapshot(&mut dbie);
            builder.push(dbie);
        }
        if let Some(vm) = &self.vm {
            let mut akvm = SectionWriter::new(*b"AKVM", AKVM_VERSION);
            vm.encode_snapshot(&mut akvm);
            builder.push(akvm);
        }
        if let Some(sd) = &self.sd {
            let mut aksd = SectionWriter::new(*b"AKSD", AKSD_VERSION);
            sd.encode_snapshot(&mut aksd);
            builder.push(aksd);
        }
        builder.finish()
    }

    fn encode_sched(&self, states: &[ThreadState], out: &mut SectionWriter) {
        out.put_u64(self.cycles);
        out.put_u64(self.counts.dynamic_instrs);
        out.put_u64(self.counts.mem_accesses);
        out.put_u64(self.counts.instrumented_accesses);
        out.put_u64(self.counts.shared_accesses);
        out.put_u64(self.counts.segfaults);
        out.put_u64(self.counts.sync_ops);
        out.put_u64(self.counts.block_execs);
        out.put_u64(self.fatal_accesses);
        match self.last_scheduled {
            None => out.put_u8(0),
            Some(thread) => {
                out.put_u8(1);
                out.put_u32(thread.raw());
            }
        }
        out.put_usize(self.barriers_done.len());
        for &done in &self.barriers_done {
            out.put_bool(done);
        }
        out.put_usize(self.barrier_arrivals.len());
        for set in &self.barrier_arrivals {
            out.put_usize(set.arrived.len());
            for &arrived in &set.arrived {
                out.put_bool(arrived);
            }
        }
        out.put_usize(self.lock_owners.len());
        for owner in &self.lock_owners {
            match owner {
                None => out.put_u8(0),
                Some(thread) => {
                    out.put_u8(1);
                    out.put_u32(thread.raw());
                }
            }
        }
        out.put_usize(self.lock_owner_spill.len());
        for &(lock, owner) in &self.lock_owner_spill {
            out.put_u64(lock.raw());
            out.put_u32(owner.raw());
        }
        out.put_usize(states.len());
        for st in states {
            out.put_bool(st.started);
            out.put_bool(st.finished);
            out.put_bool(st.has_exec);
            out.put_u64(st.pulled);
        }
    }
}

enum BlockKind {
    Work,
    Sync(SyncEvent),
}

#[derive(Copy, Clone)]
enum SyncEvent {
    Sync(SyncOp),
    Exit,
}

enum SyncOutcome {
    Done,
    Blocked,
    Exited,
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_workloads::{
        producer_consumer_workload, racy_workload, read_only_sharing_workload, WorkloadSpec,
    };
    use std::collections::HashSet;

    fn small(name: &str) -> Workload {
        Workload::generate(
            &WorkloadSpec::parsec(name)
                .unwrap()
                .scaled(0.02)
                .with_threads(4),
        )
    }

    #[test]
    fn native_mode_counts_accesses_but_never_instruments() {
        let w = small("blackscholes");
        let report = Simulator::default().run(&w, Mode::Native);
        assert!(report.counts.mem_accesses > 0);
        assert_eq!(report.counts.instrumented_accesses, 0);
        assert_eq!(report.counts.segfaults, 0);
        assert_eq!(report.vm.aikido_faults_delivered, 0);
        assert_eq!(report.mode, "native");
    }

    #[test]
    fn full_instrumentation_instruments_every_access() {
        let w = small("blackscholes");
        let report = Simulator::default().run(&w, Mode::FullInstrumentation);
        assert_eq!(
            report.counts.instrumented_accesses,
            report.counts.mem_accesses
        );
        assert!(report.fasttrack.unwrap().reads + report.fasttrack.unwrap().writes > 0);
    }

    #[test]
    fn aikido_instruments_a_strict_subset_on_low_sharing_workloads() {
        let w = small("blackscholes");
        let aikido = Simulator::default().run(&w, Mode::Aikido);
        assert!(aikido.counts.instrumented_accesses < aikido.counts.mem_accesses);
        assert!(aikido.counts.shared_accesses <= aikido.counts.instrumented_accesses);
        assert!(
            aikido.counts.segfaults > 0,
            "sharing detection requires faults"
        );
        assert!(aikido.sharing.faults_handled > 0);
        assert_eq!(aikido.counts.segfaults, aikido.vm.aikido_faults_delivered);
    }

    #[test]
    fn slowdowns_order_as_in_the_paper_for_low_sharing() {
        let w = small("raytrace");
        let cmp = Simulator::default().compare(&w);
        assert!(cmp.full_slowdown() > cmp.aikido_slowdown());
        assert!(cmp.aikido_slowdown() > 1.0);
        assert!(
            cmp.aikido_speedup() > 1.5,
            "raytrace-like workloads are Aikido's best case"
        );
    }

    #[test]
    fn shared_access_fraction_tracks_the_spec() {
        let spec = WorkloadSpec::parsec("vips")
            .unwrap()
            .scaled(0.02)
            .with_threads(4);
        let w = Workload::generate(&spec);
        let report = Simulator::default().run(&w, Mode::Aikido);
        let measured = report.counts.shared_access_fraction();
        let expected = spec.expected_shared_access_fraction();
        assert!(
            (measured - expected).abs() < 0.08,
            "measured {measured:.3} expected {expected:.3}"
        );
    }

    #[test]
    fn race_free_workloads_report_no_races_in_either_mode() {
        let w = Workload::generate(&producer_consumer_workload(4).scaled(0.5));
        let full = Simulator::default().run(&w, Mode::FullInstrumentation);
        let aikido = Simulator::default().run(&w, Mode::Aikido);
        assert_eq!(full.race_count(), 0, "{:?}", full.races);
        assert_eq!(aikido.race_count(), 0, "{:?}", aikido.races);
    }

    #[test]
    fn racy_workloads_are_caught_by_both_modes() {
        let w = Workload::generate(&racy_workload(4));
        let full = Simulator::default().run(&w, Mode::FullInstrumentation);
        let aikido = Simulator::default().run(&w, Mode::Aikido);
        assert!(full.race_count() > 0);
        assert!(aikido.race_count() > 0);
    }

    #[test]
    fn read_only_sharing_is_aikidos_best_case() {
        let w = Workload::generate(&read_only_sharing_workload(4));
        let cmp = Simulator::default().compare(&w);
        assert!(
            cmp.aikido_speedup() > 2.0,
            "speedup {}",
            cmp.aikido_speedup()
        );
    }

    #[test]
    fn deterministic_runs_produce_identical_reports() {
        let w = small("swaptions");
        let a = Simulator::default().run(&w, Mode::Aikido);
        let b = Simulator::default().run(&w, Mode::Aikido);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.counts.segfaults, b.counts.segfaults);
    }

    #[test]
    fn batched_kernels_reproduce_the_scalar_reference_exactly() {
        for name in ["blackscholes", "fluidanimate", "canneal"] {
            let w = small(name);
            for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
                let batched = Simulator::default().run(&w, mode);
                let scalar = Simulator::default()
                    .with_batched_kernels(false)
                    .run(&w, mode);
                assert_eq!(batched, scalar, "{name} {mode:?}");
            }
        }
    }

    #[test]
    fn batched_kernels_handle_racy_and_barrier_workloads_identically() {
        let racy = Workload::generate(&racy_workload(4));
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let batched = Simulator::default().run(&racy, mode);
            let scalar = Simulator::default()
                .with_batched_kernels(false)
                .run(&racy, mode);
            assert_eq!(batched, scalar, "racy {mode:?}");
            assert!(batched.race_count() > 0);
        }
        let mut spec = WorkloadSpec::parsec("bodytrack").unwrap().scaled(0.02);
        spec.barrier_every = 10;
        let barriers = Workload::generate(&spec);
        let batched = Simulator::default().run(&barriers, Mode::Aikido);
        let scalar = Simulator::default()
            .with_batched_kernels(false)
            .run(&barriers, Mode::Aikido);
        assert_eq!(batched, scalar);
    }

    #[test]
    fn huge_lock_id_spaces_spill_out_of_the_dense_owner_table() {
        // More locks than the dense owner table holds: acquires of the high
        // lock ids exercise the scanned spill list, and mutual exclusion
        // still holds (no deadlock, identical reports across kernels).
        let spec = WorkloadSpec {
            mem_accesses_per_thread: 1_200,
            threads: 4,
            locks: (super::DENSE_LOCKS + 128) as u32,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(&spec);
        let batched = Simulator::default().run(&w, Mode::Aikido);
        let scalar = Simulator::default()
            .with_batched_kernels(false)
            .run(&w, Mode::Aikido);
        assert_eq!(batched, scalar);
        assert!(batched.counts.sync_ops > 0);
    }

    #[test]
    fn static_precheck_changes_no_observable_output() {
        // The derived plan only widens the whole-block free fast path, whose
        // charges are identical to the fallback's — so the full report must
        // not move when the pre-analysis is disabled.
        for name in ["raytrace", "canneal"] {
            let w = small(name);
            for mode in [Mode::FullInstrumentation, Mode::Aikido] {
                let with_precheck = Simulator::default().run(&w, mode);
                let without = Simulator::default()
                    .with_static_precheck(false)
                    .run(&w, mode);
                assert_eq!(with_precheck, without, "{name} {mode:?}");
            }
        }
    }

    #[test]
    fn wide_blocks_use_the_proven_private_fast_path_identically() {
        // 80 memory instructions per block pushes every work block past the
        // 64-bit exact mask, so proven-private blocks can only take the
        // whole-block fast path through the static plan. All four
        // configurations must agree byte for byte.
        let spec = WorkloadSpec {
            mem_accesses_per_thread: 2_000,
            threads: 4,
            block_mem_instrs: 80,
            ..WorkloadSpec::default()
        };
        let w = Workload::generate(&spec);
        assert!(
            w.program().iter().any(|b| b.len() > 64),
            "spec must produce mask-inexact blocks"
        );
        let reference = Simulator::default()
            .with_static_precheck(false)
            .with_batched_kernels(false)
            .run(&w, Mode::Aikido);
        for (precheck, batched) in [(false, true), (true, false), (true, true)] {
            let report = Simulator::default()
                .with_static_precheck(precheck)
                .with_batched_kernels(batched)
                .run(&w, Mode::Aikido);
            assert_eq!(report, reference, "precheck={precheck} batched={batched}");
        }
    }

    #[test]
    fn disabling_the_inline_tlb_changes_no_observable_output() {
        // The inline check only ever skips provably free VM touches, so the
        // full report — cycles included — must not move when it is off.
        let w = small("vips");
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let with_tlb = Simulator::default().run(&w, mode);
            let without = Simulator::default().with_inline_tlb(false).run(&w, mode);
            assert_eq!(with_tlb, without, "{mode:?}");
        }
    }

    #[test]
    fn parallel_workers_reproduce_the_sequential_report() {
        let w = small("swaptions");
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let seq = Simulator::default().run(&w, mode);
            for workers in [2, 3, 8] {
                let par = Simulator::default().with_workers(workers).run(&w, mode);
                assert_eq!(par, seq, "workers={workers} mode={mode:?}");
            }
        }
    }

    #[test]
    fn env_overrides_parse_every_variable_in_one_place() {
        // The ONLY test that mutates the simulator environment variables —
        // every other path is config-driven — so mutating them here races
        // with nothing.
        let vars = [
            "AIKIDO_PARALLEL",
            "AIKIDO_CHECKPOINT_EVERY",
            "AIKIDO_SCALE",
            "AIKIDO_SHARDED",
        ];
        for var in vars {
            std::env::remove_var(var);
        }
        assert_eq!(SimConfig::from_env_overrides(), SimConfig::default());

        std::env::set_var("AIKIDO_PARALLEL", "4");
        std::env::set_var("AIKIDO_CHECKPOINT_EVERY", "300");
        std::env::set_var("AIKIDO_SCALE", "0.25");
        std::env::set_var("AIKIDO_SHARDED", "0");
        let config = SimConfig::from_env_overrides();
        assert_eq!(config.workers, 4);
        assert_eq!(config.checkpoint_every, Some(300));
        assert_eq!(config.scale, 0.25);
        assert!(!config.sharded_analysis);

        std::env::set_var("AIKIDO_PARALLEL", "0");
        std::env::set_var("AIKIDO_CHECKPOINT_EVERY", "0");
        std::env::set_var("AIKIDO_SCALE", "-1");
        std::env::set_var("AIKIDO_SHARDED", "true");
        let config = SimConfig::from_env_overrides();
        assert_eq!(config.workers, 1, "0 is not a worker count");
        assert_eq!(config.checkpoint_every, None, "0 disables the policy");
        assert_eq!(config.scale, 1.0, "non-positive scales are ignored");
        assert!(config.sharded_analysis);

        std::env::set_var("AIKIDO_PARALLEL", "not-a-number");
        std::env::set_var("AIKIDO_CHECKPOINT_EVERY", "not-a-number");
        std::env::set_var("AIKIDO_SCALE", "not-a-number");
        std::env::set_var("AIKIDO_SHARDED", "not-a-bool");
        assert_eq!(SimConfig::from_env_overrides(), SimConfig::default());

        for var in vars {
            std::env::remove_var(var);
        }
    }

    #[test]
    fn from_config_matches_the_builder_chain_and_rejects_invalid_configs() {
        let w = small("freqmine");
        let config = SimConfig::default()
            .with_quantum(3)
            .with_workers(2)
            .with_batched_kernels(false)
            .with_packed_words(false);
        let from_config = Simulator::from_config(config).unwrap();
        let chained = Simulator::default()
            .with_quantum(3)
            .with_workers(2)
            .with_batched_kernels(false)
            .with_packed_words(false);
        assert_eq!(from_config.config(), chained.config());
        assert_eq!(
            from_config.run(&w, Mode::Aikido),
            chained.run(&w, Mode::Aikido)
        );

        let err = Simulator::from_config(SimConfig::default().with_workers(0)).unwrap_err();
        assert_eq!(err.field, "workers");
    }

    #[test]
    fn full_and_aikido_report_the_same_races_on_racy_workloads() {
        let w = Workload::generate(&racy_workload(4));
        let full = Simulator::default().run(&w, Mode::FullInstrumentation);
        let aikido = Simulator::default().run(&w, Mode::Aikido);
        // Aikido may miss races in its documented first-two-accesses window,
        // but every race it reports must be on a block the full tool also
        // flagged (no false positives relative to the full tool).
        let full_blocks: HashSet<u64> = full.races.iter().map(|r| r.addr.raw() / 8).collect();
        for race in &aikido.races {
            assert!(
                full_blocks.contains(&(race.addr.raw() / 8)),
                "aikido reported a race the full tool did not: {race:?}"
            );
        }
    }

    #[test]
    fn custom_analysis_can_be_plugged_in() {
        use aikido_types::NullAnalysis;
        let w = small("canneal");
        let mut null = NullAnalysis::new();
        let report = Simulator::default().run_with_analysis(&w, Mode::Aikido, &mut null);
        assert!(null.accesses() > 0);
        assert_eq!(report.race_count(), 0);
        assert!(report.fasttrack.is_none());
    }

    #[test]
    fn thread_scaling_increases_full_instrumentation_overhead() {
        // Table 1: overheads grow with thread count.
        let spec = WorkloadSpec::parsec("fluidanimate").unwrap().scaled(0.02);
        let slowdown_at = |threads: u32| {
            let w = Workload::generate(&spec.with_threads(threads));
            let cmp = Simulator::default().compare(&w);
            cmp.full_slowdown()
        };
        let two = slowdown_at(2);
        let eight = slowdown_at(8);
        assert!(
            eight > two,
            "8-thread slowdown {eight:.1} <= 2-thread {two:.1}"
        );
    }

    // ------------------------------------------------------------------
    // Checkpoint/restore and fault containment
    // ------------------------------------------------------------------

    use crate::epoch::{BlockStream, TraceSource};
    use aikido_workloads::ThreadTrace;

    /// A [`TraceSource`] that hands out the workload's real streams but makes
    /// one thread's stream panic after a fixed number of pulls — the injected
    /// fault the parallel engine must contain.
    struct PanicSource<'w> {
        workload: &'w Workload,
        victim: ThreadId,
        after: u32,
    }

    struct PanicStream<'s> {
        inner: ThreadTrace<'s>,
        armed: bool,
        remaining: u32,
    }

    impl PanicStream<'_> {
        fn tick(&mut self) {
            if self.armed {
                if self.remaining == 0 {
                    panic!("injected producer panic");
                }
                self.remaining -= 1;
            }
        }
    }

    impl TraceSource for PanicSource<'_> {
        type Stream<'s>
            = PanicStream<'s>
        where
            Self: 's;

        fn stream(&self, thread: ThreadId) -> PanicStream<'_> {
            PanicStream {
                inner: self.workload.thread_trace(thread),
                armed: thread == self.victim,
                remaining: self.after,
            }
        }
    }

    impl BlockStream for PanicStream<'_> {
        fn fill_batch(&mut self, batch: &mut Vec<BlockExec>, target: usize) -> bool {
            self.tick();
            self.inner.fill_batch(batch, target)
        }

        fn next_into(&mut self, out: &mut BlockExec) -> bool {
            self.tick();
            self.inner.next_into(out)
        }
    }

    #[test]
    fn a_panicking_producer_surfaces_as_a_structured_error() {
        let w = small("blackscholes");
        // A whole epoch batch can swallow a small trace in one pull, so the
        // panic must be armed for the very first one.
        let source = PanicSource {
            workload: &w,
            victim: w.threads()[1],
            after: 0,
        };
        for workers in [2, 4] {
            let sim = Simulator::default().with_workers(workers);
            let err = sim
                .try_run_with_source(&w, &source, Mode::Aikido)
                .expect_err("the injected panic must fail the run");
            match err {
                SimError::WorkerPanic { ref message } => {
                    assert!(
                        message.contains("injected producer panic"),
                        "panic payload lost: {message:?}"
                    );
                }
                ref other => panic!("expected WorkerPanic, got {other:?}"),
            }
            assert!(err.to_string().contains("injected producer panic"));
        }
    }

    #[test]
    fn a_panicking_analysis_shard_surfaces_as_a_structured_error() {
        // The sharded-analysis counterpart of the producer-panic test: a
        // shard worker that dies mid-flush must drain the lanes, merge
        // nothing and surface the payload — never hang or emit a partial
        // report.
        let w = small("blackscholes");
        for workers in [2, 4] {
            let sim = Simulator::default().with_workers(workers);
            let err = sim
                .try_run_with_shard_fault(&w, Mode::Aikido, 0)
                .expect_err("the injected shard panic must fail the run");
            match err {
                SimError::WorkerPanic { ref message } => {
                    assert!(
                        message.contains("injected analysis shard panic"),
                        "panic payload lost: {message:?}"
                    );
                }
                ref other => panic!("expected WorkerPanic, got {other:?}"),
            }
            assert!(err.to_string().contains("injected analysis shard panic"));
        }
    }

    #[test]
    fn sharded_analysis_reproduces_the_commit_thread_oracle() {
        // The SimConfig toggle retains the commit-thread-only path as the
        // equivalence oracle: identical reports (cycles, stats, races and
        // all) with sharding on vs off, at several worker counts.
        let w = small("streamcluster");
        for mode in [Mode::FullInstrumentation, Mode::Aikido] {
            let oracle = Simulator::default()
                .with_sharded_analysis(false)
                .run(&w, mode);
            for workers in [2, 4, 8] {
                let sharded = Simulator::default().with_workers(workers).run(&w, mode);
                assert_eq!(sharded, oracle, "workers={workers} mode={mode:?}");
                let unsharded = Simulator::default()
                    .with_workers(workers)
                    .with_sharded_analysis(false)
                    .run(&w, mode);
                assert_eq!(unsharded, oracle, "workers={workers} mode={mode:?}");
            }
        }
    }

    #[test]
    fn shard_occupancy_is_reported_for_parallel_runs_only() {
        let w = small("bodytrack");
        let sim = Simulator::default().with_workers(4);
        let (report, occupancy) = sim.try_run_with_occupancy(&w, Mode::Aikido).unwrap();
        let occupancy = occupancy.expect("parallel aikido runs shard their analysis");
        assert_eq!(occupancy.per_shard.len(), 4);
        assert!(occupancy.total() > 0, "the run delivered accesses");
        // Every routed access is an instrumented access the run observed
        // (the exact count also includes fault-path deliveries, so the
        // plane total is bounded by the report's access counters).
        assert!(
            occupancy.total() <= report.counts.mem_accesses,
            "plane routed {} accesses but the run only performed {}",
            occupancy.total(),
            report.counts.mem_accesses
        );

        let (_, sequential) = Simulator::default()
            .try_run_with_occupancy(&w, Mode::Aikido)
            .unwrap();
        assert!(sequential.is_none(), "one worker: no plane");
        let (_, native) = sim.try_run_with_occupancy(&w, Mode::Native).unwrap();
        assert!(native.is_none(), "native mode: no analysis at all");
    }

    #[test]
    fn an_untampered_source_reproduces_the_production_run() {
        // The test seam itself must be inert: driving the run through the
        // TraceSource indirection (panic disarmed) changes nothing.
        let w = small("canneal");
        let source = PanicSource {
            workload: &w,
            victim: ThreadId::new(u32::MAX),
            after: 0,
        };
        let via_seam = Simulator::default()
            .try_run_with_source(&w, &source, Mode::Aikido)
            .unwrap();
        let mut direct = Simulator::default().run(&w, Mode::Aikido);
        direct.fasttrack = None; // the seam helper runs without stats capture
        assert_eq!(via_seam, direct);
    }

    #[test]
    fn checkpoint_resume_matches_the_uninterrupted_run() {
        let w = small("blackscholes");
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let sim = Simulator::default();
            let uninterrupted = sim.run(&w, mode);
            let midpoint = uninterrupted.counts.block_execs / 2;
            let outcome = sim.checkpoint(&w, mode, midpoint).unwrap();
            let CheckpointOutcome::Paused(snapshot) = outcome else {
                panic!("midpoint checkpoint must pause");
            };
            // Round-trip through raw bytes: resume validates a re-parsed image.
            let snapshot = Snapshot::from_bytes(snapshot.into_bytes()).unwrap();
            let resumed = sim.resume(&w, &snapshot).unwrap();
            assert_eq!(resumed, uninterrupted, "{mode:?}");
        }
    }

    #[test]
    fn snapshots_resume_across_worker_counts() {
        let w = small("fluidanimate");
        let seq = Simulator::default();
        let par = Simulator::default().with_workers(4);
        let uninterrupted = seq.run(&w, Mode::Aikido);
        let midpoint = uninterrupted.counts.block_execs / 2;

        // Sequential checkpoint, parallel resume…
        let CheckpointOutcome::Paused(snap) = seq.checkpoint(&w, Mode::Aikido, midpoint).unwrap()
        else {
            panic!("midpoint checkpoint must pause");
        };
        assert_eq!(par.resume(&w, &snap).unwrap(), uninterrupted);

        // …and parallel checkpoint, sequential resume.
        let CheckpointOutcome::Paused(snap) = par.checkpoint(&w, Mode::Aikido, midpoint).unwrap()
        else {
            panic!("midpoint checkpoint must pause");
        };
        assert_eq!(seq.resume(&w, &snap).unwrap(), uninterrupted);
    }

    #[test]
    fn chained_checkpoints_compose() {
        let w = small("swaptions");
        let sim = Simulator::default();
        let uninterrupted = sim.run(&w, Mode::Aikido);
        let total = uninterrupted.counts.block_execs;
        let mut outcome = sim.checkpoint(&w, Mode::Aikido, total / 4).unwrap();
        let mut target = total / 4;
        let mut pauses = 0;
        let report = loop {
            match outcome {
                CheckpointOutcome::Completed(report) => break *report,
                CheckpointOutcome::Paused(snapshot) => {
                    pauses += 1;
                    let snapshot = Snapshot::from_bytes(snapshot.into_bytes()).unwrap();
                    target += total / 4;
                    outcome = sim.resume_until(&w, &snapshot, target).unwrap();
                }
            }
        };
        assert!(pauses >= 2, "only {pauses} pauses across {total} blocks");
        assert_eq!(report, uninterrupted);
    }

    #[test]
    fn a_checkpoint_past_the_end_completes() {
        let w = small("raytrace");
        let sim = Simulator::default();
        let uninterrupted = sim.run(&w, Mode::Native);
        let outcome = sim
            .checkpoint(&w, Mode::Native, uninterrupted.counts.block_execs * 2)
            .unwrap();
        match outcome {
            CheckpointOutcome::Completed(report) => assert_eq!(*report, uninterrupted),
            CheckpointOutcome::Paused(_) => panic!("nothing left to pause for"),
        }
    }

    #[test]
    fn resume_rejects_a_snapshot_from_a_different_configuration() {
        let w = small("vips");
        let sim = Simulator::default();
        let report = sim.run(&w, Mode::Aikido);
        let CheckpointOutcome::Paused(snapshot) = sim
            .checkpoint(&w, Mode::Aikido, report.counts.block_execs / 2)
            .unwrap()
        else {
            panic!("midpoint checkpoint must pause");
        };

        // Different workload.
        let other = small("canneal");
        let err = sim.resume(&other, &snapshot).unwrap_err();
        let SimError::Snapshot(err) = err else {
            panic!("expected a snapshot error, got {err:?}");
        };
        assert_eq!(err.section, "META");

        // Different scheduling quantum.
        let err = Simulator::default()
            .with_quantum(3)
            .resume(&w, &snapshot)
            .unwrap_err();
        let SimError::Snapshot(err) = err else {
            panic!("expected a snapshot error, got {err:?}");
        };
        assert_eq!(err.section, "META");

        // Worker count is *not* identity: the same snapshot still resumes.
        assert!(Simulator::default()
            .with_workers(3)
            .resume(&w, &snapshot)
            .is_ok());
    }

    #[test]
    fn run_checkpointed_honors_the_configured_policy() {
        let w = small("raytrace");
        let uninterrupted = Simulator::default().run(&w, Mode::Aikido);

        let sim = Simulator::default().with_checkpoint_every(Some(300));
        let checkpointed = sim.run_checkpointed(&w, Mode::Aikido).unwrap();
        assert_eq!(checkpointed, uninterrupted);

        let sim = Simulator::default();
        let plain = sim.run_checkpointed(&w, Mode::Aikido).unwrap();
        assert_eq!(plain, uninterrupted);
    }
}

//! The cycle cost model.
//!
//! All calibration constants live here (see DESIGN.md §5). Every experiment
//! records the model it used, so the calibration is explicit and can be
//! overridden — the ablation benchmark does exactly that.

use serde::{Deserialize, Serialize};

/// Cycle charges for every event the simulator models.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One register-only (ALU/branch) instruction.
    pub alu_cycles: u64,
    /// One load or store executing natively.
    pub mem_cycles: u64,
    /// Native cost of a synchronisation operation (uncontended futex path).
    pub sync_native_cycles: u64,
    /// Amortised DynamoRIO overhead per dynamic instruction (code-cache
    /// dispatch, block linking).
    pub dbi_per_instr_milli_cycles: u64,
    /// Building (JITing) one basic block: fixed part.
    pub block_build_cycles: u64,
    /// Building one basic block: per-instruction part.
    pub block_build_per_instr_cycles: u64,
    /// Umbra shadow translation served by the inline memoization cache.
    pub shadow_inline_cycles: u64,
    /// Umbra shadow translation served by a thread-local cache.
    pub shadow_thread_local_cycles: u64,
    /// Umbra shadow translation requiring the full region lookup.
    pub shadow_full_cycles: u64,
    /// Redirecting an instrumented access through its mirror page (the
    /// app-to-mirror translation plus the rewritten access itself).
    pub mirror_redirect_cycles: u64,
    /// The dynamic shared/private check emitted for instrumented *indirect*
    /// memory instructions (taken on the private fast path).
    pub indirect_check_cycles: u64,
    /// One VM exit (world switch into the hypervisor and back).
    pub vm_exit_cycles: u64,
    /// Delivering a page fault to the guest userspace handler (signal frame,
    /// handler, sigreturn) on top of the VM exit.
    pub fault_delivery_cycles: u64,
    /// Hypervisor work to synchronise one shadow page-table entry.
    pub shadow_sync_cycles: u64,
    /// Guest-kernel demand-paging fault (native fault, no Aikido involvement).
    pub native_fault_cycles: u64,
    /// One hypercall from guest userspace.
    pub hypercall_cycles: u64,
    /// Sharing-detector bookkeeping per handled fault (page-state transition,
    /// protection requests), excluding the hypercalls themselves.
    pub sharing_handler_cycles: u64,
    /// Extra serialisation cost multiplier per additional thread applied to
    /// analysis checks on *shared* data (models contention on analysis
    /// metadata; this is what makes overheads grow with thread count as in
    /// Table 1).
    pub contention_per_thread: f64,
    /// Guest context switch intercepted by the hypervisor.
    pub context_switch_cycles: u64,
    /// Per-thread cost of the TLB shootdown triggered by every protection
    /// change (the hypervisor must invalidate the mapping on every core that
    /// may have it cached); charged per protection hypercall and scaled by
    /// the thread count, which is what erodes Aikido's advantage on
    /// fault-heavy, highly shared benchmarks at high thread counts
    /// (fluidanimate in Table 1).
    pub tlb_shootdown_per_thread_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu_cycles: 1,
            mem_cycles: 1,
            sync_native_cycles: 60,
            dbi_per_instr_milli_cycles: 2_200,
            block_build_cycles: 40,
            block_build_per_instr_cycles: 6,
            shadow_inline_cycles: 4,
            shadow_thread_local_cycles: 14,
            shadow_full_cycles: 40,
            mirror_redirect_cycles: 20,
            indirect_check_cycles: 3,
            vm_exit_cycles: 60,
            fault_delivery_cycles: 220,
            shadow_sync_cycles: 20,
            native_fault_cycles: 90,
            hypercall_cycles: 45,
            sharing_handler_cycles: 50,
            contention_per_thread: 0.16,
            context_switch_cycles: 90,
            tlb_shootdown_per_thread_cycles: 60,
        }
    }
}

impl CostModel {
    /// The amortised DBI overhead for `instrs` dynamic instructions.
    pub fn dbi_overhead(&self, instrs: u64) -> u64 {
        (instrs * self.dbi_per_instr_milli_cycles) / 1_000
    }

    /// Cost of building a basic block of `instrs` instructions.
    pub fn block_build(&self, instrs: u64) -> u64 {
        self.block_build_cycles + instrs * self.block_build_per_instr_cycles
    }

    /// Cost of a shadow translation served at the given Umbra cache level.
    pub fn shadow_translation(&self, level: aikido_shadow::CacheLevel) -> u64 {
        match level {
            aikido_shadow::CacheLevel::Inline => self.shadow_inline_cycles,
            aikido_shadow::CacheLevel::ThreadLocal => self.shadow_thread_local_cycles,
            aikido_shadow::CacheLevel::Full => self.shadow_full_cycles,
        }
    }

    /// The contention multiplier applied to analysis checks on shared data
    /// when `threads` threads are running.
    pub fn contention_factor(&self, threads: u32) -> f64 {
        1.0 + self.contention_per_thread * (threads.saturating_sub(1) as f64)
    }

    /// Cost charged for the hypervisor work reported in a [`aikido_vm::Charges`].
    pub fn vm_charges(&self, charges: &aikido_vm::Charges) -> u64 {
        charges.vm_exits as u64 * self.vm_exit_cycles
            + charges.shadow_syncs as u64 * self.shadow_sync_cycles
            + charges.native_faults as u64 * self.native_fault_cycles
            + charges.shadow_misses as u64 * self.shadow_sync_cycles
            + charges.temp_reprotections as u64 * self.shadow_sync_cycles
    }

    /// Cost of one Aikido fault delivered to userspace and handled by the
    /// sharing detector (fault delivery + handler bookkeeping +
    /// `hypercalls` protection hypercalls, each with a TLB shootdown across
    /// `threads` cores + rebuilding a block of `rebuilt_instrs` instructions
    /// if an instrumentation decision was taken).
    pub fn aikido_fault(&self, hypercalls: u64, threads: u32, rebuilt_instrs: u64) -> u64 {
        self.fault_delivery_cycles
            + self.sharing_handler_cycles
            + hypercalls * self.hypercall_cycles
            + hypercalls * threads as u64 * self.tlb_shootdown_per_thread_cycles
            + if rebuilt_instrs > 0 {
                self.block_build(rebuilt_instrs)
            } else {
                0
            }
    }

    /// A cost model with free hypervisor/fault machinery — used by the
    /// ablation to isolate the cost of page-protection traps.
    pub fn with_free_faults(mut self) -> Self {
        self.vm_exit_cycles = 0;
        self.fault_delivery_cycles = 0;
        self.hypercall_cycles = 0;
        self.sharing_handler_cycles = 0;
        self.shadow_sync_cycles = 0;
        self.native_fault_cycles = 0;
        self.tlb_shootdown_per_thread_cycles = 0;
        self
    }

    /// A cost model without the indirect-instruction private fast path (every
    /// instrumented access pays translation + redirect even when private) —
    /// used by the ablation.
    pub fn without_indirect_fast_path(mut self) -> Self {
        // Charge the full translation + redirect instead of the cheap check;
        // the simulator consults `indirect_check_cycles` only on the private
        // fast path, so making it as expensive as a redirect models removing
        // the branch.
        self.indirect_check_cycles = self.shadow_inline_cycles + self.mirror_redirect_cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_shadow::CacheLevel;

    #[test]
    fn dbi_overhead_is_amortised_per_instruction() {
        let c = CostModel::default();
        assert_eq!(c.dbi_overhead(0), 0);
        assert_eq!(c.dbi_overhead(1_000), c.dbi_per_instr_milli_cycles);
        assert!(c.dbi_overhead(10) < c.dbi_per_instr_milli_cycles);
    }

    #[test]
    fn block_build_scales_with_size() {
        let c = CostModel::default();
        assert!(c.block_build(10) > c.block_build(1));
        assert_eq!(c.block_build(0), c.block_build_cycles);
    }

    #[test]
    fn shadow_translation_costs_increase_with_cache_level() {
        let c = CostModel::default();
        assert!(
            c.shadow_translation(CacheLevel::Inline)
                < c.shadow_translation(CacheLevel::ThreadLocal)
        );
        assert!(
            c.shadow_translation(CacheLevel::ThreadLocal) < c.shadow_translation(CacheLevel::Full)
        );
    }

    #[test]
    fn contention_grows_with_threads() {
        let c = CostModel::default();
        assert_eq!(c.contention_factor(1), 1.0);
        assert!(c.contention_factor(8) > c.contention_factor(2));
    }

    #[test]
    fn vm_charges_cost_reflects_events() {
        let c = CostModel::default();
        let free = aikido_vm::Charges::default();
        assert_eq!(c.vm_charges(&free), 0);
        let charges = aikido_vm::Charges {
            vm_exits: 1,
            native_faults: 1,
            ..aikido_vm::Charges::default()
        };
        assert_eq!(
            c.vm_charges(&charges),
            c.vm_exit_cycles + c.native_fault_cycles
        );
    }

    #[test]
    fn fault_cost_includes_rebuild_only_when_requested() {
        let c = CostModel::default();
        let without = c.aikido_fault(2, 8, 0);
        let with = c.aikido_fault(2, 8, 10);
        assert_eq!(with - without, c.block_build(10));
    }

    #[test]
    fn fault_cost_grows_with_thread_count() {
        let c = CostModel::default();
        assert!(c.aikido_fault(2, 8, 0) > c.aikido_fault(2, 2, 0));
    }

    #[test]
    fn ablation_variants_modify_the_right_knobs() {
        let free = CostModel::default().with_free_faults();
        assert_eq!(free.vm_exit_cycles, 0);
        assert_eq!(free.fault_delivery_cycles, 0);
        assert_eq!(free.alu_cycles, 1);
        let no_fast = CostModel::default().without_indirect_fast_path();
        assert!(no_fast.indirect_check_cycles > CostModel::default().indirect_check_cycles);
    }
}

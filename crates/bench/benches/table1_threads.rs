//! Table 1 sweep as a Criterion benchmark: thread-scaling runs for
//! fluidanimate and vips. The paper-style output comes from `--bin table1`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{Mode, Simulator, Workload, WorkloadSpec};

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in ["fluidanimate", "vips"] {
        for threads in [2u32, 8] {
            let spec = WorkloadSpec::parsec(name)
                .unwrap()
                .scaled(0.05)
                .with_threads(threads);
            let workload = Workload::generate(&spec);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{threads}threads")),
                &workload,
                |b, w| {
                    b.iter(|| Simulator::default().run(w, Mode::Aikido));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);

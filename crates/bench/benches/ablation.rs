//! Ablation sweeps as Criterion benchmarks: default Aikido vs free-fault and
//! no-fast-path cost models. The paper-style output comes from
//! `--bin ablation`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{CostModel, Mode, Simulator, Workload, WorkloadSpec};

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let spec = WorkloadSpec::parsec("vips").unwrap().scaled(0.05);
    let workload = Workload::generate(&spec);
    let configs: [(&str, Simulator); 3] = [
        ("default", Simulator::default()),
        (
            "free-faults",
            Simulator::new(CostModel::default().with_free_faults()),
        ),
        (
            "no-indirect-fast-path",
            Simulator::new(CostModel::default().without_indirect_fast_path()),
        ),
    ];
    for (label, sim) in configs {
        group.bench_with_input(BenchmarkId::new("aikido", label), &workload, |b, w| {
            b.iter(|| sim.run(w, Mode::Aikido));
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);

//! Microbenchmarks of the per-access hot path: the exact operations the
//! simulator performs for every simulated memory access, isolated per layer.
//!
//! ```bash
//! cargo bench -p aikido-bench --bench hotpath
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aikido::fasttrack::FastTrack;
use aikido::shadow::ShadowStore;
use aikido::types::{AccessKind, Addr, Prot, ThreadId};
use aikido::vm::{AikidoVm, VmConfig};
use aikido::{Mode, Simulator, Workload, WorkloadSpec};

/// Repeated same-page touches on an unprotected page: the dominant
/// "unshared page, access allowed" case the software TLB serves.
fn bench_vm_touch_hot(c: &mut Criterion) {
    let mut vm = AikidoVm::new(VmConfig::default());
    let t = ThreadId::new(0);
    vm.register_thread(t).unwrap();
    let base = Addr::new(0x40_0000);
    // Map more pages than the per-thread TLB holds so the stride benchmark
    // below actually misses the TLB and exercises the flat table lookup.
    const PAGES: u64 = 192;
    vm.mmap(base, PAGES, Prot::RW_USER).unwrap();
    for p in 0..PAGES {
        vm.touch(t, base.offset(p * 4096), AccessKind::Write)
            .unwrap();
    }
    c.bench_function("vm_touch/same_page_hit", |b| {
        b.iter(|| {
            let touch = vm
                .touch(t, black_box(base.offset(8)), AccessKind::Read)
                .unwrap();
            black_box(touch)
        })
    });

    // Striding across more pages than the TLB holds: exercises the shadow
    // page-table lookup (TLB miss, table hit).
    let mut page = 0u64;
    c.bench_function("vm_touch/page_stride", |b| {
        b.iter(|| {
            // Coprime stride so consecutive touches collide in the
            // direct-mapped TLB instead of settling into it.
            page = (page + 67) % PAGES;
            let addr = base.offset(page * 4096);
            let touch = vm.touch(t, black_box(addr), AccessKind::Read).unwrap();
            black_box(touch)
        })
    });
}

/// Shadow metadata access at FastTrack's 8-byte granularity.
fn bench_shadow_store(c: &mut Criterion) {
    let mut store: ShadowStore<u64> = ShadowStore::new(8);
    for i in 0..4096u64 {
        store.insert(Addr::new(0x10_0000 + i * 8), i);
    }
    let mut i = 0u64;
    c.bench_function("shadow_store/get_mut_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 4096;
            let v = store.get_mut(Addr::new(0x10_0000 + i * 8)).unwrap();
            *v = v.wrapping_add(1);
            black_box(*v)
        })
    });
    c.bench_function("shadow_store/get_or_default_new", |b| {
        let mut fresh: ShadowStore<u64> = ShadowStore::new(8);
        let mut k = 0u64;
        b.iter(|| {
            k += 8;
            black_box(*fresh.get_or_default(Addr::new(0x20_0000 + k)))
        })
    });
}

/// FastTrack's same-epoch fast path — the per-access cost every
/// fully-instrumented run pays.
fn bench_fasttrack_same_epoch(c: &mut Criterion) {
    let mut ft = FastTrack::new();
    let t = ThreadId::new(0);
    ft.write(t, Addr::new(0x1000));
    c.bench_function("fasttrack/write_same_epoch", |b| {
        b.iter(|| {
            ft.write(t, black_box(Addr::new(0x1000)));
        })
    });
    c.bench_function("fasttrack/read_same_epoch", |b| {
        b.iter(|| {
            ft.read(t, black_box(Addr::new(0x1000)));
        })
    });
}

/// End-to-end: a small Aikido-mode run (the number the `throughput` bin
/// tracks at larger scale).
fn bench_aikido_end_to_end(c: &mut Criterion) {
    let spec = WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.05);
    let workload = Workload::generate(&spec);
    let sim = Simulator::default();
    c.bench_function("end_to_end/aikido_blackscholes_0.05", |b| {
        b.iter(|| black_box(sim.run(&workload, Mode::Aikido).cycles))
    });
}

criterion_group!(
    hotpath,
    bench_vm_touch_hot,
    bench_shadow_store,
    bench_fasttrack_same_epoch,
    bench_aikido_end_to_end
);
criterion_main!(hotpath);

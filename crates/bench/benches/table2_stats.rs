//! Table 2 sweep as a Criterion benchmark: the statistics-gathering Aikido
//! run. The paper-style output comes from `--bin table2`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{Mode, Simulator, Workload, WorkloadSpec};

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for name in ["bodytrack", "x264"] {
        let spec = WorkloadSpec::parsec(name).unwrap().scaled(0.05);
        let workload = Workload::generate(&spec);
        group.bench_with_input(BenchmarkId::new("aikido-stats", name), &workload, |b, w| {
            b.iter(|| {
                let report = Simulator::default().run(w, Mode::Aikido);
                (report.counts.instrumented_accesses, report.counts.segfaults)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);

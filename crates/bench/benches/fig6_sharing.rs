//! Figure 6 sweep as a Criterion benchmark: cost of the Aikido sharing
//! detection pass per benchmark. The paper-style output comes from
//! `--bin fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{Mode, Simulator, Workload, WorkloadSpec};

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for name in ["freqmine", "canneal", "swaptions"] {
        let spec = WorkloadSpec::parsec(name).unwrap().scaled(0.05);
        let workload = Workload::generate(&spec);
        group.bench_with_input(BenchmarkId::new("aikido", name), &workload, |b, w| {
            b.iter(|| {
                Simulator::default()
                    .run(w, Mode::Aikido)
                    .counts
                    .shared_access_fraction()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);

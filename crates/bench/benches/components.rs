//! Component microbenchmarks: the building blocks of the Aikido stack.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aikido::dbi::{DbiEngine, Program, StaticInstr};
use aikido::fasttrack::FastTrack;
use aikido::shadow::{DualShadow, RegionKind, ShadowStore, TranslationCache};
use aikido::types::AddrMode;
use aikido::types::{AccessKind, Addr, BlockId, InstrId, LockId, Prot, ThreadId};
use aikido::vm::{AikidoVm, Hypercall, VmConfig};

fn bench_vector_clock_detector(c: &mut Criterion) {
    c.bench_function("fasttrack/same_epoch_write", |b| {
        let mut ft = FastTrack::new();
        let t = ThreadId::new(0);
        ft.write(t, Addr::new(0x1000));
        b.iter(|| ft.write(black_box(t), black_box(Addr::new(0x1000))));
    });
    c.bench_function("fasttrack/lock_handover", |b| {
        let mut ft = FastTrack::new();
        let l = LockId::new(1);
        let mut i = 0u32;
        b.iter(|| {
            let t = ThreadId::new(i % 4);
            ft.acquire(t, l);
            ft.write(t, Addr::new(0x2000));
            ft.release(t, l);
            i += 1;
        });
    });
}

fn bench_shadow(c: &mut Criterion) {
    c.bench_function("shadow/translation_cached", |b| {
        let mut shadow = DualShadow::new();
        shadow
            .register_region(Addr::new(0x10_0000), 64, RegionKind::Heap)
            .unwrap();
        let mut cache = TranslationCache::new();
        let region = shadow.region_of(Addr::new(0x10_0000)).unwrap().id;
        let instr = InstrId::new(BlockId::new(0), 0);
        b.iter(|| {
            let level = cache.access(ThreadId::new(0), instr, region);
            black_box(shadow.mirror_addr(Addr::new(0x10_0040)).unwrap());
            black_box(level)
        });
    });
    c.bench_function("shadow/store_update", |b| {
        let mut store: ShadowStore<u64> = ShadowStore::new(8);
        let mut i = 0u64;
        b.iter(|| {
            *store.get_or_default(Addr::new(0x1000 + (i % 512) * 8)) += 1;
            i += 1;
        });
    });
}

fn bench_vm(c: &mut Criterion) {
    c.bench_function("vm/unprotected_touch", |b| {
        let mut vm = AikidoVm::new(VmConfig::default());
        let t = ThreadId::new(0);
        vm.register_thread(t).unwrap();
        vm.mmap(Addr::new(0x40_0000), 16, Prot::RW_USER).unwrap();
        vm.touch(t, Addr::new(0x40_0000), AccessKind::Write)
            .unwrap();
        b.iter(|| {
            vm.touch(
                black_box(t),
                black_box(Addr::new(0x40_0100)),
                AccessKind::Read,
            )
            .unwrap()
        });
    });
    c.bench_function("vm/protect_fault_unprotect_cycle", |b| {
        let mut vm = AikidoVm::new(VmConfig::default());
        let t = ThreadId::new(0);
        vm.register_thread(t).unwrap();
        let base = Addr::new(0x50_0000);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t, base, AccessKind::Write).unwrap();
        b.iter(|| {
            vm.hypercall(Hypercall::ProtectRange {
                thread: t,
                base,
                pages: 1,
                prot: Prot::NONE,
            })
            .unwrap();
            let fault = vm.touch(t, base, AccessKind::Read).unwrap();
            vm.hypercall(Hypercall::UnprotectRange {
                thread: t,
                base,
                pages: 1,
            })
            .unwrap();
            black_box(fault)
        });
    });
}

fn bench_dbi(c: &mut Criterion) {
    c.bench_function("dbi/cached_block_execution", |b| {
        let mut program = Program::new();
        let block = program.add_block(vec![
            StaticInstr::Compute,
            StaticInstr::Mem {
                kind: AccessKind::Read,
                mode: AddrMode::Indirect,
            },
            StaticInstr::Mem {
                kind: AccessKind::Write,
                mode: AddrMode::Indirect,
            },
        ]);
        let mut engine = DbiEngine::new(program);
        engine.execute_block(block);
        b.iter(|| black_box(engine.execute_block(black_box(block))));
    });
    c.bench_function("dbi/flush_and_rejit", |b| {
        let mut program = Program::new();
        let block = program.add_block(vec![StaticInstr::Mem {
            kind: AccessKind::Write,
            mode: AddrMode::Indirect,
        }]);
        let instr = InstrId::new(block, 0);
        let mut engine = DbiEngine::new(program);
        b.iter(|| {
            engine.request_instrumentation(instr);
            black_box(engine.execute_block(block));
        });
    });
}

criterion_group!(
    benches,
    bench_vector_clock_detector,
    bench_shadow,
    bench_vm,
    bench_dbi
);
criterion_main!(benches);

//! Batched block kernels versus the scalar reference loop, per mode.
//!
//! The simulator's default execution path is the set of monomorphized
//! per-mode kernels that hoist mode dispatch, engine probes and cost-model
//! constants to block entry and process accesses in `(page, kind,
//! instrumented)` runs. The scalar loop (one dispatch + one engine probe per
//! access) is kept as the byte-identical reference; this bench quantifies
//! what the batching buys per mode.
//!
//! ```bash
//! cargo bench -p aikido-bench --bench block_kernels
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{Mode, Simulator, Workload, WorkloadSpec};

/// One low-sharing and one high-sharing benchmark bound the spectrum.
const BENCHMARKS: [&str; 2] = ["raytrace", "fluidanimate"];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_kernels");
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("preset exists")
            .scaled(0.01);
        let workload = Workload::generate(&spec);
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let batched = Simulator::default();
            let scalar = Simulator::default().with_batched_kernels(false);
            // The two paths must agree exactly — a bench that silently
            // compared different behaviours would be meaningless.
            assert_eq!(batched.run(&workload, mode), scalar.run(&workload, mode));
            group.bench_with_input(
                BenchmarkId::new(format!("batched/{}", mode.label()), name),
                &workload,
                |b, w| b.iter(|| black_box(batched.run(w, mode))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("scalar/{}", mode.label()), name),
                &workload,
                |b, w| b.iter(|| black_box(scalar.run(w, mode))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Microbenchmark of the per-access metadata probe: the packed shadow-word
//! slab plane versus the enum-based `ShadowStore`/`ChunkMap` store it
//! replaced, at access distributions shaped like the two ends of the
//! analysis-bound spectrum (raytrace: few hot pages, long same-page runs;
//! vips: many pages, short runs). This isolates the micro-level claim —
//! "the hot path reads one packed word from a slab resolved once per run" —
//! from end-to-end throughput, which mixes in everything else.
//!
//! ```bash
//! cargo bench -p aikido-bench --bench shadow_words
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use aikido::fasttrack::{Epoch, FastTrack, VarState};
use aikido::shadow::ShadowStore;
use aikido::types::{Addr, ShadowWord, SlabDirectory, ThreadId};

/// Deterministic xorshift so both probes see the identical access stream.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// An address stream over `pages` pages with runs of `run_len` consecutive
/// same-page accesses — raytrace probes ~48 hot pages in long runs, vips
/// sprays ~512 pages in short ones.
fn access_stream(pages: u64, run_len: usize, accesses: usize) -> Vec<u64> {
    let base = 0x40_0000u64;
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut out = Vec::with_capacity(accesses);
    while out.len() < accesses {
        let page = rng.next() % pages;
        for i in 0..run_len {
            let block_in_page = (rng.next().wrapping_add(i as u64 * 3)) % 512;
            out.push(base + page * 4096 + block_in_page * 8);
            if out.len() == accesses {
                break;
            }
        }
    }
    out
}

fn bench_distribution(c: &mut Criterion, label: &str, pages: u64, run_len: usize) {
    const ACCESSES: usize = 4096;
    let addrs = access_stream(pages, run_len, ACCESSES);
    let epoch = Epoch::new(3, ThreadId::new(1));
    let probe = ShadowWord::write_probe(ShadowWord::pack_field(3, 1).expect("packs"));

    // The retained reference representation: ChunkMap probe + enum compare.
    let mut store: ShadowStore<VarState> = ShadowStore::new(8);
    for &a in &addrs {
        store.get_or_default(Addr::new(a)).write = epoch;
    }
    c.bench_function(&format!("shadow_words/{label}/store_probe"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                let (_, state) = store.get_or_default_tracked(Addr::new(black_box(a)));
                hits += u64::from(state.write == epoch);
            }
            black_box(hits)
        })
    });

    // The packed plane, probed per access (the scalar delivery path).
    let mut dir = SlabDirectory::new();
    let word = ShadowWord::from_fields(
        ShadowWord::pack_field(3, 1).expect("packs"),
        ShadowWord::pack_field(3, 1).expect("packs"),
    );
    for &a in &addrs {
        dir.set(a >> 3, word);
    }
    c.bench_function(&format!("shadow_words/{label}/slab_probe"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &a in &addrs {
                let w = dir.get(black_box(a) >> 3);
                hits += u64::from(w.matches_write(probe));
            }
            black_box(hits)
        })
    });

    // The packed plane with the slab resolved once per same-page run (the
    // batched delivery path the block kernels drive).
    c.bench_function(&format!("shadow_words/{label}/slab_probe_per_run"), |b| {
        b.iter(|| {
            let mut hits = 0u64;
            let mut i = 0;
            while i < addrs.len() {
                let page = addrs[i] >> 12;
                let (chunk, _) = SlabDirectory::split(addrs[i] >> 3);
                let handle = dir.resolve(chunk);
                while i < addrs.len() && addrs[i] >> 12 == page {
                    let slot = SlabDirectory::split(addrs[i] >> 3).1;
                    let w = dir.word_at(handle, black_box(slot));
                    hits += u64::from(w.matches_write(probe));
                    i += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// Drives the full detector (public API, same binary) through a spill-heavy
/// read-shared distribution: every shared block is promoted to a read-shared
/// history, and a barrier between rounds advances every thread's epoch so
/// each round's first read per block misses the packed fast path and lands
/// in the spill slot. The two sides differ only in ONE thread index: the
/// `inline_lanes` set (0..=7) fits the slot's inline epoch lanes, while the
/// `boxed_clock` set swaps thread 7 for thread 8 — one past the lane budget
/// — forcing every history onto the boxed `VectorClock` fallback. Identical
/// thread count, read count and barrier cadence, so the delta is exactly the
/// inline-clock-vs-boxed-clock cost the PR 9 spill rebuild targets.
fn bench_spill_clocks(c: &mut Criterion) {
    const BLOCKS: u64 = 64;
    const ROUNDS: u32 = 8;
    let base = 0x40_0000u64;
    for (label, last_thread) in [("inline_lanes", 7u32), ("boxed_clock", 8u32)] {
        let threads: Vec<ThreadId> = (0..7u32)
            .chain(std::iter::once(last_thread))
            .map(ThreadId::new)
            .collect();
        c.bench_function(&format!("shadow_words/spill_read_shared/{label}"), |b| {
            b.iter(|| {
                let mut ft = FastTrack::new();
                for _ in 0..ROUNDS {
                    for t in &threads {
                        for blk in 0..BLOCKS {
                            ft.read_at(*t, Addr::new(base + blk * 8), None);
                        }
                    }
                    ft.barrier(&threads);
                }
                black_box(ft.spill_stats().spills)
            })
        });
    }
}

fn bench_shadow_words(c: &mut Criterion) {
    // raytrace-shaped: a small hot page set, long same-page runs.
    bench_distribution(c, "raytrace", 48, 24);
    // vips-shaped: a wide page set, short runs.
    bench_distribution(c, "vips", 512, 3);
    bench_spill_clocks(c);
}

criterion_group!(benches, bench_shadow_words);
criterion_main!(benches);

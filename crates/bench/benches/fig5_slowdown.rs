//! End-to-end Figure 5 sweep (small scale) as a Criterion benchmark: measures
//! the wall-clock cost of simulating each benchmark under the three modes.
//! The paper-style table itself is produced by `--bin fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aikido::{Mode, Simulator, Workload, WorkloadSpec};

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for name in ["blackscholes", "raytrace", "fluidanimate"] {
        let spec = WorkloadSpec::parsec(name).unwrap().scaled(0.05);
        let workload = Workload::generate(&spec);
        for (mode, label) in [
            (Mode::Native, "native"),
            (Mode::FullInstrumentation, "fasttrack"),
            (Mode::Aikido, "aikido-fasttrack"),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &workload, |b, w| {
                b.iter(|| Simulator::default().run(w, mode));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);

//! Hot-path throughput harness: simulated accesses per second, per mode.
//!
//! Unlike the paper-figure binaries (which report *simulated cycles*), this
//! harness measures the reproduction's own wall-clock performance — how many
//! simulated memory accesses the engine retires per second in each mode. It
//! is the trajectory every perf-focused PR is measured against.
//!
//! ```bash
//! AIKIDO_SCALE=0.05 cargo run --release -p aikido-bench --bin throughput
//! ```
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_throughput.json` (path overridable via `BENCH_OUT`) containing,
//! for every benchmark × mode pair: wall time, accesses/sec and the
//! deterministic run counts (`vm_exits`, `shadow_misses`, `races`) so CI can
//! detect both performance and behaviour drift.

use std::time::Instant;

use aikido::{Mode, Simulator, Workload, WorkloadSpec};
use aikido_bench::scale_from_env;
use serde::Serialize;

/// Benchmarks measured by the harness, spanning the paper's sharing spectrum
/// (Figure 6): raytrace (lowest sharing — the unshared fast path dominates,
/// the paper's best case), blackscholes (low), vips (medium) and
/// fluidanimate (highest — the analysis-bound worst case).
const BENCHMARKS: [&str; 4] = ["raytrace", "blackscholes", "vips", "fluidanimate"];

/// One measured benchmark × mode data point.
#[derive(Debug, Serialize)]
struct Sample {
    benchmark: String,
    mode: String,
    threads: u32,
    mem_accesses: u64,
    wall_nanos: u128,
    accesses_per_sec: f64,
    sim_cycles: u64,
    vm_exits: u64,
    shadow_misses: u64,
    races: usize,
}

/// The full JSON document written to `BENCH_throughput.json`.
#[derive(Debug, Serialize)]
struct Document {
    scale: f64,
    samples: Vec<Sample>,
    /// Accesses/sec geometric mean across benchmarks, per mode label.
    aikido_geomean: f64,
    full_geomean: f64,
    native_geomean: f64,
}

/// Timed repetitions per benchmark × mode; the fastest is reported (standard
/// practice for throughput numbers — the minimum is the least noisy estimate
/// of what the code can do).
const REPEATS: u32 = 3;

fn measure(workload: &Workload, mode: Mode) -> Sample {
    let sim = Simulator::default();
    // Warm-up run (untimed): page in the workload and the allocator.
    let baseline = sim.run(workload, mode);
    let mut best = None;
    for _ in 0..REPEATS {
        let start = Instant::now();
        let report = sim.run(workload, mode);
        let wall = start.elapsed();
        // Simulation is deterministic: every repeat must reproduce the same
        // counts, cycles and race reports.
        assert_eq!(report.counts, baseline.counts, "non-deterministic counts");
        assert_eq!(report.cycles, baseline.cycles, "non-deterministic cycles");
        assert_eq!(report.vm, baseline.vm, "non-deterministic VM stats");
        assert_eq!(
            report.races.len(),
            baseline.races.len(),
            "non-deterministic races"
        );
        if best.is_none_or(|b| wall < b) {
            best = Some(wall);
        }
    }
    let wall = best.expect("at least one repeat");
    let accesses = baseline.counts.mem_accesses;
    Sample {
        benchmark: workload.spec().name.clone(),
        mode: mode.label().to_string(),
        threads: workload.spec().threads,
        mem_accesses: accesses,
        wall_nanos: wall.as_nanos(),
        accesses_per_sec: accesses as f64 / wall.as_secs_f64().max(1e-9),
        sim_cycles: baseline.cycles,
        vm_exits: baseline.vm.vm_exits,
        shadow_misses: baseline.vm.shadow_misses,
        races: baseline.races.len(),
    }
}

fn main() {
    let scale = scale_from_env();
    let mut samples = Vec::new();
    println!("hot-path throughput (scale {scale}):");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>14} {:>9} {:>13}",
        "benchmark", "mode", "accesses", "wall_ms", "accesses/sec", "vm_exits", "shadow_misses"
    );
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("benchmark list contains only PARSEC presets")
            .scaled(scale);
        let workload = Workload::generate(&spec);
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let sample = measure(&workload, mode);
            println!(
                "{:<14} {:>8} {:>12} {:>12.2} {:>14.0} {:>9} {:>13}",
                sample.benchmark,
                sample.mode,
                sample.mem_accesses,
                sample.wall_nanos as f64 / 1e6,
                sample.accesses_per_sec,
                sample.vm_exits,
                sample.shadow_misses
            );
            samples.push(sample);
        }
    }

    let geomean = |label: &str| {
        let rates: Vec<f64> = samples
            .iter()
            .filter(|s| s.mode == label)
            .map(|s| s.accesses_per_sec)
            .collect();
        aikido_bench::geometric_mean(&rates)
    };
    let doc = Document {
        scale,
        aikido_geomean: geomean("aikido"),
        full_geomean: geomean("full"),
        native_geomean: geomean("native"),
        samples,
    };
    println!();
    println!(
        "geomean accesses/sec: native {:.0}  full {:.0}  aikido {:.0}",
        doc.native_geomean, doc.full_geomean, doc.aikido_geomean
    );

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let json = serde_json::to_string(&doc).expect("document serialises");
    std::fs::write(&out, json).expect("throughput JSON is writable");
    println!("wrote {out}");
}

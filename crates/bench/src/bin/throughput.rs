//! Hot-path throughput harness: simulated accesses per second, per mode.
//!
//! Unlike the paper-figure binaries (which report *simulated cycles*), this
//! harness measures the reproduction's own wall-clock performance — how many
//! simulated memory accesses the engine retires per second in each mode. It
//! is the trajectory every perf-focused PR is measured against.
//!
//! ```bash
//! AIKIDO_SCALE=0.05 cargo run --release -p aikido-bench --bin throughput
//! # Parallel epoch engine, per-worker-count samples:
//! AIKIDO_PARALLEL=4 cargo run --release -p aikido-bench --bin throughput
//! cargo run --release -p aikido-bench --bin throughput -- --parallel 4
//! ```
//!
//! Emits a human-readable table on stdout and a machine-readable
//! `BENCH_throughput.json` (path overridable via `BENCH_OUT`) containing,
//! for every benchmark × mode × worker-count triple: wall time, accesses/sec
//! and the deterministic run counts (`vm_exits`, `shadow_misses`, `races`)
//! so CI can detect both performance and behaviour drift. The top-level
//! geomeans are always computed from the sequential (1-worker) samples so
//! the perf-regression gate compares like with like across lanes; the
//! `per_worker_geomeans` array carries the parallel trajectory.
//!
//! In parallel mode every report is asserted equal to the sequential run's —
//! the wall-clock harness doubles as the cheapest equivalence oracle CI runs
//! on every push.
//!
//! Exit codes (see [`aikido_bench::exitcode`]): 0 on success, 3 when the
//! output document cannot be written (read-only checkout, bad `BENCH_OUT`),
//! 1 when `AIKIDO_REQUIRE_SCALING=1` is set and the parallel aikido geomean
//! fails to beat the sequential one on a multi-core machine (the sharded
//! analysis scaling gate; tolerance overridable via
//! `AIKIDO_SCALING_TOLERANCE`, skipped on single-core runners).

use std::time::Instant;

use aikido::staticcheck::CoverageStats;
use aikido::{
    Mode, RunReport, ShardOccupancy, SimConfig, Simulator, StaticReport, Workload, WorkloadSpec,
};
use aikido_bench::scale_from_env;
use serde::Serialize;

/// Benchmarks measured by the harness, spanning the paper's sharing spectrum
/// (Figure 6): raytrace (lowest sharing — the unshared fast path dominates,
/// the paper's best case), blackscholes (low), vips (medium) and
/// fluidanimate (highest — the analysis-bound worst case).
const BENCHMARKS: [&str; 4] = ["raytrace", "blackscholes", "vips", "fluidanimate"];

/// One measured benchmark × mode × worker-count data point.
#[derive(Debug, Serialize)]
struct Sample {
    benchmark: String,
    mode: String,
    threads: u32,
    /// Epoch-engine worker threads (1 = the sequential reference path).
    workers: usize,
    mem_accesses: u64,
    wall_nanos: u128,
    accesses_per_sec: f64,
    sim_cycles: u64,
    vm_exits: u64,
    shadow_misses: u64,
    races: usize,
    /// Sharded-analysis occupancy (PR 10): how many accesses each worker
    /// shard analysed locally and how many escalated to the commit thread.
    /// `None` on the sequential path and in native mode, where no plane
    /// runs.
    occupancy: Option<ShardOccupancy>,
}

/// Static pre-analysis coverage for one benchmark (PR 6): how much of the
/// program the escape + lockset verifier proved thread-private before the
/// first simulated instruction ran.
#[derive(Debug, Serialize)]
struct StaticCoverage {
    benchmark: String,
    coverage: CoverageStats,
}

/// Accesses/sec geometric means across benchmarks at one worker count.
#[derive(Debug, Serialize)]
struct WorkerGeomeans {
    workers: usize,
    native: f64,
    full: f64,
    aikido: f64,
}

/// The full JSON document written to `BENCH_throughput.json`.
#[derive(Debug, Serialize)]
struct Document {
    scale: f64,
    /// Machine fingerprint (`host=… cores=… scale=…`): absolute throughput
    /// is only comparable same-machine, same-scale, and `perfgate` warns
    /// loudly when the committed baseline's fingerprint differs.
    fingerprint: String,
    /// Timed repetitions per benchmark × mode (the fastest is reported).
    reps: u32,
    /// Highest worker count measured (1 when running sequential only).
    parallel_workers: usize,
    samples: Vec<Sample>,
    /// Per-benchmark static pre-analysis coverage (PR 6). Purely
    /// informational for the perf gate (which reads the document leniently),
    /// but tracked in the committed baseline so coverage regressions show up
    /// in review.
    static_coverage: Vec<StaticCoverage>,
    /// Accesses/sec geometric mean across benchmarks, per mode label,
    /// measured on the sequential path (stable input for the perf gate).
    aikido_geomean: f64,
    full_geomean: f64,
    native_geomean: f64,
    /// The same geomeans per measured worker count (parallel trajectory).
    per_worker_geomeans: Vec<WorkerGeomeans>,
}

/// Default timed repetitions per benchmark × mode; the fastest is reported
/// (standard practice for throughput numbers — the minimum is the least
/// noisy estimate of what the code can do). Override via
/// `AIKIDO_BENCH_REPS` (the CI lanes run a single rep to stay fast).
const DEFAULT_REPEATS: u32 = 3;

/// Timed repetitions per benchmark × mode, from `AIKIDO_BENCH_REPS`.
fn repeats() -> u32 {
    std::env::var("AIKIDO_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(DEFAULT_REPEATS)
}

fn measure(workload: &Workload, mode: Mode, workers: usize, reps: u32) -> (Sample, RunReport) {
    let sim = Simulator::default().with_workers(workers);
    // Warm-up run (untimed): page in the workload and the allocator. It
    // also captures the shard-occupancy record — identical on every
    // repeat, because routing is deterministic.
    let (baseline, occupancy) = sim
        .try_run_with_occupancy(workload, mode)
        .expect("simulation failed");
    let mut best = None;
    for _ in 0..reps {
        let start = Instant::now();
        let report = sim.run(workload, mode);
        let wall = start.elapsed();
        // Simulation is deterministic: every repeat must reproduce the same
        // counts, cycles and race reports.
        assert_eq!(report.counts, baseline.counts, "non-deterministic counts");
        assert_eq!(report.cycles, baseline.cycles, "non-deterministic cycles");
        assert_eq!(report.vm, baseline.vm, "non-deterministic VM stats");
        assert_eq!(
            report.races.len(),
            baseline.races.len(),
            "non-deterministic races"
        );
        if best.is_none_or(|b| wall < b) {
            best = Some(wall);
        }
    }
    let wall = best.expect("at least one repeat");
    let accesses = baseline.counts.mem_accesses;
    let sample = Sample {
        benchmark: workload.spec().name.clone(),
        mode: mode.label().to_string(),
        threads: workload.spec().threads,
        workers,
        mem_accesses: accesses,
        wall_nanos: wall.as_nanos(),
        accesses_per_sec: accesses as f64 / wall.as_secs_f64().max(1e-9),
        sim_cycles: baseline.cycles,
        vm_exits: baseline.vm.vm_exits,
        shadow_misses: baseline.vm.shadow_misses,
        races: baseline.races.len(),
        occupancy,
    };
    (sample, baseline)
}

/// Worker counts to measure: `--parallel N` (or `AIKIDO_PARALLEL=N`) adds a
/// parallel lane next to the sequential reference.
fn worker_counts() -> Vec<usize> {
    let mut parallel = SimConfig::from_env_overrides().workers;
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--parallel") {
        if let Some(n) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            parallel = n.max(1);
        }
    }
    if parallel > 1 {
        vec![1, parallel]
    } else {
        vec![1]
    }
}

fn main() {
    let scale = scale_from_env();
    let counts = worker_counts();
    let reps = repeats();
    let parallel_workers = *counts.last().expect("at least one worker count");
    let mut samples = Vec::new();
    let mut static_coverage = Vec::new();
    println!("hot-path throughput (scale {scale}, workers {counts:?}, reps {reps}):");
    println!(
        "{:<14} {:>8} {:>7} {:>12} {:>12} {:>14} {:>9} {:>13}",
        "benchmark",
        "mode",
        "workers",
        "accesses",
        "wall_ms",
        "accesses/sec",
        "vm_exits",
        "shadow_misses"
    );
    for name in BENCHMARKS {
        let spec = WorkloadSpec::parsec(name)
            .expect("benchmark list contains only PARSEC presets")
            .scaled(scale);
        let workload = Workload::generate(&spec);
        let coverage = StaticReport::for_workload(&workload).coverage;
        static_coverage.push(StaticCoverage {
            benchmark: name.to_string(),
            coverage,
        });
        for mode in [Mode::Native, Mode::FullInstrumentation, Mode::Aikido] {
            let mut sequential_report: Option<RunReport> = None;
            for &workers in &counts {
                let (sample, report) = measure(&workload, mode, workers, reps);
                match &sequential_report {
                    None => sequential_report = Some(report),
                    Some(reference) => assert_eq!(
                        &report, reference,
                        "parallel run diverged from the sequential reference \
                         ({name}, {mode:?}, {workers} workers)"
                    ),
                }
                println!(
                    "{:<14} {:>8} {:>7} {:>12} {:>12.2} {:>14.0} {:>9} {:>13}",
                    sample.benchmark,
                    sample.mode,
                    sample.workers,
                    sample.mem_accesses,
                    sample.wall_nanos as f64 / 1e6,
                    sample.accesses_per_sec,
                    sample.vm_exits,
                    sample.shadow_misses
                );
                samples.push(sample);
            }
        }
    }

    let geomean = |label: &str, workers: usize| {
        let rates: Vec<f64> = samples
            .iter()
            .filter(|s| s.mode == label && s.workers == workers)
            .map(|s| s.accesses_per_sec)
            .collect();
        aikido_bench::geometric_mean(&rates)
    };
    let per_worker_geomeans: Vec<WorkerGeomeans> = counts
        .iter()
        .map(|&workers| WorkerGeomeans {
            workers,
            native: geomean("native", workers),
            full: geomean("full", workers),
            aikido: geomean("aikido", workers),
        })
        .collect();
    let doc = Document {
        scale,
        fingerprint: aikido_bench::machine_fingerprint(scale),
        reps,
        parallel_workers,
        aikido_geomean: geomean("aikido", 1),
        full_geomean: geomean("full", 1),
        native_geomean: geomean("native", 1),
        per_worker_geomeans,
        static_coverage,
        samples,
    };
    println!();
    println!("static pre-analysis coverage (label-free escape + lockset proofs):");
    for sc in &doc.static_coverage {
        let c = &sc.coverage;
        println!(
            "{:<14} {:>4}/{:<4} work blocks proven private ({:>5.1}%)  \
             lock {:>3}  ro {:>3}  init {:>3}  may-share {:>3}  \
             mem instrs statically freed {}/{}",
            sc.benchmark,
            c.proven_private,
            c.work_blocks,
            100.0 * c.proven_private_fraction,
            c.lock_protected,
            c.read_only_shared,
            c.pre_fork_init,
            c.may_share,
            c.proven_private_mem_instrs,
            c.total_mem_instrs
        );
    }
    println!();
    for g in &doc.per_worker_geomeans {
        println!(
            "geomean accesses/sec ({} workers): native {:.0}  full {:.0}  aikido {:.0}",
            g.workers, g.native, g.full, g.aikido
        );
    }

    print_shard_balance(&doc);

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_throughput.json".to_string());
    let json = serde_json::to_string(&doc).expect("document serialises");
    // A read-only checkout or a bad BENCH_OUT must not panic the harness
    // after minutes of measurement: the table above already printed, so
    // report the failure and exit with the documented code.
    if let Err(err) = aikido_bench::write_report(&out, &json) {
        eprintln!("throughput: {err}");
        std::process::exit(aikido_bench::exitcode::WRITE_FAILED);
    }
    println!("wrote {out}");

    enforce_scaling_gate(&doc);
}

/// Prints the per-shard occupancy table for every sample the sharded
/// analysis plane ran under (parallel full/aikido lanes): how many accesses
/// each worker shard analysed locally, how many escalated to the commit
/// thread, and the resulting local fraction — the load-balance signal for
/// the first-touch page ownership policy.
fn print_shard_balance(doc: &Document) {
    let occupied: Vec<&Sample> = doc
        .samples
        .iter()
        .filter(|s| s.occupancy.is_some())
        .collect();
    if occupied.is_empty() {
        return;
    }
    println!();
    println!("shard balance (accesses analysed locally per worker shard):");
    println!(
        "{:<14} {:>8} {:>7} {:>12} {:>9} {:<}",
        "benchmark", "mode", "workers", "escalated", "local%", "per-shard"
    );
    for s in occupied {
        let occ = s.occupancy.as_ref().expect("filtered to Some above");
        let per_shard = occ
            .per_shard
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "{:<14} {:>8} {:>7} {:>12} {:>8.1} [{per_shard}]",
            s.benchmark,
            s.mode,
            s.workers,
            occ.escalated,
            100.0 * occ.local_fraction()
        );
    }
}

/// The parallel scaling gate (PR 10): with `AIKIDO_REQUIRE_SCALING=1` on a
/// multi-core machine, the parallel-lane aikido geomean must beat the
/// sequential one by more than `AIKIDO_SCALING_TOLERANCE` (a ratio, default
/// 1.0 — any speedup at all). On a single-core runner, or when no parallel
/// lane was measured, the gate prints a skip notice and passes: interleaved
/// workers cannot scale without cores to run on.
fn enforce_scaling_gate(doc: &Document) {
    if std::env::var("AIKIDO_REQUIRE_SCALING").map(|v| v == "1") != Ok(true) {
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        println!("scaling gate: skipped (single-core machine — no parallelism to gain)");
        return;
    }
    if doc.parallel_workers <= 1 {
        println!("scaling gate: skipped (no parallel lane measured; set AIKIDO_PARALLEL)");
        return;
    }
    let tolerance = std::env::var("AIKIDO_SCALING_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|t| t.is_finite() && *t > 0.0)
        .unwrap_or(1.0);
    let find = |workers: usize| {
        doc.per_worker_geomeans
            .iter()
            .find(|g| g.workers == workers)
    };
    let (Some(seq), Some(par)) = (find(1), find(doc.parallel_workers)) else {
        eprintln!("scaling gate: per_worker_geomeans missing a measured lane");
        std::process::exit(aikido_bench::exitcode::REGRESSION);
    };
    let ratio = par.aikido / seq.aikido;
    println!(
        "scaling gate: aikido geomean @{}w / @1w = {ratio:.3} (required > {tolerance:.3}, {cores} cores)",
        doc.parallel_workers
    );
    if ratio <= tolerance || !ratio.is_finite() {
        eprintln!(
            "scaling gate FAILED: sharded analysis at {} workers did not outscale the \
             sequential path ({:.0} vs {:.0} accesses/sec geomean) on a {cores}-core machine",
            doc.parallel_workers, par.aikido, seq.aikido
        );
        std::process::exit(aikido_bench::exitcode::REGRESSION);
    }
}

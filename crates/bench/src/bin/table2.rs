//! Table 2: instrumentation statistics recorded while running the
//! Aikido-FastTrack tool — memory-referencing instructions executed, dynamic
//! executions of instrumented instructions, shared-page accesses and
//! segmentation faults, plus the geometric-mean reduction in instrumentation.
//!
//! Run with `cargo run --release -p aikido-bench --bin table2`.

use aikido::{Mode, PARSEC_BENCHMARKS};
use aikido_bench::{geometric_mean, print_header, print_row, run_mode, scale_from_env};

fn main() {
    let scale = scale_from_env();
    println!("# Table 2 — instrumentation statistics (Aikido-FastTrack), scale {scale}");
    println!();
    let widths = [14usize, 16, 18, 16, 12];
    print_header(
        &[
            "benchmark",
            "mem instrs",
            "instrumented",
            "shared accesses",
            "segfaults",
        ],
        &widths,
    );

    let mut reductions = Vec::new();
    for name in PARSEC_BENCHMARKS {
        let report = run_mode(name, scale, Mode::Aikido);
        let c = report.counts;
        if c.instrumented_accesses > 0 {
            reductions.push(c.mem_accesses as f64 / c.instrumented_accesses as f64);
        }
        print_row(
            &[
                name.to_string(),
                c.mem_accesses.to_string(),
                c.instrumented_accesses.to_string(),
                c.shared_accesses.to_string(),
                c.segfaults.to_string(),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "Geometric-mean reduction in memory instructions needing instrumentation: {:.2}x (paper: 6.75x)",
        geometric_mean(&reductions)
    );
    println!(
        "Invariants to check: instrumented <= mem instrs, shared accesses <= instrumented, \
         segfaults orders of magnitude below accesses."
    );
}

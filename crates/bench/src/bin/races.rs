//! §5.3 "Detected Races": both the conventional FastTrack tool and the
//! Aikido-FastTrack tool should report the same races.
//!
//! The canneal preset seeds one racy address pair (modelling the benign
//! Mersenne-Twister RNG race the paper describes), and the `racy` scenario
//! workload seeds several more.
//!
//! Run with `cargo run --release -p aikido-bench --bin races`.

use std::collections::BTreeSet;

use aikido::{Mode, Simulator, Workload, WorkloadSpec};
use aikido_bench::scale_from_env;
use aikido_workloads::racy_workload;

fn race_blocks(report: &aikido::RunReport) -> BTreeSet<u64> {
    report.races.iter().map(|r| r.addr.raw() / 8).collect()
}

fn compare(name: &str, workload: &Workload) {
    let sim = Simulator::default();
    let full = sim.run(workload, Mode::FullInstrumentation);
    let aikido = sim.run(workload, Mode::Aikido);
    let full_blocks = race_blocks(&full);
    let aikido_blocks = race_blocks(&aikido);
    let common = full_blocks.intersection(&aikido_blocks).count();
    println!("## {name}");
    println!(
        "  FastTrack races (distinct 8-byte blocks): {}",
        full_blocks.len()
    );
    println!(
        "  Aikido-FastTrack races:                   {}",
        aikido_blocks.len()
    );
    println!("  Reported by both:                         {common}");
    let only_aikido: Vec<_> = aikido_blocks.difference(&full_blocks).collect();
    println!(
        "  Aikido-only reports (must be empty — Aikido adds no false positives): {}",
        only_aikido.len()
    );
    if let Some(example) = full.races.first() {
        println!("  example report: {example}");
    }
    println!();
}

fn main() {
    let scale = scale_from_env();
    println!("# §5.3 — races detected by both tools, scale {scale}");
    println!();

    let canneal = Workload::generate(&WorkloadSpec::parsec("canneal").unwrap().scaled(scale));
    compare("canneal (seeded RNG race)", &canneal);

    let racy = Workload::generate(&racy_workload(8));
    compare("racy scenario workload", &racy);

    println!(
        "Paper: both tools find the same races; most are benign (custom synchronisation or racy reads)."
    );
}

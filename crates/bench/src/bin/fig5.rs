//! Figure 5: performance of the FastTrack race detector with and without
//! Aikido, normalised to native execution (lower is better).
//!
//! Run with `cargo run --release -p aikido-bench --bin fig5`. Set
//! `AIKIDO_SCALE` to shrink or grow the workloads.

use aikido::PARSEC_BENCHMARKS;
use aikido_bench::{
    fmt_slowdown, geometric_mean, print_header, print_row, run_benchmark, scale_from_env,
};

fn main() {
    let scale = scale_from_env();
    println!("# Figure 5 — slowdown vs native (lower is better), scale {scale}");
    println!();
    let widths = [14usize, 12, 18, 10];
    print_header(
        &["benchmark", "FastTrack", "Aikido-FastTrack", "speedup"],
        &widths,
    );

    let mut full_slowdowns = Vec::new();
    let mut aikido_slowdowns = Vec::new();
    let mut speedups = Vec::new();
    for name in PARSEC_BENCHMARKS {
        let cmp = run_benchmark(name, scale);
        let full = cmp.full_slowdown();
        let aikido = cmp.aikido_slowdown();
        let speedup = cmp.aikido_speedup();
        full_slowdowns.push(full);
        aikido_slowdowns.push(aikido);
        speedups.push(speedup);
        print_row(
            &[
                name.to_string(),
                fmt_slowdown(full),
                fmt_slowdown(aikido),
                format!("{speedup:.2}x"),
            ],
            &widths,
        );
    }
    print_row(
        &[
            "geomean".to_string(),
            fmt_slowdown(geometric_mean(&full_slowdowns)),
            fmt_slowdown(geometric_mean(&aikido_slowdowns)),
            format!("{:.2}x", geometric_mean(&speedups)),
        ],
        &widths,
    );
    println!();
    println!(
        "Paper: Aikido speeds FastTrack up by 76% on average and up to 6.0x (raytrace); \
         slight loss on fluidanimate."
    );
    println!(
        "Here: average speedup {:.0}%, best {:.2}x.",
        (geometric_mean(&speedups) - 1.0) * 100.0,
        speedups.iter().cloned().fold(f64::MIN, f64::max)
    );
}

//! Figure 6: percentage of memory accesses that target shared pages, per
//! benchmark, as measured by the Aikido sharing detector.
//!
//! Run with `cargo run --release -p aikido-bench --bin fig6`.

use aikido::{Mode, PARSEC_BENCHMARKS};
use aikido_bench::{fmt_percent, print_header, print_row, run_mode, scale_from_env};

/// The values read off the paper's Figure 6 / derived from Table 2, for
/// side-by-side comparison (fraction of accesses to shared pages).
const PAPER_SHARED_FRACTION: [(&str, f64); 10] = [
    ("freqmine", 0.557),
    ("blackscholes", 0.069),
    ("bodytrack", 0.200),
    ("raytrace", 0.0011),
    ("swaptions", 0.119),
    ("fluidanimate", 0.481),
    ("vips", 0.222),
    ("x264", 0.293),
    ("canneal", 0.122),
    ("streamcluster", 0.371),
];

fn main() {
    let scale = scale_from_env();
    println!("# Figure 6 — accesses targeting shared pages, scale {scale}");
    println!();
    let widths = [14usize, 12, 12];
    print_header(&["benchmark", "measured", "paper"], &widths);
    for name in PARSEC_BENCHMARKS {
        let report = run_mode(name, scale, Mode::Aikido);
        let measured = report.counts.shared_access_fraction();
        let paper = PAPER_SHARED_FRACTION
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        print_row(
            &[name.to_string(), fmt_percent(measured), fmt_percent(paper)],
            &widths,
        );
    }
    println!();
    println!(
        "Paper: raytrace shares almost nothing (0.11%); fluidanimate and freqmine share the most."
    );
}

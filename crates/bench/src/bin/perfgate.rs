//! CI perf-regression gate: compares a freshly measured
//! `BENCH_throughput.json` against the committed `BENCH_baseline.json` and
//! fails (exit code 1) when the geomean throughput regresses by more than
//! the tolerance (25 % by default).
//!
//! ```bash
//! cargo run --release -p aikido-bench --bin perfgate
//! cargo run --release -p aikido-bench --bin perfgate -- fresh.json baseline.json
//! PERFGATE_TOLERANCE=0.4 cargo run --release -p aikido-bench --bin perfgate
//! ```
//!
//! Two quantities are gated. The headline is the geometric mean of the
//! three per-mode accesses/sec geomeans (native, full, aikido) measured on
//! the sequential path — one number that moves only when the engine itself
//! gets slower. On top of that, every individual **aikido-mode benchmark**
//! is gated at the same tolerance: the geomean across eight benchmarks can
//! absorb one benchmark losing a third of its throughput (exactly how the
//! PR 9 spill-plane work could regress a spill-heavy benchmark while the
//! average still passes), so a single aikido sample below `1 - tolerance`
//! fails the gate even when the geomean is fine. For diagnosis the gate
//! prints a benchmark × mode table of baseline versus fresh accesses/sec
//! (so a localized regression is visible without downloading artifacts) —
//! each full/aikido row carrying the same benchmark's **native-mode ratio
//! as a control** (native runs no instrumentation, so a delta that merely
//! tracks its control is machine noise, not an engine regression),
//! names every offender when it fails, and — when running under GitHub
//! Actions — appends the same table as markdown to `$GITHUB_STEP_SUMMARY`.
//! A missing baseline passes with a warning (first run on a fork, or a
//! fresh perf machine); the CI workflow refreshes the committed baseline
//! artifact on `main`.
//!
//! Exit codes (see [`aikido_bench::exitcode`]):
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | gate passed (including the missing-baseline warning path) |
//! | 1    | throughput regressed beyond the tolerance — overall geomean, or any single aikido-mode benchmark |
//! | 2    | the fresh throughput document is missing, unreadable or lacks the gated geomeans |
//! | 4    | the baseline **exists but is corrupt** — unreadable, unparsable, or missing the gated geomeans. A rotten committed artifact must not silently disable the gate, so it fails distinctly instead of passing like a missing baseline. |

use std::fmt::Write as _;

use aikido_bench::geometric_mean;
use serde_json::Value;

/// Relative regression the gate tolerates before failing (CI machines are
/// shared and noisy; the gate is meant to catch engine regressions, not
/// scheduler jitter). Override via `PERFGATE_TOLERANCE`.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// The modes the throughput bin measures, in report order.
const MODES: [&str; 3] = ["native", "full", "aikido"];

/// The three per-mode geomeans read from one throughput document.
struct ModeGeomeans {
    native: f64,
    full: f64,
    aikido: f64,
}

impl ModeGeomeans {
    fn from_document(doc: &Value) -> Option<Self> {
        let field = |key: &str| doc.get(key)?.as_f64().filter(|v| *v > 0.0);
        Some(ModeGeomeans {
            native: field("native_geomean")?,
            full: field("full_geomean")?,
            aikido: field("aikido_geomean")?,
        })
    }

    /// The single gated number: geomean across the three modes.
    fn overall(&self) -> f64 {
        geometric_mean(&[self.native, self.full, self.aikido])
    }
}

/// One `benchmark × mode` data point present in both documents.
struct SampleDelta {
    benchmark: String,
    mode: String,
    baseline: f64,
    fresh: f64,
}

impl SampleDelta {
    fn ratio(&self) -> f64 {
        self.fresh / self.baseline
    }
}

/// Extracts the sequential (1-worker) accesses/sec per `(benchmark, mode)`.
fn sequential_rates(doc: &Value) -> Vec<(String, String, f64)> {
    let mut rates = Vec::new();
    let Some(samples) = doc.get("samples").and_then(Value::as_array) else {
        return rates;
    };
    for sample in samples {
        let workers = sample.get("workers").and_then(Value::as_f64).unwrap_or(1.0);
        if workers != 1.0 {
            continue;
        }
        let (Some(benchmark), Some(mode), Some(rate)) = (
            sample.get("benchmark").and_then(Value::as_str),
            sample.get("mode").and_then(Value::as_str),
            sample.get("accesses_per_sec").and_then(Value::as_f64),
        ) else {
            continue;
        };
        if rate > 0.0 {
            rates.push((benchmark.to_string(), mode.to_string(), rate));
        }
    }
    rates
}

/// Joins the two documents' per-benchmark samples, in fresh-document order.
fn sample_deltas(fresh: &Value, baseline: &Value) -> Vec<SampleDelta> {
    let base = sequential_rates(baseline);
    sequential_rates(fresh)
        .into_iter()
        .filter_map(|(benchmark, mode, rate)| {
            let baseline = base
                .iter()
                .find(|(b, m, _)| *b == benchmark && *m == mode)?
                .2;
            Some(SampleDelta {
                benchmark,
                mode,
                baseline,
                fresh: rate,
            })
        })
        .collect()
}

/// The aikido-mode samples whose own ratio regresses past the tolerance.
/// Gated individually: the overall geomean averages across benchmarks, so
/// it can absorb one spill-heavy benchmark cratering while the rest hold.
fn aikido_offenders(deltas: &[SampleDelta], tolerance: f64) -> Vec<&SampleDelta> {
    deltas
        .iter()
        .filter(|d| d.mode == "aikido" && d.ratio() < 1.0 - tolerance)
        .collect()
}

/// The same benchmark's native-mode ratio — the control for an aikido/full
/// delta. Native runs no instrumentation, so its ratio moves only with the
/// machine: an aikido regression whose native control moved just as much is
/// scheduler noise, while one whose control held at ~1.0 is the engine.
fn native_control(deltas: &[SampleDelta], benchmark: &str) -> Option<f64> {
    deltas
        .iter()
        .find(|d| d.benchmark == benchmark && d.mode == "native")
        .map(SampleDelta::ratio)
}

/// Renders the native control ratio for a table cell; native rows are their
/// own control, so they show a dash.
fn control_cell(deltas: &[SampleDelta], d: &SampleDelta) -> String {
    if d.mode == "native" {
        return "-".to_string();
    }
    match native_control(deltas, &d.benchmark) {
        Some(ctl) => format!("{ctl:.3}"),
        None => "n/a".to_string(),
    }
}

/// Renders the benchmark × mode comparison as an aligned text table.
fn print_delta_table(deltas: &[SampleDelta]) {
    if deltas.is_empty() {
        println!("perfgate: no per-benchmark samples to compare");
        return;
    }
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>8} {:>10}",
        "benchmark", "mode", "baseline", "fresh", "ratio", "native-ctl"
    );
    for mode in MODES {
        for d in deltas.iter().filter(|d| d.mode == mode) {
            println!(
                "{:<14} {:>8} {:>14.0} {:>14.0} {:>8.3} {:>10}",
                d.benchmark,
                d.mode,
                d.baseline,
                d.fresh,
                d.ratio(),
                control_cell(deltas, d)
            );
        }
    }
}

/// The same comparison as a markdown table for `$GITHUB_STEP_SUMMARY`.
fn markdown_summary(
    deltas: &[SampleDelta],
    offenders: &[&SampleDelta],
    fresh: &ModeGeomeans,
    baseline: &ModeGeomeans,
    ratio: f64,
    tolerance: f64,
    passed: bool,
) -> String {
    let mut md = String::new();
    let _ = writeln!(md, "## Perf gate: {}", if passed { "OK" } else { "FAIL" });
    let _ = writeln!(
        md,
        "\nOverall geomean ratio **{ratio:.3}** (fails below {:.3}); every \
         aikido-mode benchmark is also gated individually at the same \
         threshold.\n",
        1.0 - tolerance
    );
    if !offenders.is_empty() {
        let _ = writeln!(
            md,
            "**Per-benchmark aikido regressions** (each alone fails the gate):\n"
        );
        for d in offenders {
            let _ = writeln!(
                md,
                "- `{}` at ratio **{:.3}** ({:.0} → {:.0} accesses/sec)",
                d.benchmark,
                d.ratio(),
                d.baseline,
                d.fresh
            );
        }
        let _ = writeln!(md);
    }
    let _ = writeln!(md, "| mode | baseline | fresh | ratio |");
    let _ = writeln!(md, "|---|---:|---:|---:|");
    for (label, base, now) in [
        ("native", baseline.native, fresh.native),
        ("full", baseline.full, fresh.full),
        ("aikido", baseline.aikido, fresh.aikido),
    ] {
        let _ = writeln!(
            md,
            "| **{label} geomean** | {base:.0} | {now:.0} | {:.3} |",
            now / base
        );
    }
    if !deltas.is_empty() {
        let _ = writeln!(
            md,
            "\n| benchmark | mode | baseline | fresh | ratio | native ctl |"
        );
        let _ = writeln!(md, "|---|---|---:|---:|---:|---:|");
        for mode in MODES {
            for d in deltas.iter().filter(|d| d.mode == mode) {
                let _ = writeln!(
                    md,
                    "| {} | {} | {:.0} | {:.0} | {:.3} | {} |",
                    d.benchmark,
                    d.mode,
                    d.baseline,
                    d.fresh,
                    d.ratio(),
                    control_cell(deltas, d)
                );
            }
        }
        let _ = writeln!(
            md,
            "\n*native ctl* is the same benchmark's native-mode ratio — an \
             instrumentation-free control: a delta that tracks its control is \
             machine noise, one that diverges from it is the engine."
        );
    }
    md
}

/// Appends the markdown table to `$GITHUB_STEP_SUMMARY` when present (the CI
/// perfgate lane), so regressions are readable from the workflow run page.
fn write_step_summary(markdown: &str) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    use std::io::Write as _;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(markdown.as_bytes()));
    if let Err(err) = appended {
        eprintln!("perfgate: cannot write step summary at {path}: {err}");
    }
}

/// Prints a loud warning when the two documents were measured on different
/// machines or at different scales (or the baseline predates fingerprints).
/// The gate still runs — its 25 % tolerance absorbs some machine variance —
/// but cross-machine ratios are not trustworthy perf evidence, and the
/// honest comparison is an interleaved same-machine A/B (see ROADMAP.md).
/// Returns the warning text for the step summary, if any.
fn fingerprint_warning(fresh: &Value, baseline: &Value) -> Option<String> {
    let field = |doc: &Value| {
        doc.get("fingerprint")
            .and_then(Value::as_str)
            .map(str::to_string)
    };
    let fresh_fp = field(fresh);
    let baseline_fp = field(baseline);
    let warning = match (&fresh_fp, &baseline_fp) {
        (Some(f), Some(b)) if f == b => return None,
        (Some(f), Some(b)) => format!(
            "perfgate: WARNING — baseline fingerprint differs from this \
             machine:\n  baseline: {b}\n  fresh:    {f}\n  Cross-machine \
             ratios are noise, not evidence; refresh the baseline on this \
             machine or compare interleaved runs."
        ),
        (_, None) => "perfgate: WARNING — the committed baseline carries no \
                      machine fingerprint (recorded before PR 5); ratios may \
                      mix machines. Refresh the baseline to silence this."
            .to_string(),
        (None, _) => "perfgate: WARNING — the fresh document carries no \
                      machine fingerprint."
            .to_string(),
    };
    eprintln!("{warning}");
    Some(warning)
}

fn tolerance() -> f64 {
    std::env::var("PERFGATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v < 1.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fresh_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_throughput.json");
    let baseline_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BENCH_baseline.json");
    let tolerance = tolerance();

    let fresh_doc = match aikido_bench::read_json_document(fresh_path) {
        Ok(Some(doc)) => doc,
        Ok(None) => {
            eprintln!(
                "perfgate: no fresh results at {fresh_path} — run the \
                 throughput bin first"
            );
            std::process::exit(aikido_bench::exitcode::FRESH_UNREADABLE);
        }
        Err(reason) => {
            eprintln!("perfgate: cannot read fresh results: {reason}");
            std::process::exit(aikido_bench::exitcode::FRESH_UNREADABLE);
        }
    };
    let Some(fresh) = ModeGeomeans::from_document(&fresh_doc) else {
        eprintln!("perfgate: {fresh_path} is missing the per-mode geomeans");
        std::process::exit(aikido_bench::exitcode::FRESH_UNREADABLE);
    };

    // Baseline states diverge on purpose: *missing* means the gate has
    // nothing to compare against yet (first run on a fork or a fresh perf
    // machine) and passes with a warning, while *corrupt* means the
    // committed artifact rotted — passing would silently disable the gate,
    // so it fails with its own exit code.
    let baseline_doc = match aikido_bench::read_json_document(baseline_path) {
        Ok(Some(doc)) => doc,
        Ok(None) => {
            println!(
                "perfgate: no baseline at {baseline_path} — passing (run the \
                 throughput bin and commit its output to enable the gate)"
            );
            return;
        }
        Err(reason) => {
            eprintln!(
                "perfgate: baseline is corrupt: {reason} — regenerate it \
                 with the throughput bin and re-commit"
            );
            std::process::exit(aikido_bench::exitcode::BASELINE_CORRUPT);
        }
    };
    let Some(baseline) = ModeGeomeans::from_document(&baseline_doc) else {
        eprintln!(
            "perfgate: baseline at {baseline_path} parses but is missing the \
             per-mode geomeans — regenerate it with the throughput bin and \
             re-commit"
        );
        std::process::exit(aikido_bench::exitcode::BASELINE_CORRUPT);
    };

    println!("perfgate: fresh {fresh_path} vs baseline {baseline_path}");
    let fingerprint_note = fingerprint_warning(&fresh_doc, &baseline_doc);
    let deltas = sample_deltas(&fresh_doc, &baseline_doc);
    print_delta_table(&deltas);
    println!("{:<14} {:>8} {:>14} {:>14} {:>8}", "", "", "", "", "");
    for (label, base, now) in [
        ("native", baseline.native, fresh.native),
        ("full", baseline.full, fresh.full),
        ("aikido", baseline.aikido, fresh.aikido),
    ] {
        println!(
            "{:<14} {:>8} {base:>14.0} {now:>14.0} {:>8.3}",
            "geomean",
            label,
            now / base
        );
    }

    let ratio = fresh.overall() / baseline.overall();
    let regression = 1.0 - ratio;
    let offenders = aikido_offenders(&deltas, tolerance);
    let geomean_passed = regression <= tolerance;
    let passed = geomean_passed && offenders.is_empty();
    println!(
        "overall geomean ratio {ratio:.3} (tolerance: up to {:.0}% regression, \
         overall and per aikido benchmark)",
        tolerance * 100.0
    );
    let mut summary = markdown_summary(
        &deltas, &offenders, &fresh, &baseline, ratio, tolerance, passed,
    );
    if let Some(note) = &fingerprint_note {
        summary.push_str("\n> ");
        summary.push_str(&note.replace('\n', "\n> "));
        summary.push('\n');
    }
    write_step_summary(&summary);
    if !passed {
        for d in &offenders {
            eprintln!(
                "perfgate: aikido benchmark regressed: {} at ratio {:.3} \
                 ({:.0} -> {:.0} accesses/sec)",
                d.benchmark,
                d.ratio(),
                d.baseline,
                d.fresh
            );
        }
        if !geomean_passed {
            let worst = deltas.iter().min_by(|a, b| a.ratio().total_cmp(&b.ratio()));
            if let Some(worst) = worst {
                eprintln!(
                    "perfgate: worst offender: {} ({} mode) at ratio {:.3} \
                     ({:.0} -> {:.0} accesses/sec)",
                    worst.benchmark,
                    worst.mode,
                    worst.ratio(),
                    worst.baseline,
                    worst.fresh
                );
            }
            eprintln!(
                "perfgate: FAIL — throughput regressed {:.1}% (> {:.0}%)",
                regression * 100.0,
                tolerance * 100.0
            );
        } else {
            eprintln!(
                "perfgate: FAIL — {} aikido benchmark(s) regressed more than \
                 {:.0}% while the geomean passed",
                offenders.len(),
                tolerance * 100.0
            );
        }
        std::process::exit(aikido_bench::exitcode::REGRESSION);
    }
    println!("perfgate: OK");
}

//! CI perf-regression gate: compares a freshly measured
//! `BENCH_throughput.json` against the committed `BENCH_baseline.json` and
//! fails (exit code 1) when the geomean throughput regresses by more than
//! the tolerance (25 % by default).
//!
//! ```bash
//! cargo run --release -p aikido-bench --bin perfgate
//! cargo run --release -p aikido-bench --bin perfgate -- fresh.json baseline.json
//! PERFGATE_TOLERANCE=0.4 cargo run --release -p aikido-bench --bin perfgate
//! ```
//!
//! The gated quantity is the geometric mean of the three per-mode
//! accesses/sec geomeans (native, full, aikido) measured on the sequential
//! path — one number that moves only when the engine itself gets slower.
//! Per-mode ratios are printed for diagnosis either way. A missing baseline
//! passes with a warning (first run on a fork, or a fresh perf machine);
//! the CI workflow refreshes the committed baseline artifact on `main`.

use aikido_bench::geometric_mean;
use serde_json::Value;

/// Relative regression the gate tolerates before failing (CI machines are
/// shared and noisy; the gate is meant to catch engine regressions, not
/// scheduler jitter). Override via `PERFGATE_TOLERANCE`.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// The three per-mode geomeans read from one throughput document.
struct ModeGeomeans {
    native: f64,
    full: f64,
    aikido: f64,
}

impl ModeGeomeans {
    fn from_document(doc: &Value) -> Option<Self> {
        let field = |key: &str| doc.get(key)?.as_f64().filter(|v| *v > 0.0);
        Some(ModeGeomeans {
            native: field("native_geomean")?,
            full: field("full_geomean")?,
            aikido: field("aikido_geomean")?,
        })
    }

    /// The single gated number: geomean across the three modes.
    fn overall(&self) -> f64 {
        geometric_mean(&[self.native, self.full, self.aikido])
    }
}

fn load(path: &str) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn tolerance() -> f64 {
    std::env::var("PERFGATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v < 1.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fresh_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_throughput.json");
    let baseline_path = args
        .get(2)
        .map(String::as_str)
        .unwrap_or("BENCH_baseline.json");
    let tolerance = tolerance();

    let Some(fresh_doc) = load(fresh_path) else {
        eprintln!("perfgate: cannot read fresh results at {fresh_path}");
        std::process::exit(2);
    };
    let Some(fresh) = ModeGeomeans::from_document(&fresh_doc) else {
        eprintln!("perfgate: {fresh_path} is missing the per-mode geomeans");
        std::process::exit(2);
    };

    let baseline = load(baseline_path).and_then(|doc| ModeGeomeans::from_document(&doc));
    let Some(baseline) = baseline else {
        println!(
            "perfgate: no baseline at {baseline_path} — passing (run the \
             throughput bin and commit its output to enable the gate)"
        );
        return;
    };

    println!("perfgate: fresh {fresh_path} vs baseline {baseline_path}");
    println!(
        "{:<8} {:>14} {:>14} {:>8}",
        "mode", "baseline", "fresh", "ratio"
    );
    for (label, base, now) in [
        ("native", baseline.native, fresh.native),
        ("full", baseline.full, fresh.full),
        ("aikido", baseline.aikido, fresh.aikido),
    ] {
        println!("{label:<8} {base:>14.0} {now:>14.0} {:>8.3}", now / base);
    }

    let ratio = fresh.overall() / baseline.overall();
    let regression = 1.0 - ratio;
    println!(
        "overall geomean ratio {ratio:.3} (tolerance: up to {:.0}% regression)",
        tolerance * 100.0
    );
    if regression > tolerance {
        eprintln!(
            "perfgate: FAIL — throughput regressed {:.1}% (> {:.0}%)",
            regression * 100.0,
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!("perfgate: OK");
}

//! Multi-tenant service load generator and equivalence oracle.
//!
//! Drives a mixed-tenant batch of scaled-down runs through the
//! [`SimService`] — many tenants, benchmarks, modes and worker counts at
//! once — and then proves, request by request, that the serving layer added
//! *nothing* to the simulation: every delivered report must be
//! byte-identical to a direct `Simulator::from_config` run of the same
//! request, placement must be deterministic for the fixed request sequence,
//! and an over-quota tenant must be refused with a structured error (never a
//! panic or hang).
//!
//! ```bash
//! AIKIDO_SCALE=0.05 cargo run --release -p aikido-bench --bin loadgen
//! LOADGEN_RUNS=512 LOADGEN_SHARDS=8 cargo run --release -p aikido-bench --bin loadgen
//! ```
//!
//! Writes three documents (paths overridable via `LOADGEN_OUT` prefix):
//!
//! * `FLEET_report.json` — the full
//!   [`FleetReport`](aikido_serve::FleetReport);
//! * `FLEET_runs.json` — just the delivered per-run reports, in run order;
//! * `FLEET_direct.json` — the same runs executed directly, bypassing the
//!   service. CI `cmp`s the last two byte-for-byte.
//!
//! Exit codes: 0 on success, 5 (`SERVICE_MISMATCH`) when any delivered
//! report diverges from its direct run or a fleet invariant breaks, 3 when
//! an output document cannot be written.

use aikido::{Mode, SimConfig, Simulator, Workload, WorkloadSpec};
use aikido_bench::{exitcode, scale_from_env};
use aikido_serve::{AdmitError, RunRequest, ServiceConfig, SimService, TenantBudget};

/// Cheap presets the generator cycles through (small access counts, spread
/// across the paper's sharing spectrum).
const BENCHMARKS: [&str; 4] = ["blackscholes", "swaptions", "canneal", "bodytrack"];

/// Paying tenants plus one deliberately under-provisioned tenant whose
/// requests must be refused with a structured quota error.
const TENANTS: [&str; 4] = ["acme", "globex", "initech", "hooli"];
const BROKE_TENANT: &str = "umbrella";

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

/// The fixed request sequence: `runs` requests cycling tenants × benchmarks
/// × modes × worker counts, plus one over-quota request from the broke
/// tenant every 32 requests.
fn request_sequence(runs: usize, scale: f64) -> Vec<RunRequest> {
    let modes = [Mode::Native, Mode::FullInstrumentation, Mode::Aikido];
    let mut requests = Vec::with_capacity(runs + runs / 32 + 1);
    for i in 0..runs {
        let tenant = TENANTS[i % TENANTS.len()];
        let preset = BENCHMARKS[(i / TENANTS.len()) % BENCHMARKS.len()];
        let mode = modes[i % modes.len()];
        let config = SimConfig::default()
            .with_scale(scale)
            .with_workers(1 + (i / 7) % 2);
        let spec = WorkloadSpec::parsec(preset).expect("known preset");
        requests.push(RunRequest::new(tenant, spec, mode).with_config(config));
        if i % 32 == 0 {
            let spec = WorkloadSpec::parsec("blackscholes").expect("known preset");
            requests.push(
                RunRequest::new(BROKE_TENANT, spec, Mode::Native)
                    .with_config(SimConfig::default().with_scale(scale)),
            );
        }
    }
    requests
}

fn service(shards: usize, runs: usize) -> SimService {
    let config = ServiceConfig {
        shards,
        fleet_workers: env_usize("LOADGEN_WORKERS", 4),
        queue_capacity: runs * 2,
        shard_capacity: (runs / shards).max(1),
        default_budget: TenantBudget::default()
            .with_max_queued(runs)
            .with_max_in_flight(runs),
    };
    let mut service = SimService::new(config).expect("static service config is valid");
    service.set_budget(BROKE_TENANT, TenantBudget::default().with_access_quota(0));
    service
}

fn fail(reason: &str) -> ! {
    eprintln!("loadgen: SERVICE MISMATCH: {reason}");
    std::process::exit(exitcode::SERVICE_MISMATCH);
}

fn main() {
    let scale = scale_from_env();
    let runs = env_usize("LOADGEN_RUNS", 256);
    let shards = env_usize("LOADGEN_SHARDS", 6);
    let requests = request_sequence(runs, scale);
    println!(
        "loadgen: {} requests ({} expected admissions) from {} tenants over {} shards, scale {}",
        requests.len(),
        runs,
        TENANTS.len() + 1,
        shards,
        scale
    );

    // Submit the fixed sequence. Paying tenants must all be admitted; the
    // broke tenant must be refused with the structured quota error.
    let mut svc = service(shards, runs);
    let mut tickets = Vec::new();
    let mut quota_rejections = 0u64;
    for request in &requests {
        match svc.submit(request.clone()) {
            Ok(ticket) => tickets.push(ticket),
            Err(AdmitError::QuotaExhausted { tenant, .. }) if tenant == BROKE_TENANT => {
                quota_rejections += 1;
            }
            Err(err) => fail(&format!("unexpected rejection ({}): {err}", err.kind())),
        }
    }
    if tickets.len() != runs {
        fail(&format!(
            "admitted {} of {runs} paying requests",
            tickets.len()
        ));
    }
    if quota_rejections == 0 {
        fail("the zero-quota tenant was never refused");
    }

    // Placement determinism: a second control plane fed the same sequence
    // must issue identical tickets.
    let mut replay = service(shards, runs);
    let mut replayed = Vec::new();
    for request in &requests {
        if let Ok(ticket) = replay.submit(request.clone()) {
            replayed.push(ticket);
        }
    }
    if replayed != tickets {
        fail("shard placement is not deterministic for a fixed request sequence");
    }

    // Execute on the fleet.
    let started = std::time::Instant::now();
    let report = svc.drain();
    let wall = started.elapsed();
    println!(
        "loadgen: drained {} runs in {:.2}s ({} rejections logged)",
        report.runs.len(),
        wall.as_secs_f64(),
        report.queue.rejected
    );

    // Fleet invariants.
    if report.runs.len() != runs {
        fail(&format!(
            "{} outcomes for {runs} admissions",
            report.runs.len()
        ));
    }
    if let Some(failure) = report.failures().next() {
        fail(&format!(
            "run {} ({}) failed: {}",
            failure.run_id,
            failure.workload,
            failure.error.as_deref().unwrap_or("?")
        ));
    }
    for shard in &report.shards {
        if shard.assigned == 0 {
            fail(&format!("shard {} was never assigned a run", shard.shard));
        }
        if shard.pending != 0 {
            fail(&format!("shard {} still has pending runs", shard.shard));
        }
    }
    let admitted_tenants = report.tenants.iter().filter(|t| t.admitted > 0).count();
    if admitted_tenants < 4 {
        fail(&format!("only {admitted_tenants} tenants were admitted"));
    }
    if !report
        .rejections
        .iter()
        .all(|r| r.tenant == BROKE_TENANT && r.kind == "quota_exhausted")
    {
        fail("unexpected rejection records");
    }

    // The oracle: rerun every request directly (same spec, same config, no
    // service in the way) and require byte-identical reports.
    let mut delivered_json = String::from("[");
    let mut direct_json = String::from("[");
    let paying_requests: Vec<&RunRequest> = requests
        .iter()
        .filter(|r| r.tenant != BROKE_TENANT)
        .collect();
    if paying_requests.len() != report.runs.len() {
        fail("outcome count does not match the paying request sequence");
    }
    for (i, (outcome, request)) in report.runs.iter().zip(&paying_requests).enumerate() {
        let delivered = match &outcome.report {
            Some(report) => report,
            None => fail(&format!("run {} delivered no report", outcome.run_id)),
        };
        let direct = Simulator::from_config(request.config.clone())
            .expect("admission validated the config")
            .try_run(&Workload::generate(&request.effective_spec()), request.mode)
            .unwrap_or_else(|err| fail(&format!("direct run {i} failed: {err}")));
        let delivered_s = serde_json::to_string(delivered).expect("report serialises");
        let direct_s = serde_json::to_string(&direct).expect("report serialises");
        if delivered_s != direct_s {
            fail(&format!(
                "run {} ({} {}) diverged from its direct run",
                outcome.run_id, outcome.workload, outcome.mode
            ));
        }
        if i > 0 {
            delivered_json.push(',');
            direct_json.push(',');
        }
        delivered_json.push_str(&delivered_s);
        direct_json.push_str(&direct_s);
    }
    delivered_json.push(']');
    direct_json.push(']');
    println!(
        "loadgen: all {} delivered reports byte-identical to direct runs",
        report.runs.len()
    );

    let prefix = std::env::var("LOADGEN_OUT").unwrap_or_default();
    let fleet_doc = serde_json::to_string(&report).expect("fleet report serialises");
    for (name, contents) in [
        ("FLEET_report.json", fleet_doc.as_str()),
        ("FLEET_runs.json", delivered_json.as_str()),
        ("FLEET_direct.json", direct_json.as_str()),
    ] {
        let path = format!("{prefix}{name}");
        if let Err(err) = aikido_bench::write_report(&path, contents) {
            eprintln!("loadgen: {err}");
            std::process::exit(exitcode::WRITE_FAILED);
        }
        println!("wrote {path}");
    }
}

//! Table 1: overheads of FastTrack and Aikido-FastTrack on fluidanimate and
//! vips at 2, 4 and 8 threads.
//!
//! Run with `cargo run --release -p aikido-bench --bin table1`.

use aikido::{Simulator, Workload, WorkloadSpec};
use aikido_bench::{fmt_slowdown, print_header, print_row, scale_from_env};

/// Paper values (slowdown vs native) for comparison.
const PAPER: [(&str, &str, [f64; 3]); 4] = [
    ("fluidanimate", "FastTrack", [55.79, 127.62, 178.60]),
    ("fluidanimate", "Aikido-FastTrack", [48.11, 110.65, 184.33]),
    ("vips", "FastTrack", [45.52, 53.34, 67.24]),
    ("vips", "Aikido-FastTrack", [31.50, 35.96, 66.37]),
];

fn main() {
    let scale = scale_from_env();
    println!("# Table 1 — thread scaling for fluidanimate and vips, scale {scale}");
    println!();
    let widths = [14usize, 18, 10, 10, 10];
    print_header(
        &["benchmark", "tool", "2 threads", "4 threads", "8 threads"],
        &widths,
    );

    for name in ["fluidanimate", "vips"] {
        let mut full_rows = Vec::new();
        let mut aikido_rows = Vec::new();
        for threads in [2u32, 4, 8] {
            let spec = WorkloadSpec::parsec(name)
                .expect("known benchmark")
                .scaled(scale)
                .with_threads(threads);
            let workload = Workload::generate(&spec);
            let cmp = Simulator::default().compare(&workload);
            full_rows.push(cmp.full_slowdown());
            aikido_rows.push(cmp.aikido_slowdown());
        }
        for (tool, rows) in [
            ("FastTrack", &full_rows),
            ("Aikido-FastTrack", &aikido_rows),
        ] {
            print_row(
                &[
                    name.to_string(),
                    tool.to_string(),
                    fmt_slowdown(rows[0]),
                    fmt_slowdown(rows[1]),
                    fmt_slowdown(rows[2]),
                ],
                &widths,
            );
        }
    }

    println!();
    println!("Paper values for reference:");
    print_header(
        &["benchmark", "tool", "2 threads", "4 threads", "8 threads"],
        &widths,
    );
    for (bench, tool, vals) in PAPER {
        print_row(
            &[
                bench.to_string(),
                tool.to_string(),
                fmt_slowdown(vals[0]),
                fmt_slowdown(vals[1]),
                fmt_slowdown(vals[2]),
            ],
            &widths,
        );
    }
    println!();
    println!(
        "Shape to check: overheads grow with thread count, Aikido wins at 2 and 4 threads, \
         and the advantage shrinks (or flips for fluidanimate) at 8 threads."
    );
}

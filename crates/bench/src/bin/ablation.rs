//! Ablations of the design choices the paper calls out (§3.3, §6):
//!
//! 1. **Per-thread vs process-wide page protection** — with process-wide
//!    protection every page that *any* thread touched is protected for all
//!    threads, so the first access by every thread faults and, crucially,
//!    there is no private fast path: all accesses to pages touched by two
//!    threads must be instrumented. Modelled by forcing instrumentation of
//!    every access to the shared region.
//! 2. **Fault/trap machinery cost** — rerun with free hypervisor faults to
//!    show how much of Aikido's overhead is page-protection traps.
//! 3. **Indirect-check fast path** — remove the emitted shared/private branch
//!    so instrumented indirect instructions always pay redirection.
//! 4. **FastTrack epoch optimisation** — run the analysis with full vector
//!    clocks everywhere.
//!
//! Run with `cargo run --release -p aikido-bench --bin ablation`.

use aikido::{CostModel, FastTrack, FastTrackConfig, Mode, Simulator, Workload, WorkloadSpec};
use aikido_bench::{fmt_slowdown, print_header, print_row, scale_from_env};

fn slowdown(sim: &Simulator, workload: &Workload, mode: Mode) -> f64 {
    let native = sim.run(workload, Mode::Native);
    sim.run(workload, mode).slowdown_vs(&native)
}

fn main() {
    let scale = scale_from_env();
    println!("# Ablations, scale {scale}");
    println!();

    let benchmarks = ["blackscholes", "vips", "fluidanimate"];
    let widths = [34usize, 14, 10, 14];
    print_header(
        &["configuration", "benchmark", "slowdown", "vs aikido"],
        &widths,
    );

    for name in benchmarks {
        let spec = WorkloadSpec::parsec(name).unwrap().scaled(scale);
        let workload = Workload::generate(&spec);
        let default_sim = Simulator::default();
        let aikido = slowdown(&default_sim, &workload, Mode::Aikido);

        let row = |label: &str, value: f64| {
            print_row(
                &[
                    label.to_string(),
                    name.to_string(),
                    fmt_slowdown(value),
                    format!("{:+.1}%", (value / aikido - 1.0) * 100.0),
                ],
                &widths,
            );
        };

        row("aikido (default)", aikido);

        // 1. Process-wide protection: everything that is shared between any
        // pair of threads is instrumented for everyone, and private data of
        // other threads cannot be left unprotected — the conventional
        // full-instrumentation pipeline is the limit of this design.
        let process_wide = slowdown(&default_sim, &workload, Mode::FullInstrumentation);
        row("process-wide protection (full instr.)", process_wide);

        // 2. Free fault machinery.
        let free_faults = Simulator::new(CostModel::default().with_free_faults());
        row(
            "free page-protection traps",
            slowdown(&free_faults, &workload, Mode::Aikido),
        );

        // 3. No indirect-check fast path.
        let no_fast_path = Simulator::new(CostModel::default().without_indirect_fast_path());
        row(
            "no indirect shared/private fast path",
            slowdown(&no_fast_path, &workload, Mode::Aikido),
        );

        // 4. FastTrack without the epoch optimisation.
        let native = default_sim.run(&workload, Mode::Native);
        let mut no_epochs = FastTrack::with_config(FastTrackConfig::without_epochs());
        let report = default_sim.run_with_analysis(&workload, Mode::Aikido, &mut no_epochs);
        row("fasttrack without epochs", report.slowdown_vs(&native));
    }

    println!();
    println!(
        "Reading: per-thread protection (the Aikido default) beats process-wide protection \
         wherever sharing is not total; the trap machinery accounts for a modest share of the \
         remaining overhead; the indirect fast path matters most when instrumented instructions \
         frequently touch private data; epochs matter most when accesses are mostly unshared."
    );
}

//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each binary in `src/bin/` reproduces one artefact of the evaluation
//! section (run them with `cargo run --release -p aikido-bench --bin <name>`):
//!
//! | binary   | paper artefact |
//! |----------|----------------|
//! | `fig5`   | Figure 5 — slowdown vs native, FastTrack vs Aikido-FastTrack |
//! | `fig6`   | Figure 6 — % of accesses targeting shared pages |
//! | `table1` | Table 1 — fluidanimate/vips overheads at 2/4/8 threads |
//! | `table2` | Table 2 — instrumentation statistics |
//! | `races`  | §5.3 — races found by both tools |
//! | `ablation` | §3.3/§6 design-choice ablations |
//!
//! The Criterion benches under `benches/` measure the reproduction itself
//! (component microbenchmarks and small end-to-end sweeps).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aikido::{Comparison, Mode, RunReport, SimConfig, Simulator, Workload, WorkloadSpec};

/// Workload scale used by the harnesses when the `AIKIDO_SCALE` environment
/// variable is not set. 1.0 is the calibrated default size (a few hundred
/// thousand to a few million simulated accesses per benchmark).
pub const DEFAULT_SCALE: f64 = 1.0;

/// Reads the workload scale from `AIKIDO_SCALE` (falling back to
/// [`DEFAULT_SCALE`]). The harnesses use this so CI can run quick passes.
/// Delegates to [`SimConfig::from_env_overrides`] — the one place the
/// simulator's environment variables are parsed.
pub fn scale_from_env() -> f64 {
    SimConfig::from_env_overrides().scale
}

/// Runs the native / FastTrack / Aikido-FastTrack comparison for one PARSEC
/// preset at `scale`.
///
/// # Panics
///
/// Panics if `name` is not a known PARSEC preset.
pub fn run_benchmark(name: &str, scale: f64) -> Comparison {
    let spec = WorkloadSpec::parsec(name)
        .unwrap_or_else(|| panic!("unknown PARSEC benchmark {name}"))
        .scaled(scale);
    let workload = Workload::generate(&spec);
    Simulator::default().compare(&workload)
}

/// Runs a single mode for one PARSEC preset at `scale`.
///
/// # Panics
///
/// Panics if `name` is not a known PARSEC preset.
pub fn run_mode(name: &str, scale: f64, mode: Mode) -> RunReport {
    let spec = WorkloadSpec::parsec(name)
        .unwrap_or_else(|| panic!("unknown PARSEC benchmark {name}"))
        .scaled(scale);
    let workload = Workload::generate(&spec);
    Simulator::default().run(&workload, mode)
}

/// A fingerprint of the measuring machine and configuration:
/// `host=<hostname> cores=<count> scale=<AIKIDO_SCALE>`. Recorded in
/// `BENCH_throughput.json` so `perfgate` can warn loudly when a fresh run is
/// compared against a baseline from a different machine or scale — absolute
/// throughput numbers are only comparable same-machine, same-scale (the
/// ROADMAP's "mixed machines" caveat, codified).
pub fn machine_fingerprint(scale: f64) -> String {
    let hostname = std::fs::read_to_string("/proc/sys/kernel/hostname")
        .or_else(|_| std::fs::read_to_string("/etc/hostname"))
        .map(|h| h.trim().to_string())
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!("host={hostname} cores={cores} scale={scale}")
}

/// Exit codes shared by the bench binaries, so CI can tell failure classes
/// apart without parsing stderr:
///
/// | code | meaning |
/// |------|---------|
/// | 0    | success (including `perfgate` passing with a missing baseline) |
/// | 1    | `perfgate`: throughput regressed beyond the tolerance |
/// | 2    | `perfgate`: the fresh throughput document is unreadable |
/// | 3    | `throughput`: the output document could not be written |
/// | 4    | `perfgate`: the baseline exists but is corrupt (unreadable, unparsable, or missing the gated geomeans) |
/// | 5    | `loadgen`: a service report diverged from its direct run, or a fleet invariant broke |
pub mod exitcode {
    /// Success.
    pub const OK: i32 = 0;
    /// `perfgate`: throughput regressed beyond the tolerance.
    pub const REGRESSION: i32 = 1;
    /// `perfgate`: the fresh throughput document is unreadable.
    pub const FRESH_UNREADABLE: i32 = 2;
    /// `throughput`: the output document could not be written.
    pub const WRITE_FAILED: i32 = 3;
    /// `perfgate`: the baseline exists but is corrupt. Distinct from a
    /// *missing* baseline (a fresh fork or perf machine), which passes with
    /// a warning — a baseline that is present but unreadable means the
    /// committed artifact rotted and the gate would otherwise silently stop
    /// gating.
    pub const BASELINE_CORRUPT: i32 = 4;
    /// `loadgen`: a service-delivered report diverged from the direct
    /// `Simulator` run of the same request, or the fleet violated one of its
    /// invariants (placement determinism, admission accounting).
    pub const SERVICE_MISMATCH: i32 = 5;
}

/// Writes a report document, wrapping any I/O failure in a diagnostic that
/// names the path, the cause, and the usual remedies. The bins map an `Err`
/// to [`exitcode::WRITE_FAILED`] instead of panicking mid-harness.
pub fn write_report(path: &str, contents: &str) -> Result<(), String> {
    std::fs::write(path, contents).map_err(|err| {
        format!(
            "cannot write report to {path}: {err} \
             (is the directory writable? set BENCH_OUT to redirect the output)"
        )
    })
}

/// Reads a JSON document, distinguishing the three states callers handle
/// differently:
///
/// * `Ok(None)` — the file does not exist,
/// * `Ok(Some(doc))` — the file parsed,
/// * `Err(reason)` — the file exists but could not be read or parsed.
pub fn read_json_document(path: &str) -> Result<Option<serde_json::Value>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(format!("cannot read {path}: {err}")),
    };
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|err| format!("{path} is not valid JSON: {err}"))
}

/// Geometric mean of a sequence of positive values (0.0 for an empty input).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a slowdown as the paper prints it, e.g. `67.2x`.
pub fn fmt_slowdown(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage, e.g. `22.3%`.
pub fn fmt_percent(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let row: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("| {} |", row.join(" | "));
}

/// Prints a Markdown-style table header (header row plus separator).
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("| {} |", sep.join(" | "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_constants_is_the_constant() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_slowdown(6.0), "6.00x");
        assert_eq!(fmt_percent(0.113), "11.30%");
    }

    #[test]
    fn machine_fingerprint_has_all_three_components() {
        let fp = machine_fingerprint(0.05);
        assert!(fp.contains("host="), "{fp}");
        assert!(fp.contains("cores="), "{fp}");
        assert!(fp.ends_with("scale=0.05"), "{fp}");
        assert!(!fp.contains('\n'));
    }

    #[test]
    fn write_report_surfaces_io_failures_with_the_path() {
        let err = write_report("/nonexistent-dir/out.json", "{}").unwrap_err();
        assert!(err.contains("/nonexistent-dir/out.json"), "{err}");
        assert!(err.contains("BENCH_OUT"), "{err}");
    }

    #[test]
    fn write_report_round_trips_through_read_json_document() {
        let path =
            std::env::temp_dir().join(format!("aikido-bench-io-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_string();
        write_report(&path, r#"{"native_geomean": 1.5}"#).expect("temp dir is writable");
        let doc = read_json_document(&path)
            .expect("readable")
            .expect("present");
        assert_eq!(
            doc.get("native_geomean").and_then(|v| v.as_f64()),
            Some(1.5)
        );
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn read_json_document_distinguishes_missing_from_corrupt() {
        // Missing file (including a missing parent directory): Ok(None).
        assert_eq!(
            read_json_document("/nonexistent-dir/missing.json").expect("missing is not an error"),
            None
        );
        // Present but not JSON: Err naming the path.
        let path =
            std::env::temp_dir().join(format!("aikido-bench-corrupt-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_string();
        std::fs::write(&path, "not json {").expect("temp dir is writable");
        let err = read_json_document(&path).expect_err("corrupt must be an error");
        assert!(err.contains(&path), "{err}");
        assert!(err.contains("not valid JSON"), "{err}");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn exit_codes_are_distinct() {
        let codes = [
            exitcode::OK,
            exitcode::REGRESSION,
            exitcode::FRESH_UNREADABLE,
            exitcode::WRITE_FAILED,
            exitcode::BASELINE_CORRUPT,
            exitcode::SERVICE_MISMATCH,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn run_benchmark_smoke_test() {
        let cmp = run_benchmark("blackscholes", 0.02);
        assert!(cmp.full_slowdown() > 1.0);
        assert!(cmp.aikido_slowdown() > 1.0);
    }
}

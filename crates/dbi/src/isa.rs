//! The synthetic instruction set and static program representation.
//!
//! Only the properties Aikido cares about are modelled: whether an
//! instruction references memory, whether it reads or writes, and whether its
//! effective address is an immediate (direct) or computed from a register
//! (indirect). Everything else (ALU, branches, calls) is a [`StaticInstr::Compute`].

use serde::{Deserialize, Serialize};

use aikido_types::{AccessKind, AddrMode, BlockId, InstrId};

/// One static instruction in a basic block.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StaticInstr {
    /// A memory-referencing instruction.
    Mem {
        /// Whether the instruction reads or writes.
        kind: AccessKind,
        /// Direct (immediate address) or indirect (register) addressing.
        mode: AddrMode,
    },
    /// A register-only instruction (ALU, branch, call).
    Compute,
    /// A call into a synchronisation wrapper (lock, unlock, fork, join,
    /// barrier). Always instrumented by shared data analyses.
    Sync,
}

impl StaticInstr {
    /// True if the instruction references memory.
    pub const fn is_mem(&self) -> bool {
        matches!(self, StaticInstr::Mem { .. })
    }
}

/// A static basic block: a straight-line sequence of instructions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticBlock {
    id: BlockId,
    instrs: Vec<StaticInstr>,
}

impl StaticBlock {
    /// Largest number of instructions a block may hold: instruction indices
    /// are `u16`s throughout the hot path ([`InstrId`], run metadata, the
    /// code cache), so a block can address at most indices `0..=u16::MAX`.
    pub const MAX_INSTRS: usize = u16::MAX as usize + 1;

    /// Creates a block. Normally constructed through [`Program::add_block`].
    ///
    /// # Panics
    ///
    /// Panics if `instrs` holds more than [`StaticBlock::MAX_INSTRS`]
    /// instructions — indices beyond `u16::MAX` would silently wrap in
    /// [`StaticBlock::instr_id`] and corrupt every downstream `InstrId`.
    /// Enforcing the bound at construction keeps the hot-path conversions
    /// exact without per-access checks.
    pub fn new(id: BlockId, instrs: Vec<StaticInstr>) -> Self {
        assert!(
            instrs.len() <= Self::MAX_INSTRS,
            "block holds {} instructions; instruction indices must fit in u16 \
             (max {} per block)",
            instrs.len(),
            Self::MAX_INSTRS
        );
        StaticBlock { id, instrs }
    }

    /// The block's identity.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The instructions of the block.
    pub fn instrs(&self) -> &[StaticInstr] {
        &self.instrs
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the block has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The [`InstrId`] of the instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the block — the same documented
    /// always-on panic the rest of the hot path uses, never a silent
    /// truncation: construction bounds blocks to [`StaticBlock::MAX_INSTRS`]
    /// instructions, so the `u16` conversion below is exact for every
    /// in-range index.
    pub fn instr_id(&self, index: usize) -> InstrId {
        assert!(index < self.instrs.len(), "instruction index out of range");
        InstrId::new(self.id, index as u16)
    }

    /// Number of memory-referencing instructions in the block.
    pub fn mem_instr_count(&self) -> usize {
        self.instrs.iter().filter(|i| i.is_mem()).count()
    }

    /// Iterates over `(InstrId, &StaticInstr)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (InstrId, &StaticInstr)> {
        self.instrs
            .iter()
            .enumerate()
            .map(move |(i, instr)| (InstrId::new(self.id, i as u16), instr))
    }
}

/// The static code of the target application: an indexed set of basic blocks.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    blocks: Vec<StaticBlock>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a basic block and returns its id.
    pub fn add_block(&mut self, instrs: Vec<StaticInstr>) -> BlockId {
        let id = BlockId::new(self.blocks.len() as u32);
        self.blocks.push(StaticBlock::new(id, instrs));
        id
    }

    /// Looks a block up by id.
    pub fn block(&self, id: BlockId) -> Option<&StaticBlock> {
        self.blocks.get(id.raw() as usize)
    }

    /// Number of blocks in the program.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if the program has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total number of static instructions.
    pub fn total_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Total number of static memory-referencing instructions.
    pub fn total_mem_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.mem_instr_count()).sum()
    }

    /// Iterates over the blocks in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StaticBlock> {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        let mut p = Program::new();
        p.add_block(vec![
            StaticInstr::Compute,
            StaticInstr::Mem {
                kind: AccessKind::Read,
                mode: AddrMode::Direct,
            },
            StaticInstr::Mem {
                kind: AccessKind::Write,
                mode: AddrMode::Indirect,
            },
        ]);
        p.add_block(vec![StaticInstr::Sync, StaticInstr::Compute]);
        p
    }

    #[test]
    fn blocks_get_sequential_ids() {
        let p = sample_program();
        assert_eq!(p.len(), 2);
        assert_eq!(p.block(BlockId::new(0)).unwrap().id(), BlockId::new(0));
        assert_eq!(p.block(BlockId::new(1)).unwrap().id(), BlockId::new(1));
        assert!(p.block(BlockId::new(2)).is_none());
    }

    #[test]
    fn instruction_counts() {
        let p = sample_program();
        assert_eq!(p.total_instrs(), 5);
        assert_eq!(p.total_mem_instrs(), 2);
        assert_eq!(p.block(BlockId::new(0)).unwrap().mem_instr_count(), 2);
        assert_eq!(p.block(BlockId::new(1)).unwrap().mem_instr_count(), 0);
    }

    #[test]
    fn instr_ids_identify_block_and_offset() {
        let p = sample_program();
        let b = p.block(BlockId::new(0)).unwrap();
        let id = b.instr_id(2);
        assert_eq!(id.block(), BlockId::new(0));
        assert_eq!(id.index(), 2);
        let ids: Vec<_> = b.iter_ids().map(|(i, _)| i.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_instr_id_panics() {
        let p = sample_program();
        let _ = p.block(BlockId::new(1)).unwrap().instr_id(5);
    }

    #[test]
    fn instr_ids_are_exact_at_the_u16_boundary() {
        // A block of exactly MAX_INSTRS instructions is legal and its last
        // index converts exactly (no wrap-around).
        let block = StaticBlock::new(
            BlockId::new(0),
            vec![StaticInstr::Compute; StaticBlock::MAX_INSTRS],
        );
        let last = block.instr_id(StaticBlock::MAX_INSTRS - 1);
        assert_eq!(last.index(), u16::MAX);
        let (id, _) = block.iter_ids().last().unwrap();
        assert_eq!(id.index(), u16::MAX);
    }

    #[test]
    #[should_panic(expected = "fit in u16")]
    fn oversized_blocks_are_rejected_at_construction() {
        let _ = StaticBlock::new(
            BlockId::new(0),
            vec![StaticInstr::Compute; StaticBlock::MAX_INSTRS + 1],
        );
    }
}

//! The instrumentation engine: program + code cache + instrumentation
//! decisions.

use std::collections::HashSet;
use std::sync::Arc;

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{BlockId, InstrId};

use crate::cache::{CodeCache, CodeCacheStats};
use crate::isa::Program;

/// What happened when a block was executed through the engine.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockExecution {
    /// The block that was executed.
    pub block: BlockId,
    /// True if the block had to be (re)built on this execution.
    pub built: bool,
    /// Number of instructions in the block.
    pub instr_count: usize,
    /// Number of memory instructions carrying instrumentation in the cached
    /// copy that ran.
    pub instrumented_mem_instrs: usize,
    /// True if the cached copy belongs to a trace.
    pub in_trace: bool,
    /// Per-instruction instrumentation bitmask of the copy that ran (bit *i*
    /// = instruction *i* carries instrumentation). Because every new
    /// instrumentation decision flushes the block, the mask of the resident
    /// copy always reflects the engine's *current* decisions, so callers can
    /// answer [`DbiEngine::is_instrumented`] for the whole block with one
    /// shift-and-test per instruction — no per-access engine probe.
    pub instr_mask: u64,
    /// True if `instr_mask` covers every instruction (block length ≤ 64);
    /// when false, fall back to [`DbiEngine::is_instrumented`] per access.
    pub mask_exact: bool,
    /// True if the installed [`StaticPlan`] proved every memory access of
    /// this block thread-private (`false` when no plan is installed). Copied
    /// from the cached block so dispatch can take the whole-block fast path
    /// for proven blocks even when `mask_exact` is false.
    pub static_private: bool,
}

/// The product of the static pre-analysis (`aikido-staticcheck`), in the
/// shape the engine consumes: one proven-thread-private bit and one
/// may-share instrumentation mask per static block, indexed by raw block id.
///
/// The plan is *advice*, not authority: installing one never changes which
/// analysis callbacks are delivered. The engine only uses it to (a) stamp
/// [`CachedBlock::static_private`](crate::CachedBlock::static_private) on
/// fresh copies and (b) count claim violations — instrumentation requests
/// that contradict the plan — in
/// [`DbiEngine::static_bound_violations`], which a sound analysis keeps at
/// zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StaticPlan {
    /// `proven_private[b]` — every memory access of block *b* is proven to
    /// target memory private to the executing thread.
    pub proven_private: Vec<bool>,
    /// `may_share_masks[b]` — bitmask (bit *i* = instruction *i*) of the
    /// instructions of block *b* that may touch shared memory; the derived
    /// upper bound on the instrumentation the sharing detector can request.
    /// Exact only for instruction indices below 64.
    pub may_share_masks: Vec<u64>,
}

/// Blocks with a raw id below this bound get a dense bitmask slot; beyond it
/// (never in practice — ids are assigned sequentially by [`Program`]) the
/// `instrumented` set remains authoritative, bounding the masks allocation
/// against pathological ids.
const MAX_MASK_BLOCKS: usize = 1 << 20;

/// The per-access instrumentation check: a bitmask probe for in-range ids,
/// the `instrumented` set for everything else. A free function (rather than
/// a method) so `execute_block` can run it while the code cache holds the
/// mutable borrow of the engine — both call sites must stay in lockstep.
#[inline]
fn instr_is_instrumented(masks: &[u64], instrumented: &HashSet<InstrId>, id: InstrId) -> bool {
    let index = id.index();
    let block = id.block().raw() as usize;
    if index < 64 && block < MAX_MASK_BLOCKS {
        masks.get(block).is_some_and(|m| m & (1u64 << index) != 0)
    } else {
        instrumented.contains(&id)
    }
}

/// The DynamoRIO-style engine driving a [`Program`] through a [`CodeCache`]
/// with a dynamic set of instrumentation decisions.
///
/// The program is held behind an [`Arc`], so constructing an engine from a
/// workload's already-shared program is free. Instrumentation decisions are
/// mirrored into per-block bitmasks so the per-access `is_instrumented` check
/// is two loads and a bit test.
#[derive(Debug)]
pub struct DbiEngine {
    program: Arc<Program>,
    cache: CodeCache,
    instrumented: HashSet<InstrId>,
    /// Per-block instrumentation bitmask (bit *i* = instruction *i*), indexed
    /// by raw block id. Instructions at index ≥ 64 (none in practice) fall
    /// back to the `instrumented` set.
    masks: Vec<u64>,
    /// The static pre-analysis plan, if one was installed.
    plan: Option<StaticPlan>,
    /// Instrumentation requests that contradicted the installed plan.
    static_bound_violations: u64,
}

impl DbiEngine {
    /// Creates an engine for `program` (owned or shared) with an empty code
    /// cache and no instrumentation decisions.
    pub fn new(program: impl Into<Arc<Program>>) -> Self {
        DbiEngine {
            program: program.into(),
            cache: CodeCache::new(),
            instrumented: HashSet::new(),
            masks: Vec::new(),
            plan: None,
            static_bound_violations: 0,
        }
    }

    /// Creates an engine with a custom trace-promotion threshold.
    pub fn with_hot_threshold(program: impl Into<Arc<Program>>, hot_threshold: u64) -> Self {
        DbiEngine {
            program: program.into(),
            cache: CodeCache::with_hot_threshold(hot_threshold),
            instrumented: HashSet::new(),
            masks: Vec::new(),
            plan: None,
            static_bound_violations: 0,
        }
    }

    /// Installs a static pre-analysis plan. Cached copies built before the
    /// plan carry stale `static_private` stamps, so the cache is cleared;
    /// install plans before the first execution to avoid rebuild costs.
    pub fn install_static_plan(&mut self, plan: StaticPlan) {
        self.cache.clear();
        self.plan = Some(plan);
    }

    /// The installed static plan, if any.
    pub fn static_plan(&self) -> Option<&StaticPlan> {
        self.plan.as_ref()
    }

    /// Number of instrumentation requests that contradicted the installed
    /// plan — a request for a proven-private block, or for an instruction
    /// outside the plan's may-share mask. Always zero without a plan, and
    /// zero with a sound plan; a non-zero count means the static analysis
    /// (or an injected claim) was unsound. Never affects execution.
    pub fn static_bound_violations(&self) -> u64 {
        self.static_bound_violations
    }

    /// The static program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The code cache statistics.
    pub fn cache_stats(&self) -> &CodeCacheStats {
        self.cache.stats()
    }

    /// The set of instructions currently marked for instrumentation.
    pub fn instrumented_instrs(&self) -> &HashSet<InstrId> {
        &self.instrumented
    }

    /// True if `instr` is currently marked for instrumentation.
    #[inline]
    pub fn is_instrumented(&self, instr: InstrId) -> bool {
        instr_is_instrumented(&self.masks, &self.instrumented, instr)
    }

    /// Executes `block` through the code cache, building (and instrumenting
    /// according to current decisions) if needed.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not part of the program.
    pub fn execute_block(&mut self, block: BlockId) -> BlockExecution {
        let instrumented = &self.instrumented;
        let masks = &self.masks;
        let static_private = self
            .plan
            .as_ref()
            .and_then(|p| p.proven_private.get(block.raw() as usize))
            .copied()
            .unwrap_or(false);
        let (built, cached) = self
            .cache
            .execute(&self.program, block, static_private, |id| {
                instr_is_instrumented(masks, instrumented, id)
            });
        BlockExecution {
            block,
            built,
            instr_count: cached.instrumented.len(),
            instrumented_mem_instrs: cached.instrumented_mem_instrs,
            in_trace: cached.in_trace,
            instr_mask: cached.instr_mask,
            mask_exact: cached.mask_is_exact(),
            static_private: cached.static_private,
        }
    }

    /// Marks `instr` for instrumentation and flushes its block so the next
    /// execution re-JITs it with the instrumentation included. Returns `true`
    /// if this was a new decision (the instruction was not already
    /// instrumented).
    pub fn request_instrumentation(&mut self, instr: InstrId) -> bool {
        let newly = self.instrumented.insert(instr);
        if newly {
            if let Some(plan) = &self.plan {
                let idx = instr.block().raw() as usize;
                let proven = plan.proven_private.get(idx).copied().unwrap_or(false);
                let outside_mask = instr.index() < 64
                    && plan
                        .may_share_masks
                        .get(idx)
                        .is_some_and(|m| m & (1u64 << instr.index()) == 0);
                if proven || outside_mask {
                    self.static_bound_violations += 1;
                }
            }
            let index = instr.index();
            let idx = instr.block().raw() as usize;
            if index < 64 && idx < MAX_MASK_BLOCKS {
                if idx >= self.masks.len() {
                    self.masks.resize(idx + 1, 0);
                }
                self.masks[idx] |= 1u64 << index;
            }
            self.cache.flush_instr(instr);
        }
        newly
    }

    /// True if the cached copy of `block` (if any) already carries the
    /// instrumentation for every currently instrumented instruction it
    /// contains — i.e. no rebuild is pending.
    pub fn block_up_to_date(&self, block: BlockId) -> bool {
        match self.cache.get(block) {
            None => false,
            Some(cached) => {
                let static_block = match self.program.block(block) {
                    Some(b) => b,
                    None => return false,
                };
                static_block.iter_ids().all(|(id, _)| {
                    let want = self.instrumented.contains(&id);
                    let have = cached.instrumented[id.index() as usize];
                    have == want
                })
            }
        }
    }

    /// Number of blocks resident in the code cache.
    pub fn cached_blocks(&self) -> usize {
        self.cache.len()
    }

    /// Serializes the engine's dynamic state — instrumentation decisions,
    /// bitmask mirror, installed static plan, violation counter and the code
    /// cache — into `out`. The static [`Program`] is workload input, not
    /// state, and is *not* serialized; [`DbiEngine::decode_snapshot`] takes
    /// it back as an argument.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        let mut decisions: Vec<InstrId> = self.instrumented.iter().copied().collect();
        decisions.sort_unstable();
        out.put_usize(decisions.len());
        for id in decisions {
            out.put_u32(id.block().raw());
            out.put_u16(id.index());
        }
        out.put_usize(self.masks.len());
        for &m in &self.masks {
            out.put_u64(m);
        }
        match &self.plan {
            None => out.put_u8(0),
            Some(plan) => {
                out.put_u8(1);
                out.put_usize(plan.proven_private.len());
                for &p in &plan.proven_private {
                    out.put_bool(p);
                }
                out.put_usize(plan.may_share_masks.len());
                for &m in &plan.may_share_masks {
                    out.put_u64(m);
                }
            }
        }
        out.put_u64(self.static_bound_violations);
        self.cache.encode_snapshot(out);
    }

    /// Rebuilds an engine over `program` from its serialized form. State is
    /// reinstated directly — never through [`DbiEngine::request_instrumentation`]
    /// or [`DbiEngine::install_static_plan`] — so flush statistics, violation
    /// counts and resident cache copies come back exactly as recorded.
    pub fn decode_snapshot(
        program: impl Into<Arc<Program>>,
        r: &mut SectionReader,
    ) -> Result<Self, SnapshotError> {
        let decisions = r.get_usize()?;
        let mut instrumented = HashSet::with_capacity(decisions.min(1 << 20));
        let mut prev: Option<InstrId> = None;
        for _ in 0..decisions {
            let block = BlockId::new(r.get_u32()?);
            let id = InstrId::new(block, r.get_u16()?);
            if prev.is_some_and(|p| p >= id) {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("instrumentation decisions out of order at {id:?}"),
                ));
            }
            prev = Some(id);
            instrumented.insert(id);
        }
        let mask_count = r.get_usize()?;
        if mask_count > MAX_MASK_BLOCKS {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                format!("mask table of {mask_count} blocks exceeds {MAX_MASK_BLOCKS}"),
            ));
        }
        let mut masks = Vec::with_capacity(mask_count);
        for _ in 0..mask_count {
            masks.push(r.get_u64()?);
        }
        let plan = match r.get_u8()? {
            0 => None,
            1 => {
                let private = r.get_usize()?;
                let mut proven_private = Vec::with_capacity(private.min(1 << 20));
                for _ in 0..private {
                    proven_private.push(r.get_bool()?);
                }
                let share = r.get_usize()?;
                let mut may_share_masks = Vec::with_capacity(share.min(1 << 20));
                for _ in 0..share {
                    may_share_masks.push(r.get_u64()?);
                }
                Some(StaticPlan {
                    proven_private,
                    may_share_masks,
                })
            }
            tag => {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("unknown static-plan tag {tag}"),
                ));
            }
        };
        let static_bound_violations = r.get_u64()?;
        let cache = CodeCache::decode_snapshot(r)?;
        Ok(DbiEngine {
            program: program.into(),
            cache,
            instrumented,
            masks,
            plan,
            static_bound_violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::StaticInstr;
    use aikido_types::{AccessKind, AddrMode};

    fn engine() -> (DbiEngine, BlockId) {
        let mut p = Program::new();
        let b = p.add_block(vec![
            StaticInstr::Mem {
                kind: AccessKind::Read,
                mode: AddrMode::Direct,
            },
            StaticInstr::Compute,
            StaticInstr::Mem {
                kind: AccessKind::Write,
                mode: AddrMode::Indirect,
            },
        ]);
        (DbiEngine::new(p), b)
    }

    #[test]
    fn execution_before_any_decision_has_no_instrumentation() {
        let (mut e, b) = engine();
        let exec = e.execute_block(b);
        assert!(exec.built);
        assert_eq!(exec.instr_count, 3);
        assert_eq!(exec.instrumented_mem_instrs, 0);
        assert!(e.block_up_to_date(b));
    }

    #[test]
    fn requesting_instrumentation_flushes_and_rebuilds() {
        let (mut e, b) = engine();
        e.execute_block(b);
        let instr = e.program().block(b).unwrap().instr_id(2);
        assert!(e.request_instrumentation(instr));
        assert!(!e.block_up_to_date(b), "flush leaves the block uncached");
        let exec = e.execute_block(b);
        assert!(exec.built);
        assert_eq!(exec.instrumented_mem_instrs, 1);
        assert!(e.is_instrumented(instr));
        assert!(e.block_up_to_date(b));
    }

    #[test]
    fn block_execution_mask_tracks_current_decisions() {
        let (mut e, b) = engine();
        let exec = e.execute_block(b);
        assert_eq!(exec.instr_mask, 0);
        assert!(exec.mask_exact);
        let instr = e.program().block(b).unwrap().instr_id(2);
        e.request_instrumentation(instr);
        let exec = e.execute_block(b);
        assert!(exec.built, "new decision flushes, so the copy is rebuilt");
        assert_eq!(exec.instr_mask, 0b100);
        for (i, _) in e.program().block(b).unwrap().iter_ids().enumerate() {
            let id = e.program().block(b).unwrap().instr_id(i);
            assert_eq!(exec.instr_mask & (1 << i) != 0, e.is_instrumented(id));
        }
    }

    #[test]
    fn duplicate_instrumentation_requests_do_not_flush_again() {
        let (mut e, b) = engine();
        let instr = e.program().block(b).unwrap().instr_id(0);
        assert!(e.request_instrumentation(instr));
        e.execute_block(b);
        let flushes_before = e.cache_stats().flush_requests;
        assert!(!e.request_instrumentation(instr));
        assert_eq!(e.cache_stats().flush_requests, flushes_before);
        assert!(e.block_up_to_date(b));
    }

    #[test]
    fn instrumented_set_grows_monotonically() {
        let (mut e, b) = engine();
        let i0 = e.program().block(b).unwrap().instr_id(0);
        let i2 = e.program().block(b).unwrap().instr_id(2);
        e.request_instrumentation(i0);
        e.request_instrumentation(i2);
        assert_eq!(e.instrumented_instrs().len(), 2);
        let exec = e.execute_block(b);
        assert_eq!(exec.instrumented_mem_instrs, 2);
    }

    #[test]
    fn up_to_date_is_false_for_never_executed_blocks() {
        let (e, b) = engine();
        assert!(!e.block_up_to_date(b));
        assert_eq!(e.cached_blocks(), 0);
    }

    #[test]
    fn installed_plan_stamps_cached_copies_and_clears_the_cache() {
        let (mut e, b) = engine();
        let exec = e.execute_block(b);
        assert!(!exec.static_private, "no plan installed yet");
        e.install_static_plan(StaticPlan {
            proven_private: vec![true],
            may_share_masks: vec![0],
        });
        assert_eq!(e.cached_blocks(), 0, "stale stamps are flushed");
        let exec = e.execute_block(b);
        assert!(exec.built);
        assert!(exec.static_private);
    }

    #[test]
    fn violating_requests_are_counted_but_still_honoured() {
        let (mut e, b) = engine();
        e.install_static_plan(StaticPlan {
            proven_private: vec![true],
            may_share_masks: vec![0],
        });
        assert_eq!(e.static_bound_violations(), 0);
        let instr = e.program().block(b).unwrap().instr_id(0);
        assert!(e.request_instrumentation(instr));
        assert_eq!(e.static_bound_violations(), 1);
        // The decision itself is never suppressed: the rebuilt copy carries
        // the instrumentation even though the claim said it never would.
        let exec = e.execute_block(b);
        assert_eq!(exec.instrumented_mem_instrs, 1);
        // Duplicate requests are not new decisions and count nothing.
        assert!(!e.request_instrumentation(instr));
        assert_eq!(e.static_bound_violations(), 1);
    }

    #[test]
    fn requests_inside_the_may_share_mask_are_not_violations() {
        let (mut e, b) = engine();
        e.install_static_plan(StaticPlan {
            proven_private: vec![false],
            may_share_masks: vec![0b101],
        });
        let i0 = e.program().block(b).unwrap().instr_id(0);
        let i2 = e.program().block(b).unwrap().instr_id(2);
        e.request_instrumentation(i0);
        e.request_instrumentation(i2);
        assert_eq!(e.static_bound_violations(), 0);
        let i1 = e.program().block(b).unwrap().instr_id(1);
        e.request_instrumentation(i1);
        assert_eq!(e.static_bound_violations(), 1);
    }

    #[test]
    fn snapshot_roundtrip_preserves_engine_state() {
        let (mut e, b) = engine();
        e.install_static_plan(StaticPlan {
            proven_private: vec![false],
            may_share_masks: vec![0b101],
        });
        // Build up non-trivial state: decisions (one of them a violation),
        // several executions (so the copy is hot), and a pending flush.
        for _ in 0..CodeCache::DEFAULT_HOT_THRESHOLD + 2 {
            e.execute_block(b);
        }
        let i0 = e.program().block(b).unwrap().instr_id(0);
        let i1 = e.program().block(b).unwrap().instr_id(1);
        e.request_instrumentation(i0);
        e.execute_block(b);
        e.request_instrumentation(i1); // violation; leaves the block flushed
        assert_eq!(e.static_bound_violations(), 1);

        let mut w = aikido_snapshot::SectionWriter::new(*b"DBIE", 1);
        e.encode_snapshot(&mut w);
        let mut builder = aikido_snapshot::SnapshotBuilder::new();
        builder.push(w);
        let snap = builder.finish();
        let mut reader = snap.reader().unwrap();
        let mut section = reader.section(*b"DBIE", 1).unwrap();
        let mut restored =
            DbiEngine::decode_snapshot(Arc::clone(&e.program), &mut section).unwrap();
        section.finish().unwrap();
        reader.finish().unwrap();

        assert_eq!(restored.instrumented_instrs(), e.instrumented_instrs());
        assert_eq!(restored.static_plan(), e.static_plan());
        assert_eq!(restored.static_bound_violations(), 1);
        assert_eq!(restored.cache_stats(), e.cache_stats());
        assert_eq!(restored.cached_blocks(), e.cached_blocks());
        assert_eq!(restored.block_up_to_date(b), e.block_up_to_date(b));
        // The two engines evolve identically from here.
        assert_eq!(restored.execute_block(b), e.execute_block(b));
        assert_eq!(restored.cache_stats(), e.cache_stats());
        // And re-encoding is byte-stable.
        let mut w1 = aikido_snapshot::SectionWriter::new(*b"DBIE", 1);
        e.encode_snapshot(&mut w1);
        let mut w2 = aikido_snapshot::SectionWriter::new(*b"DBIE", 1);
        restored.encode_snapshot(&mut w2);
        let (mut b1, mut b2) = (
            aikido_snapshot::SnapshotBuilder::new(),
            aikido_snapshot::SnapshotBuilder::new(),
        );
        b1.push(w1);
        b2.push(w2);
        assert_eq!(b1.finish().into_bytes(), b2.finish().into_bytes());
    }

    #[test]
    fn blocks_beyond_the_plan_are_unconstrained() {
        let mut p = Program::new();
        let _b0 = p.add_block(vec![StaticInstr::Compute]);
        let b1 = p.add_block(vec![StaticInstr::Mem {
            kind: AccessKind::Read,
            mode: AddrMode::Indirect,
        }]);
        let mut e = DbiEngine::new(p);
        e.install_static_plan(StaticPlan {
            proven_private: vec![false],
            may_share_masks: vec![0],
        });
        let instr = e.program().block(b1).unwrap().instr_id(0);
        e.request_instrumentation(instr);
        assert_eq!(e.static_bound_violations(), 0);
        assert!(!e.execute_block(b1).static_private);
    }
}

//! The modified master signal handler (§3.4).
//!
//! DynamoRIO installs its own signal handler. Aikido's changes make it
//! distinguish two cases for an Aikido page fault:
//!
//! * the faulting access was performed by the *application* code running in
//!   the code cache — the fault is forwarded to the sharing detector;
//! * the faulting access was performed by DynamoRIO itself or by the tool
//!   (both routinely read application memory) — the page is unprotected for
//!   the current thread, remembered, and re-protected when control returns to
//!   the application.

use std::collections::{BTreeSet, HashMap};

use aikido_types::{ThreadId, Vpn};

/// Who performed the faulting access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FaultOrigin {
    /// The target application, executing out of the code cache.
    Application,
    /// DynamoRIO or the instrumentation tool itself.
    Runtime,
}

/// Routing decision produced by the master handler for an Aikido fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HandlerAction {
    /// Forward the fault to the sharing detector.
    ForwardToSharingDetector,
    /// Unprotect the page for this thread; it will be re-protected when
    /// control returns to the application.
    UnprotectForRuntime,
}

/// The master signal handler state: per-thread lists of pages unprotected on
/// behalf of the runtime.
#[derive(Debug, Default)]
pub struct MasterHandler {
    unprotected: HashMap<ThreadId, BTreeSet<Vpn>>,
}

impl MasterHandler {
    /// Creates a handler with no outstanding unprotected pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles an Aikido fault raised by `origin` on `thread` for `page`.
    pub fn on_aikido_fault(
        &mut self,
        thread: ThreadId,
        page: Vpn,
        origin: FaultOrigin,
    ) -> HandlerAction {
        match origin {
            FaultOrigin::Application => HandlerAction::ForwardToSharingDetector,
            FaultOrigin::Runtime => {
                self.unprotected.entry(thread).or_default().insert(page);
                HandlerAction::UnprotectForRuntime
            }
        }
    }

    /// Pages currently unprotected for the runtime on `thread`.
    pub fn pending_pages(&self, thread: ThreadId) -> Vec<Vpn> {
        self.unprotected
            .get(&thread)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Called when control returns from the runtime to the application on
    /// `thread`: drains and returns the pages that must be re-protected.
    pub fn return_to_application(&mut self, thread: ThreadId) -> Vec<Vpn> {
        self.unprotected
            .remove(&thread)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
    }

    /// True if no thread has outstanding runtime-unprotected pages.
    pub fn is_clean(&self) -> bool {
        self.unprotected.values().all(|s| s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn application_faults_are_forwarded() {
        let mut h = MasterHandler::new();
        let action = h.on_aikido_fault(ThreadId::new(0), Vpn::new(5), FaultOrigin::Application);
        assert_eq!(action, HandlerAction::ForwardToSharingDetector);
        assert!(h.is_clean());
    }

    #[test]
    fn runtime_faults_record_pages_per_thread() {
        let mut h = MasterHandler::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        assert_eq!(
            h.on_aikido_fault(t0, Vpn::new(5), FaultOrigin::Runtime),
            HandlerAction::UnprotectForRuntime
        );
        h.on_aikido_fault(t0, Vpn::new(6), FaultOrigin::Runtime);
        h.on_aikido_fault(t1, Vpn::new(7), FaultOrigin::Runtime);
        assert_eq!(h.pending_pages(t0), vec![Vpn::new(5), Vpn::new(6)]);
        assert_eq!(h.pending_pages(t1), vec![Vpn::new(7)]);
        assert!(!h.is_clean());
    }

    #[test]
    fn returning_to_application_drains_only_that_thread() {
        let mut h = MasterHandler::new();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        h.on_aikido_fault(t0, Vpn::new(5), FaultOrigin::Runtime);
        h.on_aikido_fault(t1, Vpn::new(9), FaultOrigin::Runtime);
        let drained = h.return_to_application(t0);
        assert_eq!(drained, vec![Vpn::new(5)]);
        assert!(h.pending_pages(t0).is_empty());
        assert_eq!(h.pending_pages(t1), vec![Vpn::new(9)]);
    }

    #[test]
    fn duplicate_pages_are_deduplicated() {
        let mut h = MasterHandler::new();
        let t = ThreadId::new(2);
        h.on_aikido_fault(t, Vpn::new(4), FaultOrigin::Runtime);
        h.on_aikido_fault(t, Vpn::new(4), FaultOrigin::Runtime);
        assert_eq!(h.return_to_application(t), vec![Vpn::new(4)]);
    }
}

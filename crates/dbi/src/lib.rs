//! A DynamoRIO-style dynamic binary instrumentation engine (§2.1) over a
//! synthetic ISA.
//!
//! The real Aikido runs unmodified x86 binaries through DynamoRIO's code
//! cache: basic blocks are copied into the cache one at a time, tools get a
//! callback to insert instrumentation as each block is built, blocks are
//! linked to avoid returning to the dispatcher, hot sequences are stitched
//! into traces, and — crucially for Aikido — cached blocks can be *flushed*
//! and re-JITed when the sharing detector decides an instruction now needs
//! instrumentation and mirror-page redirection.
//!
//! This crate reproduces that machinery over a synthetic instruction set:
//!
//! * [`StaticInstr`]/[`StaticBlock`]/[`Program`] describe the *static* code
//!   of the target application (the workload generator produces these).
//! * [`CodeCache`] models the thread-shared basic-block cache: building,
//!   executing, linking, trace promotion and flushing, with statistics for
//!   the cost model.
//! * [`DbiEngine`] ties a program, its code cache and the set of
//!   instrumentation decisions together, exposing exactly the operations the
//!   Aikido sharing detector needs: execute a block, request that an
//!   instruction be instrumented from now on (which flushes its block), and
//!   inspect what is currently instrumented.
//! * [`MasterHandler`] models the modified master signal handler (§3.4) that
//!   distinguishes faults raised by the application from faults raised by
//!   DynamoRIO or the tool itself, and tracks the pages that were unprotected
//!   on behalf of the runtime so they can be re-protected when control
//!   returns to the application.
//!
//! # Examples
//!
//! ```
//! use aikido_dbi::{DbiEngine, Program, StaticBlock, StaticInstr};
//! use aikido_types::{AccessKind, AddrMode, BlockId};
//!
//! let mut program = Program::new();
//! let block = program.add_block(vec![
//!     StaticInstr::Compute,
//!     StaticInstr::Mem { kind: AccessKind::Write, mode: AddrMode::Indirect },
//! ]);
//! let mut engine = DbiEngine::new(program);
//!
//! // First execution builds the block; nothing is instrumented yet.
//! let exec = engine.execute_block(block);
//! assert!(exec.built);
//! assert_eq!(exec.instrumented_mem_instrs, 0);
//!
//! // The sharing detector later asks for the store to be instrumented.
//! let instr = engine.program().block(block).unwrap().instr_id(1);
//! engine.request_instrumentation(instr);
//! let exec = engine.execute_block(block);
//! assert!(exec.built, "block was flushed and re-JITed");
//! assert_eq!(exec.instrumented_mem_instrs, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod cache;
mod engine;
mod isa;
mod signal;

pub use cache::{CachedBlock, CodeCache, CodeCacheStats};
pub use engine::{BlockExecution, DbiEngine, StaticPlan};
pub use isa::{Program, StaticBlock, StaticInstr};
pub use signal::{FaultOrigin, MasterHandler};

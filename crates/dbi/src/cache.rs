//! The basic-block code cache, block linking and trace promotion.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{BlockId, InstrId};

use crate::isa::Program;

/// Statistics maintained by the code cache; the cost model converts these
/// into cycles (block build cost, dispatch cost, flush cost).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeCacheStats {
    /// Blocks copied into the cache (including rebuilds after a flush).
    pub blocks_built: u64,
    /// Instructions emitted while building blocks.
    pub instrs_emitted: u64,
    /// Dispatches, i.e. block executions entering through the cache.
    pub dispatches: u64,
    /// Dispatches that found the block already cached and linked.
    pub linked_dispatches: u64,
    /// Flush requests received.
    pub flush_requests: u64,
    /// Blocks actually removed by flushes.
    pub blocks_flushed: u64,
    /// Blocks promoted into traces.
    pub traces_built: u64,
}

impl CodeCacheStats {
    /// Merges another set of statistics into this one.
    pub fn merge(&mut self, other: &CodeCacheStats) {
        self.blocks_built += other.blocks_built;
        self.instrs_emitted += other.instrs_emitted;
        self.dispatches += other.dispatches;
        self.linked_dispatches += other.linked_dispatches;
        self.flush_requests += other.flush_requests;
        self.blocks_flushed += other.blocks_flushed;
        self.traces_built += other.traces_built;
    }
}

/// A basic block resident in the code cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedBlock {
    /// The static block this cache entry was built from.
    pub block: BlockId,
    /// Per-instruction flag: `true` if instrumentation was emitted for the
    /// instruction when the block was built.
    pub instrumented: Vec<bool>,
    /// The same per-instruction flags packed into a bitmask (bit *i* =
    /// instruction *i*), precomputed at build time so per-access
    /// instrumentation checks on the executing copy are a shift and a test.
    /// Exact only while the block holds at most 64 instructions
    /// ([`CachedBlock::mask_is_exact`]); wider blocks keep the flag vector
    /// authoritative.
    pub instr_mask: u64,
    /// Number of memory instructions carrying instrumentation in this copy
    /// (precomputed at build time so dispatch stays allocation- and scan-free).
    pub instrumented_mem_instrs: usize,
    /// True if the static pre-analysis proved every memory access of this
    /// block thread-private (see `aikido-staticcheck`). Recorded on the
    /// cached copy at build time so dispatch can extend the whole-block
    /// fast path to proven blocks whose mask is not exact (> 64
    /// instructions) without re-consulting the plan. Purely an acceleration
    /// hint: execution behaviour never depends on the claim being true.
    pub static_private: bool,
    /// Number of times the cached copy has been executed.
    pub executions: u64,
    /// How many times the block has been (re)built; generation 1 is the first
    /// build.
    pub generation: u32,
    /// True once the block has been stitched into a trace.
    pub in_trace: bool,
}

impl CachedBlock {
    /// Number of instrumented instructions in this cached copy.
    pub fn instrumented_count(&self) -> usize {
        self.instrumented.iter().filter(|&&b| b).count()
    }

    /// True if [`CachedBlock::instr_mask`] covers every instruction of the
    /// block (i.e. the block fits in one 64-bit mask).
    pub fn mask_is_exact(&self) -> bool {
        self.instrumented.len() <= 64
    }
}

/// The thread-shared basic-block code cache.
///
/// Blocks are stored in a vector indexed by the (dense) [`BlockId`], so the
/// per-block-execution dispatch is a bounds check and a load.
#[derive(Debug, Default)]
pub struct CodeCache {
    blocks: Vec<Option<CachedBlock>>,
    generations: Vec<u32>,
    hot_threshold: u64,
    stats: CodeCacheStats,
}

impl CodeCache {
    /// Default number of executions after which a block is promoted into a
    /// trace.
    pub const DEFAULT_HOT_THRESHOLD: u64 = 50;

    /// Creates an empty code cache with the default trace-promotion
    /// threshold.
    pub fn new() -> Self {
        Self::with_hot_threshold(Self::DEFAULT_HOT_THRESHOLD)
    }

    /// Creates an empty code cache promoting blocks to traces after
    /// `hot_threshold` executions.
    pub fn with_hot_threshold(hot_threshold: u64) -> Self {
        CodeCache {
            blocks: Vec::new(),
            generations: Vec::new(),
            hot_threshold: hot_threshold.max(1),
            stats: CodeCacheStats::default(),
        }
    }

    /// True if `block` is currently cached.
    pub fn contains(&self, block: BlockId) -> bool {
        self.get(block).is_some()
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CodeCacheStats {
        &self.stats
    }

    /// The cached copy of `block`, if present.
    #[inline]
    pub fn get(&self, block: BlockId) -> Option<&CachedBlock> {
        self.blocks.get(block.raw() as usize)?.as_ref()
    }

    /// Executes `block` through the cache, building it first if necessary.
    ///
    /// `should_instrument` is consulted for every instruction when the block
    /// is built (this is the tool callback DynamoRIO gives its clients), and
    /// `static_private` is stamped onto the fresh copy
    /// ([`CachedBlock::static_private`]). Returns `(was_built, &CachedBlock)`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist in `program`.
    pub fn execute<F>(
        &mut self,
        program: &Program,
        block: BlockId,
        static_private: bool,
        mut should_instrument: F,
    ) -> (bool, &CachedBlock)
    where
        F: FnMut(InstrId) -> bool,
    {
        self.stats.dispatches += 1;
        let idx = block.raw() as usize;
        // Hot path: the block is resident — one lookup, no rebuild. The
        // borrow is scoped so the cold build path below stays legal, and the
        // returned reference is re-derived afterwards (a no-op at runtime).
        let resident = matches!(self.blocks.get(idx), Some(Some(_)));
        if resident {
            self.stats.linked_dispatches += 1;
            let hot_threshold = self.hot_threshold;
            let entry = self.blocks[idx].as_mut().expect("checked resident");
            entry.executions += 1;
            if !entry.in_trace && entry.executions >= hot_threshold {
                entry.in_trace = true;
                self.stats.traces_built += 1;
            }
            return (false, &*entry);
        }
        // Cold path: build (and instrument) the block.
        {
            let static_block = program
                .block(block)
                .unwrap_or_else(|| panic!("{block:?} not present in program"));
            let mut instrumented_mem_instrs = 0;
            let mut instr_mask = 0u64;
            let instrumented: Vec<bool> = static_block
                .iter_ids()
                .enumerate()
                .map(|(pos, (id, instr))| {
                    let inst = should_instrument(id);
                    if inst && instr.is_mem() {
                        instrumented_mem_instrs += 1;
                    }
                    if inst && pos < 64 {
                        instr_mask |= 1u64 << pos;
                    }
                    inst
                })
                .collect();
            if idx >= self.generations.len() {
                self.generations.resize(idx + 1, 0);
            }
            self.generations[idx] += 1;
            self.stats.blocks_built += 1;
            self.stats.instrs_emitted += static_block.len() as u64;
            if idx >= self.blocks.len() {
                self.blocks.resize_with(idx + 1, || None);
            }
            self.blocks[idx] = Some(CachedBlock {
                block,
                instrumented,
                instr_mask,
                instrumented_mem_instrs,
                static_private,
                executions: 0,
                generation: self.generations[idx],
                in_trace: false,
            });
        }

        let hot_threshold = self.hot_threshold;
        let entry = self.blocks[idx].as_mut().expect("just inserted");
        entry.executions += 1;
        if !entry.in_trace && entry.executions >= hot_threshold {
            entry.in_trace = true;
            self.stats.traces_built += 1;
        }
        (true, &*entry)
    }

    /// Flushes every cached block containing `instr` (in this model, the one
    /// block the instruction belongs to). Returns the number of blocks
    /// removed.
    pub fn flush_instr(&mut self, instr: InstrId) -> usize {
        self.stats.flush_requests += 1;
        if self.evict(instr.block()) {
            self.stats.blocks_flushed += 1;
            1
        } else {
            0
        }
    }

    fn evict(&mut self, block: BlockId) -> bool {
        match self.blocks.get_mut(block.raw() as usize) {
            Some(slot) => slot.take().is_some(),
            None => false,
        }
    }

    /// Flushes a set of blocks (e.g. every block touching a page whose
    /// contents changed). Returns the number of blocks removed.
    pub fn flush_blocks(&mut self, blocks: &HashSet<BlockId>) -> usize {
        self.stats.flush_requests += 1;
        let mut removed = 0;
        for &b in blocks {
            if self.evict(b) {
                removed += 1;
            }
        }
        self.stats.blocks_flushed += removed as u64;
        removed
    }

    /// Empties the whole cache (used on reset).
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Serializes the cache — resident copies, per-slot generation counters,
    /// promotion threshold and statistics — into `out`.
    pub(crate) fn encode_snapshot(&self, out: &mut SectionWriter) {
        out.put_u64(self.hot_threshold);
        out.put_usize(self.generations.len());
        for &g in &self.generations {
            out.put_u32(g);
        }
        out.put_usize(self.blocks.len());
        out.put_usize(self.len());
        for (idx, slot) in self.blocks.iter().enumerate() {
            let Some(b) = slot else { continue };
            out.put_usize(idx);
            out.put_u32(b.block.raw());
            out.put_usize(b.instrumented.len());
            for &flag in &b.instrumented {
                out.put_bool(flag);
            }
            out.put_u64(b.instr_mask);
            out.put_usize(b.instrumented_mem_instrs);
            out.put_bool(b.static_private);
            out.put_u64(b.executions);
            out.put_u32(b.generation);
            out.put_bool(b.in_trace);
        }
        out.put_u64(self.stats.blocks_built);
        out.put_u64(self.stats.instrs_emitted);
        out.put_u64(self.stats.dispatches);
        out.put_u64(self.stats.linked_dispatches);
        out.put_u64(self.stats.flush_requests);
        out.put_u64(self.stats.blocks_flushed);
        out.put_u64(self.stats.traces_built);
    }

    /// Rebuilds a cache from its serialized form. Slots are filled directly
    /// (never through [`CodeCache::execute`]) so statistics and generation
    /// counters come back exactly as recorded.
    pub(crate) fn decode_snapshot(r: &mut SectionReader) -> Result<Self, SnapshotError> {
        let hot_threshold = r.get_u64()?;
        if hot_threshold == 0 {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                "code cache hot threshold must be non-zero",
            ));
        }
        let gens = r.get_usize()?;
        let mut generations = Vec::with_capacity(gens.min(1 << 20));
        for _ in 0..gens {
            generations.push(r.get_u32()?);
        }
        let slots = r.get_usize()?;
        let resident = r.get_usize()?;
        let mut blocks: Vec<Option<CachedBlock>> = Vec::new();
        blocks.resize_with(slots, || None);
        for _ in 0..resident {
            let idx = r.get_usize()?;
            let slot = blocks.get_mut(idx).ok_or_else(|| {
                SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("cached block index {idx} out of range (slots {slots})"),
                )
            })?;
            if slot.is_some() {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("duplicate cached block at slot {idx}"),
                ));
            }
            let block = BlockId::new(r.get_u32()?);
            let instr_count = r.get_usize()?;
            let mut instrumented = Vec::with_capacity(instr_count.min(1 << 16));
            for _ in 0..instr_count {
                instrumented.push(r.get_bool()?);
            }
            let instr_mask = r.get_u64()?;
            let instrumented_mem_instrs = r.get_usize()?;
            let static_private = r.get_bool()?;
            let executions = r.get_u64()?;
            let generation = r.get_u32()?;
            let in_trace = r.get_bool()?;
            *slot = Some(CachedBlock {
                block,
                instrumented,
                instr_mask,
                instrumented_mem_instrs,
                static_private,
                executions,
                generation,
                in_trace,
            });
        }
        let stats = CodeCacheStats {
            blocks_built: r.get_u64()?,
            instrs_emitted: r.get_u64()?,
            dispatches: r.get_u64()?,
            linked_dispatches: r.get_u64()?,
            flush_requests: r.get_u64()?,
            blocks_flushed: r.get_u64()?,
            traces_built: r.get_u64()?,
        };
        Ok(CodeCache {
            blocks,
            generations,
            hot_threshold,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::StaticInstr;
    use aikido_types::{AccessKind, AddrMode};

    fn program() -> (Program, BlockId) {
        let mut p = Program::new();
        let b = p.add_block(vec![
            StaticInstr::Mem {
                kind: AccessKind::Read,
                mode: AddrMode::Direct,
            },
            StaticInstr::Compute,
            StaticInstr::Mem {
                kind: AccessKind::Write,
                mode: AddrMode::Indirect,
            },
        ]);
        (p, b)
    }

    #[test]
    fn first_execution_builds_then_reuses() {
        let (p, b) = program();
        let mut c = CodeCache::new();
        let (built, _) = c.execute(&p, b, false, |_| false);
        assert!(built);
        let (built, cached) = c.execute(&p, b, false, |_| false);
        assert!(!built);
        assert_eq!(cached.executions, 2);
        assert_eq!(c.stats().blocks_built, 1);
        assert_eq!(c.stats().dispatches, 2);
        assert_eq!(c.stats().linked_dispatches, 1);
    }

    #[test]
    fn instrumentation_decisions_are_recorded_at_build_time() {
        let (p, b) = program();
        let mut c = CodeCache::new();
        let target = p.block(b).unwrap().instr_id(2);
        let (_, cached) = c.execute(&p, b, false, |id| id == target);
        assert_eq!(cached.instrumented, vec![false, false, true]);
        assert_eq!(cached.instrumented_count(), 1);
        assert_eq!(cached.instr_mask, 0b100);
        assert!(cached.mask_is_exact());
    }

    #[test]
    fn instr_mask_mirrors_the_flag_vector_after_rebuilds() {
        let (p, b) = program();
        let mut c = CodeCache::new();
        let (_, cached) = c.execute(&p, b, false, |_| false);
        assert_eq!(cached.instr_mask, 0);
        let target = p.block(b).unwrap().instr_id(0);
        c.flush_instr(target);
        let (_, cached) = c.execute(&p, b, false, |id| id == target);
        assert_eq!(cached.instr_mask, 0b001);
        for (i, &flag) in cached.instrumented.clone().iter().enumerate() {
            assert_eq!(cached.instr_mask & (1 << i) != 0, flag);
        }
    }

    #[test]
    fn flush_and_rebuild_bumps_generation() {
        let (p, b) = program();
        let mut c = CodeCache::new();
        c.execute(&p, b, false, |_| false);
        let target = p.block(b).unwrap().instr_id(0);
        assert_eq!(c.flush_instr(target), 1);
        assert!(!c.contains(b));
        let (built, cached) = c.execute(&p, b, false, |id| id == target);
        assert!(built);
        assert_eq!(cached.generation, 2);
        assert!(cached.instrumented[0]);
        assert_eq!(c.stats().blocks_flushed, 1);
    }

    #[test]
    fn flushing_uncached_block_is_a_noop() {
        let (_p, _b) = program();
        let mut c = CodeCache::new();
        assert_eq!(c.flush_instr(InstrId::new(BlockId::new(7), 0)), 0);
        assert_eq!(c.stats().blocks_flushed, 0);
        assert_eq!(c.stats().flush_requests, 1);
    }

    #[test]
    fn hot_blocks_are_promoted_to_traces_once() {
        let (p, b) = program();
        let mut c = CodeCache::with_hot_threshold(3);
        for _ in 0..5 {
            c.execute(&p, b, false, |_| false);
        }
        assert!(c.get(b).unwrap().in_trace);
        assert_eq!(c.stats().traces_built, 1);
    }

    #[test]
    fn static_private_is_stamped_at_build_time_and_survives_rebuilds() {
        let (p, b) = program();
        let mut c = CodeCache::new();
        let (_, cached) = c.execute(&p, b, true, |_| false);
        assert!(cached.static_private);
        // The flag belongs to the cached copy: a rebuild re-stamps whatever
        // the caller passes next.
        let target = p.block(b).unwrap().instr_id(0);
        c.flush_instr(target);
        let (built, cached) = c.execute(&p, b, false, |_| false);
        assert!(built);
        assert!(!cached.static_private);
    }

    #[test]
    fn flush_blocks_removes_listed_blocks_only() {
        let mut p = Program::new();
        let b0 = p.add_block(vec![StaticInstr::Compute]);
        let b1 = p.add_block(vec![StaticInstr::Compute]);
        let mut c = CodeCache::new();
        c.execute(&p, b0, false, |_| false);
        c.execute(&p, b1, false, |_| false);
        let mut set = HashSet::new();
        set.insert(b0);
        assert_eq!(c.flush_blocks(&set), 1);
        assert!(!c.contains(b0));
        assert!(c.contains(b1));
    }
}

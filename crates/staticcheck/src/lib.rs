//! Static guest-program pre-analysis for the Aikido reproduction: an
//! escape-and-lockset verifier that derives — and audits — the DBI
//! instrumentation masks.
//!
//! Aikido's dynamic pipeline discovers sharing by fault: every instruction
//! is born uninstrumented, and only instructions caught touching a shared
//! page get instrumentation (§3). This crate adds the complementary *static*
//! direction: before the first instruction executes, it analyses the
//! workload's static [`Program`](aikido_dbi::Program), its
//! [`MemoryLayout`](aikido_workloads::MemoryLayout) geometry and its
//! declarative [`ScenarioModel`](aikido_workloads::ScenarioModel) (the
//! reproduction's stand-in for debug info and symbol tables) and proves,
//! per basic block:
//!
//! * **footprints** — which memory areas each block's reads and writes can
//!   target, with direct addresses resolved to concrete pages
//!   ([`AccessSummary`]);
//! * **escape** — which blocks only ever touch memory private to the
//!   executing thread ([`BlockClass::ProvenPrivate`]), given the region
//!   geometry is sound (pairwise-disjoint regions);
//! * **static lockset** — which shared blocks follow Eraser's
//!   consistent-lock discipline, verified against the layout's lock slices
//!   ([`BlockClass::LockProtected`]).
//!
//! The result is a serialisable, deterministic [`StaticReport`]. Its derived
//! [`StaticPlan`](aikido_dbi::StaticPlan) feeds the DBI engine at JIT time:
//! proven-private blocks extend the simulator's whole-block fast path (they
//! can skip per-instruction mask checks even when the block is too wide for
//! an exact mask), and the may-share masks bound the instrumentation the
//! sharing detector should ever request. The plan is advice, never
//! authority — an unsound claim can cost a counted
//! [`static_bound_violations`](aikido_dbi::DbiEngine::static_bound_violations)
//! but cannot change which analysis callbacks are delivered.
//!
//! Because proofs come from the scenario model and the geometry — never from
//! the workload generator's trusted block labels — the claims are worth
//! auditing: [`StaticAudit`] wraps any
//! [`SharedDataAnalysis`](aikido_types::SharedDataAnalysis) and checks every
//! delivered access against the proven-private claims, counting (never
//! acting on) violations. The equivalence harness runs with the oracle
//! installed; the mutation tests inject deliberately unsound claims and
//! assert the oracle catches each one.
//!
//! # Examples
//!
//! ```
//! use aikido_staticcheck::{BlockClass, StaticReport};
//! use aikido_workloads::{Workload, WorkloadSpec};
//!
//! let spec = WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.02);
//! let workload = Workload::generate(&spec);
//! let report = StaticReport::for_workload(&workload);
//!
//! // Every generator-labeled private block is proven independently.
//! assert!(workload
//!     .private_block_ids()
//!     .iter()
//!     .all(|&b| report.is_proven_private(b)));
//! let plan = report.plan(); // feeds DbiEngine::install_static_plan
//! assert_eq!(plan.proven_private.len(), workload.program().len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod audit;
mod report;

pub use audit::StaticAudit;
pub use report::{
    AccessSummary, BlockClass, CoverageStats, FootprintSet, StaticReport, MAX_DIRECT_PAGES,
};

//! The runtime audit oracle: checks every delivered access against the
//! static pass's proven-private claims.

use aikido_types::{
    AccessContext, AccessKind, AnalysisReport, LockId, SharedDataAnalysis, ThreadId, Vpn,
};
use aikido_workloads::MemoryLayout;

use crate::report::StaticReport;

/// A [`SharedDataAnalysis`] decorator that audits the static pre-analysis.
///
/// The wrapper forwards every callback to the inner analysis unchanged —
/// same deliveries, same costs, byte-identical reports — and on the way
/// through checks the oracle invariant: *no access performed by a block the
/// static pass proved thread-private may target a shared page*. Violations
/// are counted, never acted on, so a wrapped run is observably identical to
/// an unwrapped one; the equivalence harness runs with the wrapper installed
/// and asserts [`StaticAudit::violations`]` == 0` at the end.
///
/// The mutation tests instead construct the wrapper from deliberately
/// unsound claims ([`StaticAudit::with_claims`]) and assert every injected
/// claim is caught.
#[derive(Debug)]
pub struct StaticAudit<A> {
    inner: A,
    /// `claims[b]` — block *b* was declared thread-private.
    claims: Vec<bool>,
    /// The shared region as a half-open raw-address interval.
    shared_start: u64,
    shared_end: u64,
    violations: u64,
}

impl<A: SharedDataAnalysis> StaticAudit<A> {
    /// Wraps `inner`, auditing the proven-private claims of `report` against
    /// the shared region of `layout`.
    pub fn new(inner: A, report: &StaticReport, layout: &MemoryLayout) -> Self {
        Self::with_claims(inner, report.proven_private_claims(), layout)
    }

    /// Wraps `inner` with raw claims — the injection entry point for the
    /// mutation tests. `claims[b]` asserts block *b* never touches shared
    /// memory; blocks beyond the vector are unclaimed.
    pub fn with_claims(inner: A, claims: Vec<bool>, layout: &MemoryLayout) -> Self {
        let shared_start = layout.shared_base().raw();
        StaticAudit {
            inner,
            claims,
            shared_start,
            shared_end: shared_start + layout.shared_bytes(),
            violations: 0,
        }
    }

    /// Number of audited accesses that contradicted a claim: the access came
    /// from a claimed-private block yet targeted the shared region.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Asserts the oracle saw no violation.
    ///
    /// # Panics
    ///
    /// Panics if any audited access contradicted a claim.
    pub fn assert_clean(&self) {
        assert_eq!(
            self.violations, 0,
            "static pre-analysis audit: {} access(es) from claimed-private blocks hit shared pages",
            self.violations
        );
    }

    /// The wrapped analysis.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the decorator.
    pub fn into_inner(self) -> A {
        self.inner
    }

    #[inline]
    fn audit(&mut self, cx: &AccessContext) {
        let block = cx.instr.block().raw() as usize;
        if self.claims.get(block).copied().unwrap_or(false)
            && cx.addr.raw() >= self.shared_start
            && cx.addr.raw() < self.shared_end
        {
            self.violations += 1;
        }
    }
}

impl<A: SharedDataAnalysis> SharedDataAnalysis for StaticAudit<A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_access(&mut self, cx: AccessContext) {
        self.audit(&cx);
        self.inner.on_access(cx);
    }

    fn on_access_batch(&mut self, run: &[AccessContext], costs: &mut Vec<u64>) {
        for cx in run {
            self.audit(cx);
        }
        // Forward the whole run so the inner analysis keeps its batched
        // entry point (and its batched costs) exactly as without the audit.
        self.inner.on_access_batch(run, costs);
    }

    fn on_access_run(
        &mut self,
        page: Vpn,
        kind: AccessKind,
        run: &[AccessContext],
        costs: &mut Vec<u64>,
    ) {
        for cx in run {
            self.audit(cx);
        }
        self.inner.on_access_run(page, kind, run, costs);
    }

    fn on_acquire(&mut self, thread: ThreadId, lock: LockId) {
        self.inner.on_acquire(thread, lock);
    }

    fn on_release(&mut self, thread: ThreadId, lock: LockId) {
        self.inner.on_release(thread, lock);
    }

    fn on_fork(&mut self, parent: ThreadId, child: ThreadId) {
        self.inner.on_fork(parent, child);
    }

    fn on_join(&mut self, parent: ThreadId, child: ThreadId) {
        self.inner.on_join(parent, child);
    }

    fn on_barrier(&mut self, threads: &[ThreadId], id: u32) {
        self.inner.on_barrier(threads, id);
    }

    fn on_thread_exit(&mut self, thread: ThreadId) {
        self.inner.on_thread_exit(thread);
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        self.inner.reports()
    }

    fn access_cost_cycles(&self) -> u64 {
        self.inner.access_cost_cycles()
    }

    fn last_access_cost_cycles(&self) -> u64 {
        self.inner.last_access_cost_cycles()
    }

    fn sync_cost_cycles(&self) -> u64 {
        self.inner.sync_cost_cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_types::{Addr, BlockId, InstrId, NullAnalysis};
    use aikido_workloads::WorkloadSpec;

    fn layout() -> MemoryLayout {
        MemoryLayout::from_spec(&WorkloadSpec::default())
    }

    fn access(block: u32, addr: u64) -> AccessContext {
        AccessContext {
            thread: ThreadId::new(1),
            addr: Addr::new(addr),
            kind: AccessKind::Write,
            size: 8,
            instr: InstrId::new(BlockId::new(block), 0),
        }
    }

    #[test]
    fn honest_private_accesses_pass_the_audit() {
        let l = layout();
        let private = l.private_base(ThreadId::new(1)).raw();
        let mut audit = StaticAudit::with_claims(NullAnalysis::new(), vec![true, false], &l);
        audit.on_access(access(0, private));
        audit.on_access(access(1, l.shared_base().raw())); // unclaimed block
        assert_eq!(audit.violations(), 0);
        audit.assert_clean();
        assert_eq!(audit.inner().accesses(), 2, "deliveries are forwarded");
    }

    #[test]
    fn shared_access_from_a_claimed_block_is_a_violation() {
        let l = layout();
        let mut audit = StaticAudit::with_claims(NullAnalysis::new(), vec![true], &l);
        audit.on_access(access(0, l.shared_base().raw() + 64));
        assert_eq!(audit.violations(), 1);
        // The access itself is still delivered: the oracle observes, never
        // filters.
        assert_eq!(audit.inner().accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "static pre-analysis audit")]
    fn assert_clean_panics_on_violations() {
        let l = layout();
        let mut audit = StaticAudit::with_claims(NullAnalysis::new(), vec![true], &l);
        audit.on_access(access(0, l.shared_base().raw()));
        audit.assert_clean();
    }

    #[test]
    fn batched_deliveries_are_audited_and_forwarded() {
        let l = layout();
        let shared = l.shared_base().raw();
        let mut audit = StaticAudit::with_claims(NullAnalysis::new(), vec![true], &l);
        let run = [access(0, shared), access(0, shared + 8)];
        let mut costs = Vec::new();
        audit.on_access_batch(&run, &mut costs);
        assert_eq!(audit.violations(), 2);
        assert_eq!(costs, vec![0, 0], "inner batched costs are untouched");
        audit.on_access_run(
            Addr::new(shared).page(),
            AccessKind::Write,
            &run,
            &mut costs,
        );
        assert_eq!(audit.violations(), 4);
        assert_eq!(audit.into_inner().accesses(), 4);
    }

    #[test]
    fn blocks_beyond_the_claim_vector_are_unclaimed() {
        let l = layout();
        let mut audit = StaticAudit::with_claims(NullAnalysis::new(), Vec::new(), &l);
        audit.on_access(access(40, l.shared_base().raw()));
        assert_eq!(audit.violations(), 0);
    }

    #[test]
    fn audit_of_an_honest_report_is_constructible() {
        let w = aikido_workloads::Workload::generate(
            &WorkloadSpec::parsec("blackscholes").unwrap().scaled(0.02),
        );
        let report = StaticReport::for_workload(&w);
        let audit = StaticAudit::new(NullAnalysis::new(), &report, w.layout());
        assert_eq!(audit.violations(), 0);
    }
}

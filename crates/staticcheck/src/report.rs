//! The static pre-analysis proper: footprints, escape classification, the
//! Eraser-style static lockset pass, and the derived instrumentation plan.

use serde::{Deserialize, Serialize};

use aikido_dbi::{Program, StaticPlan};
use aikido_types::{AddrMode, BlockId, ThreadId, PAGE_SIZE};
use aikido_workloads::{AddrWindow, HeldLocks, MemoryLayout, ScenarioModel, UsePhase, Workload};

/// Upper bound on the pages enumerated per block in
/// [`AccessSummary::direct_pages`]; blocks whose windows span more set
/// [`AccessSummary::direct_pages_truncated`] instead of allocating without
/// bound.
pub const MAX_DIRECT_PAGES: usize = 1024;

/// The sharing verdict the static pass reaches for one basic block.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockClass {
    /// The block has no memory-referencing instructions (sync wrappers,
    /// pure compute); there is nothing to instrument.
    SyncOnly,
    /// The scenario model declares no use of the block: it can never
    /// execute, so it can never touch shared memory.
    Unreachable,
    /// Every memory access of the block is proven to target memory private
    /// to the executing thread. These blocks never need instrumentation.
    ProvenPrivate,
    /// The block writes shared memory, but only from the main thread and
    /// strictly before the first `fork` — every access happens-before all
    /// worker activity.
    PreForkInit,
    /// Every shared access of the block is consistently protected by a lock
    /// whose slice the static lockset pass verified (Eraser's discipline,
    /// checked statically).
    LockProtected,
    /// The block's shared accesses only read data written before the fork
    /// (read-mostly sharing).
    ReadOnlyShared,
    /// The pass could not prove anything useful: the block may race, or it
    /// mixes windows the analysis cannot separate. The sharing detector must
    /// keep full authority over it.
    MayShare,
}

/// Which of the workload's memory areas a block's accesses can fall in.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintSet {
    /// The executing thread's own private region.
    pub private_own: bool,
    /// The read-mostly shared area.
    pub read_mostly: bool,
    /// The lock-protected shared area.
    pub locked: bool,
    /// The deliberately racy shared area.
    pub racy: bool,
}

impl FootprintSet {
    /// True if any shared area is in the footprint.
    pub fn touches_shared(&self) -> bool {
        self.read_mostly || self.locked || self.racy
    }
}

/// The per-block access summary: instruction counts by addressing mode, the
/// read and write footprints, and the bounded page enumeration for blocks
/// with direct (immediate-address) instructions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessSummary {
    /// The block summarised.
    pub block: BlockId,
    /// Memory-referencing instructions in the block.
    pub mem_instrs: usize,
    /// Memory instructions with immediate (direct) addresses.
    pub direct_mem_instrs: usize,
    /// Memory instructions with register (indirect) addresses; bounded only
    /// by the reachable regions of the block's windows.
    pub indirect_mem_instrs: usize,
    /// Areas the block's reads can fall in.
    pub reads: FootprintSet,
    /// Areas the block's writes can fall in.
    pub writes: FootprintSet,
    /// Pages a direct instruction's immediate can resolve to, sorted and
    /// deduplicated; capped at [`MAX_DIRECT_PAGES`]. Empty when the block has
    /// no direct memory instructions.
    pub direct_pages: Vec<u64>,
    /// True if the window enumeration hit the cap and `direct_pages` is a
    /// prefix of the real set.
    pub direct_pages_truncated: bool,
}

/// Aggregate coverage of the static pass over one program, for the bench
/// output and the ROADMAP numbers.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Total basic blocks in the program.
    pub total_blocks: usize,
    /// Blocks with no memory instructions.
    pub sync_only: usize,
    /// Blocks without any declared use.
    pub unreachable: usize,
    /// Work blocks: blocks that execute and reference memory
    /// (`total_blocks - sync_only - unreachable`).
    pub work_blocks: usize,
    /// Work blocks proven thread-private.
    pub proven_private: usize,
    /// Work blocks proven pre-fork initialisation.
    pub pre_fork_init: usize,
    /// Work blocks proven consistently lock-protected.
    pub lock_protected: usize,
    /// Work blocks proven read-only sharing.
    pub read_only_shared: usize,
    /// Work blocks left to the dynamic sharing detector.
    pub may_share: usize,
    /// `proven_private / work_blocks` (0.0 for empty programs).
    pub proven_private_fraction: f64,
    /// Total memory instructions in the program.
    pub total_mem_instrs: usize,
    /// Memory instructions inside proven-private blocks — the instrumentation
    /// decisions the derived plan rules out statically.
    pub proven_private_mem_instrs: usize,
}

/// The serialisable product of the static pre-analysis: one summary and one
/// class per block, the derived may-share masks, and aggregate coverage.
///
/// The report is a pure function of `(program, layout, model)`; two runs over
/// the same workload serialise to identical bytes (pinned by tests).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StaticReport {
    /// Threads in the analysed workload.
    pub threads: u32,
    /// Per-block access summaries, indexed by raw block id.
    pub summaries: Vec<AccessSummary>,
    /// Per-block verdicts, indexed by raw block id.
    pub classes: Vec<BlockClass>,
    /// Derived may-share instrumentation masks (bit *i* = instruction *i*
    /// may need instrumentation), indexed by raw block id. Zero for
    /// proven-private, sync-only and unreachable blocks.
    pub masks: Vec<u64>,
    /// Aggregate coverage of the pass.
    pub coverage: CoverageStats,
}

/// What one `(use, pattern)` contribution proves about a block.
#[derive(Copy, Clone, PartialEq, Eq)]
enum Contribution {
    Private,
    Init,
    ReadOnly,
    Locked,
    Unprotected,
}

/// The memory geometry the proofs are checked against, resolved once per
/// analysis from the layout.
struct Geometry {
    read_mostly: (u64, u64),
    locked: (u64, u64),
    racy: (u64, u64),
    privates: Vec<(u64, u64)>,
    /// True if the shared region and every private region are pairwise
    /// disjoint — the precondition for "private window ⇒ never shared".
    privates_sound: bool,
    /// True if every lock's slice lies inside the locked area and the slices
    /// are pairwise disjoint — Eraser's consistent-lock discipline, checked
    /// statically over the layout.
    lock_discipline: bool,
}

fn interval(base: aikido_types::Addr, len: u64) -> (u64, u64) {
    (base.raw(), base.raw() + len)
}

fn within((start, end): (u64, u64), (ostart, oend): (u64, u64)) -> bool {
    start >= ostart && end <= oend && start < end
}

impl Geometry {
    fn resolve(layout: &MemoryLayout, model: &ScenarioModel) -> Self {
        let (rm_base, rm_len) = layout.read_mostly_area();
        let (lk_base, lk_len) = layout.locked_area();
        let (ry_base, ry_len) = layout.racy_area();
        let privates: Vec<(u64, u64)> = (0..layout.threads())
            .map(|t| {
                let base = layout.private_base(ThreadId::new(t));
                interval(base, layout.private_pages() * PAGE_SIZE)
            })
            .collect();

        // Escape precondition: no region overlaps another, so an address in
        // a private region provably is not shared (and not another thread's).
        let regions = layout.regions();
        let mut bounds: Vec<(u64, u64)> = regions
            .iter()
            .map(|&(base, pages)| interval(base, pages * PAGE_SIZE))
            .collect();
        bounds.sort_unstable();
        let privates_sound = bounds.windows(2).all(|w| w[0].1 <= w[1].0);

        // Static lockset discipline: every slice inside the locked area,
        // slices pairwise disjoint. Sorting by base reduces the pairwise
        // check to adjacent pairs.
        let locked_iv = interval(lk_base, lk_len);
        let mut slices: Vec<(u64, u64)> = (0..model.locks)
            .map(|l| {
                let (base, len) = layout.lock_slice(l);
                interval(base, len)
            })
            .collect();
        slices.sort_unstable();
        let lock_discipline = model.locks > 0
            && slices.iter().all(|&s| within(s, locked_iv))
            && slices.windows(2).all(|w| w[0].1 <= w[1].0);

        Geometry {
            read_mostly: interval(rm_base, rm_len),
            locked: locked_iv,
            racy: interval(ry_base, ry_len),
            privates,
            privates_sound,
            lock_discipline,
        }
    }

    /// What one pattern of one use proves, given the use's phase and lock
    /// regime. `writes` is the pattern's write capability.
    fn classify(
        &self,
        phase: UsePhase,
        held: HeldLocks,
        window: AddrWindow,
        writes: bool,
    ) -> Contribution {
        match window {
            AddrWindow::PrivateOfExecutingThread => {
                if self.privates_sound {
                    Contribution::Private
                } else {
                    Contribution::Unprotected
                }
            }
            AddrWindow::Area { base, len } => {
                let iv = interval(base, len);
                if within(iv, self.read_mostly) {
                    match phase {
                        // Main-thread-only, pre-fork: happens-before every
                        // worker access, writes included.
                        UsePhase::PreForkMainOnly => Contribution::Init,
                        UsePhase::Work if !writes => Contribution::ReadOnly,
                        UsePhase::Work => Contribution::Unprotected,
                    }
                } else {
                    // The racy area, a fixed window into the locked area
                    // (no held-lock proof), or a window the geometry cannot
                    // place: nothing provable.
                    Contribution::Unprotected
                }
            }
            AddrWindow::HeldLockSlice => {
                if held == HeldLocks::OneOfAll && self.lock_discipline {
                    Contribution::Locked
                } else {
                    Contribution::Unprotected
                }
            }
        }
    }

    /// Adds the areas `window` can reach to `set`.
    fn footprint(&self, window: AddrWindow, set: &mut FootprintSet) {
        match window {
            AddrWindow::PrivateOfExecutingThread => set.private_own = true,
            AddrWindow::Area { base, len } => {
                let iv = interval(base, len);
                if within(iv, self.read_mostly) {
                    set.read_mostly = true;
                } else if within(iv, self.racy) {
                    set.racy = true;
                } else if within(iv, self.locked) {
                    set.locked = true;
                } else {
                    // Not resolvable to a single area: assume every shared
                    // area is reachable.
                    set.read_mostly = true;
                    set.locked = true;
                    set.racy = true;
                }
            }
            AddrWindow::HeldLockSlice => set.locked = true,
        }
    }

    /// Appends the pages `window` spans to `pages`, up to the cap. Returns
    /// `false` once the cap is hit.
    fn window_pages(&self, window: AddrWindow, pages: &mut Vec<u64>) -> bool {
        let push_range = |(start, end): (u64, u64), pages: &mut Vec<u64>| -> bool {
            if start >= end {
                return true;
            }
            for page in (start / PAGE_SIZE)..=((end - 1) / PAGE_SIZE) {
                if pages.len() >= MAX_DIRECT_PAGES {
                    return false;
                }
                pages.push(page);
            }
            true
        };
        match window {
            AddrWindow::PrivateOfExecutingThread => {
                for &iv in &self.privates {
                    if !push_range(iv, pages) {
                        return false;
                    }
                }
                true
            }
            AddrWindow::Area { base, len } => push_range(interval(base, len), pages),
            AddrWindow::HeldLockSlice => push_range(self.locked, pages),
        }
    }
}

impl StaticReport {
    /// Runs the full static pass: access summaries, escape classification,
    /// static lockset verification and mask derivation. Pure function of its
    /// inputs; never consults generator labels.
    pub fn analyze(program: &Program, layout: &MemoryLayout, model: &ScenarioModel) -> Self {
        let geometry = Geometry::resolve(layout, model);
        let mut summaries = Vec::with_capacity(program.len());
        let mut classes = Vec::with_capacity(program.len());
        let mut masks = Vec::with_capacity(program.len());

        for block in program.iter() {
            let mem_instrs = block.mem_instr_count();
            let direct_mem_instrs = block
                .instrs()
                .iter()
                .filter(
                    |i| matches!(i, aikido_dbi::StaticInstr::Mem { mode, .. } if *mode == AddrMode::Direct),
                )
                .count();

            let uses: Vec<_> = model.uses_of(block.id()).collect();
            let mut reads = FootprintSet::default();
            let mut writes = FootprintSet::default();
            let mut direct_pages = Vec::new();
            let mut truncated = false;
            for u in &uses {
                for p in &u.patterns {
                    if p.reads {
                        geometry.footprint(p.window, &mut reads);
                    }
                    if p.writes {
                        geometry.footprint(p.window, &mut writes);
                    }
                    if direct_mem_instrs > 0 && !geometry.window_pages(p.window, &mut direct_pages)
                    {
                        truncated = true;
                    }
                }
            }
            direct_pages.sort_unstable();
            direct_pages.dedup();

            let class = if mem_instrs == 0 {
                BlockClass::SyncOnly
            } else if uses.is_empty() {
                BlockClass::Unreachable
            } else {
                let mut contributions = Vec::new();
                for u in &uses {
                    if u.patterns.is_empty() {
                        // A use that addresses memory in a way the model
                        // does not describe: assume the worst.
                        contributions.push(Contribution::Unprotected);
                    }
                    for p in &u.patterns {
                        contributions.push(geometry.classify(u.phase, u.held, p.window, p.writes));
                    }
                }
                // Weakest contribution wins: one unprotectable pattern makes
                // the whole block the dynamic detector's problem.
                if contributions.contains(&Contribution::Unprotected) {
                    BlockClass::MayShare
                } else if contributions.contains(&Contribution::ReadOnly) {
                    BlockClass::ReadOnlyShared
                } else if contributions.contains(&Contribution::Locked) {
                    BlockClass::LockProtected
                } else if contributions.contains(&Contribution::Init) {
                    BlockClass::PreForkInit
                } else {
                    BlockClass::ProvenPrivate
                }
            };

            let mask = match class {
                BlockClass::ProvenPrivate | BlockClass::SyncOnly | BlockClass::Unreachable => 0,
                _ => {
                    let mut m = 0u64;
                    for (pos, instr) in block.instrs().iter().enumerate().take(64) {
                        if instr.is_mem() {
                            m |= 1u64 << pos;
                        }
                    }
                    m
                }
            };

            summaries.push(AccessSummary {
                block: block.id(),
                mem_instrs,
                direct_mem_instrs,
                indirect_mem_instrs: mem_instrs - direct_mem_instrs,
                reads,
                writes,
                direct_pages,
                direct_pages_truncated: truncated,
            });
            classes.push(class);
            masks.push(mask);
        }

        let coverage = Self::coverage_of(program, &classes);
        StaticReport {
            threads: model.threads,
            summaries,
            classes,
            masks,
            coverage,
        }
    }

    /// Runs the pass over a generated workload.
    pub fn for_workload(workload: &Workload) -> Self {
        Self::analyze(
            workload.program(),
            workload.layout(),
            workload.scenario_model(),
        )
    }

    fn coverage_of(program: &Program, classes: &[BlockClass]) -> CoverageStats {
        let mut c = CoverageStats {
            total_blocks: classes.len(),
            total_mem_instrs: program.total_mem_instrs(),
            ..CoverageStats::default()
        };
        for (block, class) in program.iter().zip(classes) {
            match class {
                BlockClass::SyncOnly => c.sync_only += 1,
                BlockClass::Unreachable => c.unreachable += 1,
                BlockClass::ProvenPrivate => {
                    c.proven_private += 1;
                    c.proven_private_mem_instrs += block.mem_instr_count();
                }
                BlockClass::PreForkInit => c.pre_fork_init += 1,
                BlockClass::LockProtected => c.lock_protected += 1,
                BlockClass::ReadOnlyShared => c.read_only_shared += 1,
                BlockClass::MayShare => c.may_share += 1,
            }
        }
        c.work_blocks = c.total_blocks - c.sync_only - c.unreachable;
        c.proven_private_fraction = if c.work_blocks > 0 {
            c.proven_private as f64 / c.work_blocks as f64
        } else {
            0.0
        };
        c
    }

    /// The verdict for `block` (`None` if the block is outside the analysed
    /// program).
    pub fn class(&self, block: BlockId) -> Option<BlockClass> {
        self.classes.get(block.raw() as usize).copied()
    }

    /// True if `block` was proven thread-private.
    pub fn is_proven_private(&self, block: BlockId) -> bool {
        self.class(block) == Some(BlockClass::ProvenPrivate)
    }

    /// The proven-thread-private claims as a dense bit vector indexed by raw
    /// block id — the shape the runtime audit oracle consumes.
    pub fn proven_private_claims(&self) -> Vec<bool> {
        self.classes
            .iter()
            .map(|c| *c == BlockClass::ProvenPrivate)
            .collect()
    }

    /// The derived instrumentation plan for the DBI engine.
    pub fn plan(&self) -> StaticPlan {
        StaticPlan {
            proven_private: self.proven_private_claims(),
            may_share_masks: self.masks.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_workloads::{aliasing_stress_workload, producer_consumer_workload, WorkloadSpec};

    fn report_for(spec: &WorkloadSpec) -> (Workload, StaticReport) {
        let w = Workload::generate(spec);
        let r = StaticReport::for_workload(&w);
        (w, r)
    }

    #[test]
    fn parsec_private_blocks_are_proven_without_reading_labels() {
        for name in ["raytrace", "blackscholes", "vips", "fluidanimate"] {
            let spec = WorkloadSpec::parsec(name).unwrap().scaled(0.02);
            let (w, r) = report_for(&spec);
            for &b in w.private_block_ids() {
                assert!(
                    r.is_proven_private(b),
                    "{name}: labeled-private {b:?} not proven (class {:?})",
                    r.class(b)
                );
            }
            for &b in w.shared_block_ids() {
                assert!(
                    !r.is_proven_private(b),
                    "{name}: labeled-shared {b:?} claimed private"
                );
            }
        }
    }

    #[test]
    fn race_free_parsec_shared_blocks_are_read_only_shared() {
        let spec = WorkloadSpec::parsec("raytrace").unwrap().scaled(0.02);
        let (w, r) = report_for(&spec);
        for &b in w.shared_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::ReadOnlyShared));
        }
    }

    #[test]
    fn fully_locked_shared_blocks_are_lock_protected() {
        let (w, r) = report_for(&producer_consumer_workload(4));
        for &b in w.shared_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::LockProtected));
        }
        for &b in w.private_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::ProvenPrivate));
        }
    }

    #[test]
    fn racy_workloads_leave_shared_blocks_to_the_detector() {
        let (w, r) = report_for(&aliasing_stress_workload(4));
        for &b in w.shared_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::MayShare));
        }
        // Private blocks stay provable even under aliasing pressure.
        for &b in w.private_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::ProvenPrivate));
        }
    }

    #[test]
    fn overlapping_lock_slices_defeat_the_lockset_pass() {
        // 1024 locks over a one-page locked area: slices are 8 bytes each,
        // 1024 * 8 > 4096, so slices alias and Eraser's discipline cannot be
        // established. The blocks must not be certified lock-protected.
        let spec = WorkloadSpec {
            shared_pages: 2,
            locks: 1024,
            ..producer_consumer_workload(4)
        };
        let (w, r) = report_for(&spec);
        for &b in w.shared_block_ids() {
            assert_eq!(r.class(b), Some(BlockClass::MayShare));
        }
    }

    #[test]
    fn init_blocks_are_pre_fork_and_sync_blocks_are_sync_only() {
        let spec = WorkloadSpec::parsec("raytrace").unwrap().scaled(0.02);
        let (_w, r) = report_for(&spec);
        let first_sync =
            2 + spec.private_static_blocks as usize + spec.shared_static_blocks as usize;
        assert_eq!(r.class(BlockId::new(0)), Some(BlockClass::PreForkInit));
        assert_eq!(r.class(BlockId::new(1)), Some(BlockClass::PreForkInit));
        for i in 0..6 {
            assert_eq!(
                r.class(BlockId::new((first_sync + i) as u32)),
                Some(BlockClass::SyncOnly)
            );
        }
    }

    #[test]
    fn masks_cover_exactly_the_mem_instrs_of_unproven_blocks() {
        let spec = WorkloadSpec::parsec("vips").unwrap().scaled(0.02);
        let (w, r) = report_for(&spec);
        for block in w.program().iter() {
            let mask = r.masks[block.id().raw() as usize];
            match r.class(block.id()).unwrap() {
                BlockClass::ProvenPrivate | BlockClass::SyncOnly | BlockClass::Unreachable => {
                    assert_eq!(mask, 0)
                }
                _ => {
                    for (pos, instr) in block.instrs().iter().enumerate().take(64) {
                        assert_eq!(mask & (1 << pos) != 0, instr.is_mem());
                    }
                }
            }
        }
    }

    #[test]
    fn summaries_footprint_matches_block_roles() {
        let spec = WorkloadSpec::parsec("raytrace").unwrap().scaled(0.02);
        let (w, r) = report_for(&spec);
        for &b in w.private_block_ids() {
            let s = &r.summaries[b.raw() as usize];
            assert!(s.reads.private_own || s.writes.private_own);
            assert!(!s.reads.touches_shared() && !s.writes.touches_shared());
            assert_eq!(s.mem_instrs, s.direct_mem_instrs + s.indirect_mem_instrs);
        }
        for &b in w.shared_block_ids() {
            let s = &r.summaries[b.raw() as usize];
            assert!(s.reads.touches_shared());
            assert!(
                !s.writes.read_mostly,
                "work-phase writes into the read-mostly area would be races"
            );
        }
    }

    #[test]
    fn direct_pages_are_sorted_bounded_and_disjoint_from_shared_for_private_blocks() {
        let spec = WorkloadSpec::parsec("raytrace").unwrap().scaled(0.02);
        let (w, r) = report_for(&spec);
        let shared_start = w.layout().shared_base().raw() / PAGE_SIZE;
        let shared_end = shared_start + w.layout().shared_pages();
        for &b in w.private_block_ids() {
            let s = &r.summaries[b.raw() as usize];
            if s.direct_mem_instrs == 0 {
                assert!(s.direct_pages.is_empty());
                continue;
            }
            assert!(!s.direct_pages.is_empty());
            assert!(s.direct_pages.windows(2).all(|p| p[0] < p[1]));
            assert!(s.direct_pages.len() <= MAX_DIRECT_PAGES);
            assert!(s
                .direct_pages
                .iter()
                .all(|&p| p < shared_start || p >= shared_end));
        }
    }

    #[test]
    fn plan_mirrors_classes_and_masks() {
        let spec = WorkloadSpec::parsec("fluidanimate").unwrap().scaled(0.02);
        let (w, r) = report_for(&spec);
        let plan = r.plan();
        assert_eq!(plan.proven_private.len(), w.program().len());
        assert_eq!(plan.may_share_masks, r.masks);
        for block in w.program().iter() {
            assert_eq!(
                plan.proven_private[block.id().raw() as usize],
                r.is_proven_private(block.id())
            );
        }
    }

    #[test]
    fn analysis_is_deterministic_down_to_the_serialised_bytes() {
        let spec = WorkloadSpec::parsec("swaptions").unwrap().scaled(0.02);
        let a = StaticReport::for_workload(&Workload::generate(&spec));
        let b = StaticReport::for_workload(&Workload::generate(&spec));
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn coverage_counts_are_consistent() {
        let spec = WorkloadSpec::parsec("canneal").unwrap().scaled(0.02);
        let (_, r) = report_for(&spec);
        let c = &r.coverage;
        assert_eq!(c.total_blocks, r.classes.len());
        assert_eq!(
            c.work_blocks,
            c.proven_private
                + c.pre_fork_init
                + c.lock_protected
                + c.read_only_shared
                + c.may_share
        );
        assert!(c.proven_private_fraction > 0.0);
        assert!(c.proven_private_mem_instrs <= c.total_mem_instrs);
    }
}

//! The AikidoVM hypervisor model itself.
//!
//! # Hot-path layout
//!
//! `touch` is called for every simulated memory access, so the per-thread
//! state is laid out for index arithmetic rather than map lookups:
//!
//! * Threads get a dense *slot* at registration (`ThreadId` → `usize` into a
//!   `Vec<ThreadShard>`); every per-access operation works on slots.
//! * Each thread's shadow page table and protection table are flat chunked
//!   tables ([`ShadowPageTable`], [`ThreadProtTable`]).
//! * Each thread carries a one-entry software TLB caching its last successful
//!   translation, so the dominant "same page, access allowed" case is a
//!   compare and two loads before falling into the slow fault loop.

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{AccessKind, Addr, AikidoError, Prot, Result, ThreadId, Vpn};

use crate::fault::{AikidoFault, Segv};
use crate::frames::FrameId;
use crate::hypercall::{AikidoLib, FaultMailbox, Hypercall};
use crate::kernel::{GuestKernel, KernelEvent, KernelFaultResolution, Vma};
use crate::shadow_pt::ShadowPte;
use crate::shard::ThreadShard;
use crate::snap::{get_kind, get_prot, put_kind, put_prot};
use crate::stats::VmStats;

/// Configuration of the hypervisor model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Page used as the fake address for faulting reads (must not collide
    /// with application mappings).
    pub fake_read_fault_page: Addr,
    /// Page used as the fake address for faulting writes.
    pub fake_write_fault_page: Addr,
    /// Address of the mailbox word holding the true faulting address.
    pub mailbox_addr: Addr,
    /// If true (the default), the `Init` hypercall is issued automatically at
    /// construction.
    pub auto_init: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            fake_read_fault_page: Addr::new(0x7fff_f000_0000),
            fake_write_fault_page: Addr::new(0x7fff_f000_1000),
            mailbox_addr: Addr::new(0x7fff_f000_2000),
            auto_init: true,
        }
    }
}

/// Costable events that occurred while servicing a single access.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Charges {
    /// VM exits taken.
    pub vm_exits: u32,
    /// Shadow page-table entries written.
    pub shadow_syncs: u32,
    /// Native faults resolved by the guest kernel.
    pub native_faults: u32,
    /// Shadow page-table misses filled lazily.
    pub shadow_misses: u32,
    /// Temporary-unprotection restorations triggered.
    pub temp_reprotections: u32,
}

impl Charges {
    /// True if no chargeable event occurred (the access hit the TLB/shadow
    /// table and proceeded at native speed).
    pub fn is_free(&self) -> bool {
        *self == Charges::default()
    }
}

/// Result of a userspace memory access submitted to the hypervisor.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TouchOutcome {
    /// The access proceeds.
    Ok,
    /// The access was blocked by an Aikido per-thread protection; the fault
    /// has been delivered to the guest userspace handler.
    AikidoFault(AikidoFault),
    /// The access is fatal (unmapped memory or an unrecoverable protection
    /// violation).
    Fatal(Segv),
}

/// Outcome plus cost information for one access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Touch {
    /// What happened to the access.
    pub outcome: TouchOutcome,
    /// Chargeable events incurred while servicing it.
    pub charges: Charges,
}

/// Direct-index slot lookup above this thread-id bound falls back to a scan
/// (guards the dense `ThreadId → slot` vector against pathological ids).
const MAX_DENSE_THREAD_INDEX: usize = 1 << 16;
const NO_SLOT: u32 = u32::MAX;

/// The AikidoVM hypervisor: per-thread shadow page tables, per-thread
/// protection tables, fault classification and delivery.
///
/// See the crate-level documentation for an overview and an example.
#[derive(Debug)]
pub struct AikidoVm {
    config: VmConfig,
    kernel: GuestKernel,
    /// Per-thread state, indexed by registration slot.
    threads: Vec<ThreadShard>,
    /// `ThreadId::index()` → slot (dense ids only; `NO_SLOT` = unregistered).
    slots: Vec<u32>,
    mailbox: FaultMailbox,
    initialized: bool,
    current_thread: Option<ThreadId>,
    /// Pages temporarily unprotected for the guest kernel, kept sorted.
    temp_unprotected: Vec<Vpn>,
    /// Reusable buffer for [`AikidoVm::restore_temp_protections`].
    restore_scratch: Vec<Vpn>,
    stats: VmStats,
}

const MAX_FAULT_RETRIES: usize = 8;

impl AikidoVm {
    /// Creates a hypervisor instance with the given configuration.
    pub fn new(config: VmConfig) -> Self {
        let mut vm = AikidoVm {
            mailbox: FaultMailbox {
                read_fault_page: config.fake_read_fault_page,
                write_fault_page: config.fake_write_fault_page,
                mailbox: config.mailbox_addr,
                last_true_addr: None,
                last_kind: None,
            },
            initialized: false,
            current_thread: None,
            temp_unprotected: Vec::new(),
            restore_scratch: Vec::new(),
            stats: VmStats::new(),
            kernel: GuestKernel::new(),
            threads: Vec::new(),
            slots: Vec::new(),
            config,
        };
        if vm.config.auto_init {
            vm.initialized = true;
        }
        vm
    }

    /// The guest kernel model (read-only access for inspection).
    pub fn kernel(&self) -> &GuestKernel {
        &self.kernel
    }

    /// Hypervisor statistics accumulated so far.
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// The guest-side library view over the fault mailbox.
    pub fn aikido_lib(&self) -> AikidoLib {
        AikidoLib::new(self.mailbox)
    }

    /// Threads registered with the hypervisor, in id order.
    pub fn threads(&self) -> Vec<ThreadId> {
        let mut ids: Vec<ThreadId> = self.threads.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids
    }

    /// The dense slot of `thread`, or `None` if it is not registered.
    #[inline]
    fn slot_of(&self, thread: ThreadId) -> Option<usize> {
        let idx = thread.index();
        if idx < self.slots.len() {
            let slot = self.slots[idx];
            if slot == NO_SLOT {
                None
            } else {
                Some(slot as usize)
            }
        } else if idx >= MAX_DENSE_THREAD_INDEX {
            self.threads.iter().position(|s| s.id == thread)
        } else {
            None
        }
    }

    #[inline]
    fn require_slot(&self, thread: ThreadId) -> Result<usize> {
        self.slot_of(thread)
            .ok_or(AikidoError::UnknownThread { thread })
    }

    /// Issues a hypercall from the guest.
    ///
    /// # Errors
    ///
    /// Returns an error if the interface is used before `Init`, if a thread is
    /// registered twice, or if a protection request names an unknown thread.
    pub fn hypercall(&mut self, call: Hypercall) -> Result<()> {
        self.stats.hypercalls += 1;
        self.stats.vm_exits += 1;
        match call {
            Hypercall::Init {
                read_fault_page,
                write_fault_page,
                mailbox,
            } => {
                self.mailbox.read_fault_page = read_fault_page;
                self.mailbox.write_fault_page = write_fault_page;
                self.mailbox.mailbox = mailbox;
                self.initialized = true;
                Ok(())
            }
            Hypercall::RegisterThread { thread } => {
                self.require_init()?;
                if self.slot_of(thread).is_some() {
                    return Err(AikidoError::ThreadAlreadyRegistered { thread });
                }
                let slot = self.threads.len() as u32;
                let idx = thread.index();
                if idx < MAX_DENSE_THREAD_INDEX {
                    if idx >= self.slots.len() {
                        self.slots.resize(idx + 1, NO_SLOT);
                    }
                    self.slots[idx] = slot;
                }
                self.threads.push(ThreadShard::new(thread));
                if self.current_thread.is_none() {
                    self.current_thread = Some(thread);
                }
                Ok(())
            }
            Hypercall::ProtectRange {
                thread,
                base,
                pages,
                prot,
            } => {
                self.require_init()?;
                let slot = self.require_slot(thread)?;
                for page in base.page().span(pages) {
                    self.set_slot_restriction(slot, page, Some(prot));
                }
                Ok(())
            }
            Hypercall::UnprotectRange {
                thread,
                base,
                pages,
            } => {
                self.require_init()?;
                let slot = self.require_slot(thread)?;
                for page in base.page().span(pages) {
                    self.set_slot_restriction(slot, page, None);
                }
                Ok(())
            }
            Hypercall::ProtectAllThreads { base, pages, prot } => {
                self.require_init()?;
                for page in base.page().span(pages) {
                    // One temp-unprotection and guest-PTE resolution per page,
                    // shared across every thread's table update.
                    if let Ok(pos) = self.temp_unprotected.binary_search(&page) {
                        self.temp_unprotected.remove(pos);
                    }
                    let guest = self.kernel.pte(page);
                    for state in &mut self.threads {
                        state.prot.set(page, prot);
                        if let Some(guest_pte) = guest {
                            let effective = state.prot.effective(page, guest_pte.prot);
                            if state.set_shadow_prot(page, effective) {
                                self.stats.shadow_syncs += 1;
                            }
                        }
                    }
                }
                Ok(())
            }
            Hypercall::ContextSwitch { from, to } => {
                self.require_init()?;
                self.require_slot(from)?;
                self.require_slot(to)?;
                self.stats.context_switches += 1;
                self.current_thread = Some(to);
                Ok(())
            }
        }
    }

    /// Registers a thread (convenience wrapper over the hypercall).
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::ThreadAlreadyRegistered`] if the thread is
    /// already known.
    pub fn register_thread(&mut self, thread: ThreadId) -> Result<()> {
        self.hypercall(Hypercall::RegisterThread { thread })
    }

    /// Creates a new anonymous mapping in the guest process.
    ///
    /// # Errors
    ///
    /// See [`GuestKernel::mmap`].
    pub fn mmap(&mut self, base: Addr, pages: u64, prot: Prot) -> Result<Vma> {
        let vma = self.kernel.mmap(base, pages, prot)?;
        self.sync_kernel_events();
        Ok(vma)
    }

    /// Creates a mirror mapping: `mirror_base` maps the same frames as the
    /// mapping containing `source_base`.
    ///
    /// # Errors
    ///
    /// See [`GuestKernel::mmap_shared_of`].
    pub fn mmap_mirror(&mut self, source_base: Addr, mirror_base: Addr) -> Result<Vma> {
        let vma = self.kernel.mmap_shared_of(source_base, mirror_base)?;
        self.sync_kernel_events();
        Ok(vma)
    }

    /// Removes the mapping starting at `base`.
    ///
    /// # Errors
    ///
    /// See [`GuestKernel::munmap`].
    pub fn munmap(&mut self, base: Addr) -> Result<()> {
        self.kernel.munmap(base)?;
        self.sync_kernel_events();
        Ok(())
    }

    /// Performs a userspace memory access on behalf of `thread`.
    ///
    /// Native faults (demand paging, shadow misses, protection upgrades) are
    /// resolved internally and reported only through [`Charges`]; Aikido
    /// faults and fatal faults are surfaced in the [`TouchOutcome`].
    ///
    /// The fast path — same page as the thread's last translation, access
    /// allowed — is a one-entry TLB hit and returns a free [`Touch`] without
    /// consulting the shadow table.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnknownThread`] if the thread was never
    /// registered.
    #[inline]
    pub fn touch(&mut self, thread: ThreadId, addr: Addr, kind: AccessKind) -> Result<Touch> {
        let slot = self.require_slot(thread)?;
        let page = addr.page();

        // Software-TLB fast path (the dominant case on unshared pages).
        if let Some(tlb_prot) = self.threads[slot].tlb_lookup(page) {
            if tlb_prot.allows_user(kind) {
                return Ok(Touch {
                    outcome: TouchOutcome::Ok,
                    charges: Charges::default(),
                });
            }
        }
        self.touch_slow(slot, thread, addr, kind)
    }

    /// The TLB-miss continuation of [`AikidoVm::touch`]: shadow walk, fault
    /// classification and retry loop.
    #[cold]
    fn touch_slow(
        &mut self,
        slot: usize,
        thread: ThreadId,
        addr: Addr,
        kind: AccessKind,
    ) -> Result<Touch> {
        let page = addr.page();
        let mut charges = Charges::default();
        for _ in 0..MAX_FAULT_RETRIES {
            let shadow_pte = self.threads[slot].shadow.lookup(page);
            let Some(pte) = shadow_pte else {
                // Shadow miss: a VM exit to consult the guest page table.
                charges.vm_exits += 1;
                self.stats.vm_exits += 1;
                match self.kernel.pte(page) {
                    Some(guest_pte) => {
                        charges.shadow_misses += 1;
                        self.stats.shadow_misses += 1;
                        self.install_shadow(slot, page, guest_pte.frame, guest_pte.prot);
                        charges.shadow_syncs += 1;
                        continue;
                    }
                    None => match self.kernel.handle_fault(addr, kind) {
                        KernelFaultResolution::Resolved => {
                            charges.native_faults += 1;
                            self.stats.native_faults += 1;
                            self.sync_kernel_events();
                            continue;
                        }
                        KernelFaultResolution::Fatal => {
                            self.stats.fatal_faults += 1;
                            return Ok(Touch {
                                outcome: TouchOutcome::Fatal(Segv { thread, addr, kind }),
                                charges,
                            });
                        }
                    },
                }
            };

            if pte.prot.allows_user(kind) {
                self.threads[slot].tlb_fill(page, pte.prot);
                return Ok(Touch {
                    outcome: TouchOutcome::Ok,
                    charges,
                });
            }

            // The access faults. Classify it.
            charges.vm_exits += 1;
            self.stats.vm_exits += 1;

            if self.is_temp_unprotected(page) {
                // The page had been temporarily unprotected for the guest
                // kernel; restore every temporarily unprotected page and
                // re-evaluate (§3.2.6).
                self.restore_temp_protections();
                charges.temp_reprotections += 1;
                continue;
            }

            let guest_prot = self.kernel.pte(page).map(|g| g.prot).unwrap_or(Prot::NONE);

            if guest_prot.allows_user(kind) {
                // The guest would have allowed it: this is an Aikido fault.
                let fault = self.deliver_aikido_fault(thread, addr, kind);
                return Ok(Touch {
                    outcome: TouchOutcome::AikidoFault(fault),
                    charges,
                });
            }

            // The guest protection itself denies the access: native fault.
            match self.kernel.handle_fault(addr, kind) {
                KernelFaultResolution::Resolved => {
                    charges.native_faults += 1;
                    self.stats.native_faults += 1;
                    self.sync_kernel_events();
                    continue;
                }
                KernelFaultResolution::Fatal => {
                    self.stats.fatal_faults += 1;
                    return Ok(Touch {
                        outcome: TouchOutcome::Fatal(Segv { thread, addr, kind }),
                        charges,
                    });
                }
            }
        }

        // Retry budget exhausted: treat as fatal so callers notice.
        self.stats.fatal_faults += 1;
        Ok(Touch {
            outcome: TouchOutcome::Fatal(Segv { thread, addr, kind }),
            charges,
        })
    }

    /// Models the guest *kernel* accessing a user page on behalf of `thread`
    /// (for example copying a system-call argument). If the page is blocked by
    /// an Aikido protection the hypervisor emulates the kernel instruction and
    /// temporarily unprotects the page with the user bit cleared (§3.2.6).
    ///
    /// Returns `true` if emulation (and temporary unprotection) occurred.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnknownThread`] for unregistered threads and
    /// [`AikidoError::UnmappedAddress`] if the page cannot be demand-paged in.
    pub fn kernel_touch(&mut self, thread: ThreadId, addr: Addr, kind: AccessKind) -> Result<bool> {
        let slot = self.require_slot(thread)?;
        let page = addr.page();

        // Make sure the page exists in the guest page table (the kernel would
        // demand-page it like any other access).
        if self.kernel.pte(page).is_none() {
            match self.kernel.handle_fault(addr, kind) {
                KernelFaultResolution::Resolved => {
                    self.stats.native_faults += 1;
                    self.sync_kernel_events();
                }
                KernelFaultResolution::Fatal => {
                    return Err(AikidoError::UnmappedAddress { addr });
                }
            }
        }
        let guest_prot = self.kernel.pte(page).map(|g| g.prot).unwrap_or(Prot::NONE);

        // A page already temporarily unprotected for the kernel needs no
        // further emulation until a userspace access restores protections.
        if self.is_temp_unprotected(page) && guest_prot.allows_kernel(kind) {
            return Ok(false);
        }

        let effective = self.threads[slot].prot.effective(page, guest_prot);
        if effective.allows_kernel(kind) {
            return Ok(false);
        }

        // Aikido protection blocked the kernel: emulate the access and
        // temporarily unprotect the page, but keep it inaccessible to
        // userspace (clear the USER bit).
        self.stats.vm_exits += 1;
        self.stats.kernel_emulations += 1;
        self.stats.temp_unprotections += 1;
        if let Err(pos) = self.temp_unprotected.binary_search(&page) {
            self.temp_unprotected.insert(pos, page);
        }
        debug_assert!(
            self.temp_unprotected.windows(2).all(|w| w[0] < w[1]),
            "temp-unprotected page list lost its sort order"
        );
        let temp_prot = guest_prot.without_user();
        let frame = self.kernel.pte(page).map(|g| g.frame);
        if let Some(frame) = frame {
            for state in &mut self.threads {
                state.install_shadow(
                    page,
                    ShadowPte {
                        frame,
                        prot: temp_prot,
                    },
                );
            }
            self.stats.shadow_syncs += self.threads.len() as u64;
        }
        Ok(true)
    }

    /// The pages currently temporarily unprotected for the guest kernel, as a
    /// sorted slice (no allocation). Callers must not re-sort it — the list
    /// is maintained in order by binary-search insertion, and the assertion
    /// here keeps that contract honest in debug builds.
    pub fn temp_unprotected_pages(&self) -> &[Vpn] {
        debug_assert!(
            self.temp_unprotected.windows(2).all(|w| w[0] < w[1]),
            "temp-unprotected page list lost its sort order"
        );
        &self.temp_unprotected
    }

    #[inline]
    fn is_temp_unprotected(&self, page: Vpn) -> bool {
        self.temp_unprotected.binary_search(&page).is_ok()
    }

    /// The per-thread restriction installed for `page`, if any.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnknownThread`] for unregistered threads.
    pub fn thread_restriction(&self, thread: ThreadId, page: Vpn) -> Result<Option<Prot>> {
        let slot = self.require_slot(thread)?;
        Ok(self.threads[slot].prot.get(page))
    }

    /// The effective protection `thread` currently has on `page` (as its
    /// shadow page table would enforce), if the page has a guest mapping.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnknownThread`] for unregistered threads.
    pub fn effective_prot(&self, thread: ThreadId, page: Vpn) -> Result<Option<Prot>> {
        let slot = self.require_slot(thread)?;
        let state = &self.threads[slot];
        if let Some(pte) = state.shadow.lookup(page) {
            return Ok(Some(pte.prot));
        }
        Ok(self
            .kernel
            .pte(page)
            .map(|g| state.prot.effective(page, g.prot)))
    }

    /// Resolves `addr` to the machine frame backing it for `thread`, demand
    /// paging it in if necessary but ignoring protections. Used by tests and
    /// by the mirror-page machinery to verify aliasing.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnmappedAddress`] if no VMA covers the address.
    pub fn resolve_frame(&mut self, addr: Addr) -> Result<FrameId> {
        let page = addr.page();
        if let Some(pte) = self.kernel.pte(page) {
            return Ok(pte.frame);
        }
        match self.kernel.handle_fault(addr, AccessKind::Read) {
            KernelFaultResolution::Resolved => {
                self.stats.native_faults += 1;
                self.sync_kernel_events();
                Ok(self
                    .kernel
                    .pte(page)
                    .expect("fault resolution installs a PTE")
                    .frame)
            }
            KernelFaultResolution::Fatal => Err(AikidoError::UnmappedAddress { addr }),
        }
    }

    fn require_init(&self) -> Result<()> {
        if self.initialized {
            Ok(())
        } else {
            Err(AikidoError::NotInitialized)
        }
    }

    fn set_slot_restriction(&mut self, slot: usize, page: Vpn, prot: Option<Prot>) {
        // Re-applying a protection means the page is no longer in the
        // "temporarily unprotected for the kernel" state.
        if let Ok(pos) = self.temp_unprotected.binary_search(&page) {
            self.temp_unprotected.remove(pos);
        }
        let guest = self.kernel.pte(page);
        let state = &mut self.threads[slot];
        match prot {
            Some(p) => state.prot.set(page, p),
            None => state.prot.clear(page),
        }
        if let Some(guest_pte) = guest {
            let effective = state.prot.effective(page, guest_pte.prot);
            if state.set_shadow_prot(page, effective) {
                self.stats.shadow_syncs += 1;
            }
        }
    }

    fn install_shadow(&mut self, slot: usize, page: Vpn, frame: FrameId, guest_prot: Prot) {
        let state = &mut self.threads[slot];
        let effective = state.prot.effective(page, guest_prot);
        state.install_shadow(
            page,
            ShadowPte {
                frame,
                prot: effective,
            },
        );
        self.stats.shadow_syncs += 1;
    }

    fn sync_kernel_events(&mut self) {
        for event in self.kernel.drain_events() {
            self.stats.guest_pte_writes += 1;
            match event {
                KernelEvent::PteInstalled { page, pte } => {
                    for state in &mut self.threads {
                        let effective = state.prot.effective(page, pte.prot);
                        state.install_shadow(
                            page,
                            ShadowPte {
                                frame: pte.frame,
                                prot: effective,
                            },
                        );
                    }
                    self.stats.shadow_syncs += self.threads.len() as u64;
                }
                KernelEvent::PteRemoved { page } => {
                    for state in &mut self.threads {
                        state.invalidate_shadow(page);
                    }
                    self.stats.shadow_syncs += self.threads.len() as u64;
                }
            }
        }
    }

    fn restore_temp_protections(&mut self) {
        self.stats.temp_reprotections += 1;
        // Drain in place: swap the page list into the reusable scratch buffer
        // so the retry loop allocates nothing.
        let mut pages = std::mem::take(&mut self.restore_scratch);
        std::mem::swap(&mut pages, &mut self.temp_unprotected);
        for &page in &pages {
            let Some(guest_pte) = self.kernel.pte(page) else {
                continue;
            };
            for state in &mut self.threads {
                let effective = state.prot.effective(page, guest_pte.prot);
                state.install_shadow(
                    page,
                    ShadowPte {
                        frame: guest_pte.frame,
                        prot: effective,
                    },
                );
            }
            self.stats.shadow_syncs += self.threads.len() as u64;
        }
        pages.clear();
        self.restore_scratch = pages;
    }

    fn deliver_aikido_fault(
        &mut self,
        thread: ThreadId,
        addr: Addr,
        kind: AccessKind,
    ) -> AikidoFault {
        self.stats.aikido_faults_delivered += 1;
        self.mailbox.record(addr, kind);
        AikidoFault {
            thread,
            fake_addr: self.mailbox.fake_addr_for(kind),
            true_addr: addr,
            kind,
        }
    }

    /// Serializes the entire hypervisor — configuration, the guest kernel,
    /// every thread shard (shadow page table and protection table; the
    /// per-thread software TLBs are pure accelerators and are rebuilt empty
    /// on restore), the fault mailbox, the temporarily-unprotected page list
    /// and the statistics — into one snapshot section.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        out.put_u64(self.config.fake_read_fault_page.raw());
        out.put_u64(self.config.fake_write_fault_page.raw());
        out.put_u64(self.config.mailbox_addr.raw());
        out.put_bool(self.config.auto_init);

        self.kernel.encode_snapshot(out);

        out.put_usize(self.threads.len());
        for shard in &self.threads {
            out.put_u32(shard.id.raw());
            out.put_usize(shard.shadow.len());
            for (page, pte) in shard.shadow.iter() {
                out.put_u64(page.raw());
                out.put_u64(pte.frame.raw());
                put_prot(out, pte.prot);
            }
            out.put_usize(shard.prot.len());
            for (page, prot) in shard.prot.iter() {
                out.put_u64(page.raw());
                put_prot(out, prot);
            }
        }

        out.put_u64(self.mailbox.read_fault_page.raw());
        out.put_u64(self.mailbox.write_fault_page.raw());
        out.put_u64(self.mailbox.mailbox.raw());
        match self.mailbox.last_true_addr {
            None => out.put_u8(0),
            Some(addr) => {
                out.put_u8(1);
                out.put_u64(addr.raw());
            }
        }
        match self.mailbox.last_kind {
            None => out.put_u8(0),
            Some(kind) => {
                out.put_u8(1);
                put_kind(out, kind);
            }
        }

        out.put_bool(self.initialized);
        match self.current_thread {
            None => out.put_u8(0),
            Some(t) => {
                out.put_u8(1);
                out.put_u32(t.raw());
            }
        }
        out.put_usize(self.temp_unprotected.len());
        for page in &self.temp_unprotected {
            out.put_u64(page.raw());
        }

        for v in [
            self.stats.vm_exits,
            self.stats.aikido_faults_delivered,
            self.stats.native_faults,
            self.stats.fatal_faults,
            self.stats.shadow_syncs,
            self.stats.shadow_misses,
            self.stats.hypercalls,
            self.stats.context_switches,
            self.stats.kernel_emulations,
            self.stats.temp_unprotections,
            self.stats.temp_reprotections,
            self.stats.guest_pte_writes,
        ] {
            out.put_u64(v);
        }
    }

    /// Rebuilds a hypervisor from a section written by
    /// [`AikidoVm::encode_snapshot`]. Thread registration slots are recomputed
    /// from the serialized shard order and every software TLB starts empty
    /// (TLB hits and misses are proven outcome-identical, so this cannot
    /// change behavior).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed payload.
    pub fn decode_snapshot(
        r: &mut SectionReader<'_>,
    ) -> std::result::Result<AikidoVm, SnapshotError> {
        let config = VmConfig {
            fake_read_fault_page: Addr::new(r.get_u64()?),
            fake_write_fault_page: Addr::new(r.get_u64()?),
            mailbox_addr: Addr::new(r.get_u64()?),
            auto_init: r.get_bool()?,
        };
        let kernel = GuestKernel::decode_snapshot(r)?;

        let shard_count = r.get_usize()?;
        let mut threads = Vec::with_capacity(shard_count.min(1 << 10));
        let mut slots = Vec::new();
        for slot in 0..shard_count {
            let id = ThreadId::new(r.get_u32()?);
            let mut shard = ThreadShard::new(id);
            let shadow_count = r.get_usize()?;
            for _ in 0..shadow_count {
                let page = Vpn::new(r.get_u64()?);
                let frame = FrameId::new(r.get_u64()?);
                let prot = get_prot(r)?;
                shard.shadow.install(page, ShadowPte { frame, prot });
            }
            let prot_count = r.get_usize()?;
            for _ in 0..prot_count {
                let page = Vpn::new(r.get_u64()?);
                let prot = get_prot(r)?;
                shard.prot.set(page, prot);
            }
            let idx = id.index();
            if idx < MAX_DENSE_THREAD_INDEX {
                if idx >= slots.len() {
                    slots.resize(idx + 1, NO_SLOT);
                }
                if slots[idx] != NO_SLOT {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("thread {} appears in two shards", id.raw()),
                    ));
                }
                slots[idx] = slot as u32;
            }
            threads.push(shard);
        }

        let mailbox = FaultMailbox {
            read_fault_page: Addr::new(r.get_u64()?),
            write_fault_page: Addr::new(r.get_u64()?),
            mailbox: Addr::new(r.get_u64()?),
            last_true_addr: match r.get_u8()? {
                0 => None,
                1 => Some(Addr::new(r.get_u64()?)),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid option tag {other}"),
                    ))
                }
            },
            last_kind: match r.get_u8()? {
                0 => None,
                1 => Some(get_kind(r)?),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid option tag {other}"),
                    ))
                }
            },
        };

        let initialized = r.get_bool()?;
        let current_thread = match r.get_u8()? {
            0 => None,
            1 => Some(ThreadId::new(r.get_u32()?)),
            other => {
                return Err(SnapshotError::new(
                    r.section_name(),
                    r.offset(),
                    format!("invalid option tag {other}"),
                ))
            }
        };
        let temp_count = r.get_usize()?;
        let mut temp_unprotected = Vec::with_capacity(temp_count.min(1 << 10));
        for _ in 0..temp_count {
            temp_unprotected.push(Vpn::new(r.get_u64()?));
        }
        if !temp_unprotected.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapshotError::new(
                r.section_name(),
                r.offset(),
                "temporarily-unprotected page list is not strictly sorted".to_string(),
            ));
        }

        let mut stats = VmStats::new();
        for field in [
            &mut stats.vm_exits,
            &mut stats.aikido_faults_delivered,
            &mut stats.native_faults,
            &mut stats.fatal_faults,
            &mut stats.shadow_syncs,
            &mut stats.shadow_misses,
            &mut stats.hypercalls,
            &mut stats.context_switches,
            &mut stats.kernel_emulations,
            &mut stats.temp_unprotections,
            &mut stats.temp_reprotections,
            &mut stats.guest_pte_writes,
        ] {
            *field = r.get_u64()?;
        }

        Ok(AikidoVm {
            config,
            kernel,
            threads,
            slots,
            mailbox,
            initialized,
            current_thread,
            temp_unprotected,
            restore_scratch: Vec::new(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(threads: u32) -> (AikidoVm, Vec<ThreadId>) {
        let mut vm = AikidoVm::new(VmConfig::default());
        let tids: Vec<ThreadId> = (0..threads).map(ThreadId::new).collect();
        for &t in &tids {
            vm.register_thread(t).unwrap();
        }
        (vm, tids)
    }

    fn page_addr(n: u64) -> Addr {
        Vpn::new(n).base()
    }

    #[test]
    fn first_touch_demand_pages_then_runs_free() {
        let (mut vm, t) = setup(1);
        vm.mmap(page_addr(100), 4, Prot::RW_USER).unwrap();

        let first = vm.touch(t[0], page_addr(100), AccessKind::Write).unwrap();
        assert!(matches!(first.outcome, TouchOutcome::Ok));
        assert!(first.charges.native_faults >= 1);

        let second = vm
            .touch(t[0], page_addr(100).offset(8), AccessKind::Read)
            .unwrap();
        assert!(matches!(second.outcome, TouchOutcome::Ok));
        assert!(
            second.charges.is_free(),
            "second touch must be free: {:?}",
            second.charges
        );
    }

    #[test]
    fn unmapped_access_is_fatal() {
        let (mut vm, t) = setup(1);
        let touch = vm.touch(t[0], page_addr(999), AccessKind::Read).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::Fatal(_)));
        assert_eq!(vm.stats().fatal_faults, 1);
    }

    #[test]
    fn per_thread_protection_faults_only_the_restricted_thread() {
        let (mut vm, t) = setup(2);
        let base = page_addr(50);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        // Touch once from each thread so shadow entries exist.
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.touch(t[1], base, AccessKind::Write).unwrap();

        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();

        let blocked = vm.touch(t[0], base, AccessKind::Read).unwrap();
        match blocked.outcome {
            TouchOutcome::AikidoFault(f) => {
                assert_eq!(f.true_addr, base);
                assert_eq!(f.thread, t[0]);
                assert_eq!(f.fake_addr, VmConfig::default().fake_read_fault_page);
            }
            other => panic!("expected aikido fault, got {other:?}"),
        }
        let ok = vm.touch(t[1], base, AccessKind::Read).unwrap();
        assert!(matches!(ok.outcome, TouchOutcome::Ok));
        assert_eq!(vm.stats().aikido_faults_delivered, 1);
    }

    #[test]
    fn aikido_fault_reports_true_address_via_library() {
        let (mut vm, t) = setup(1);
        let base = page_addr(70);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        let addr = base.offset(0x123);
        let touch = vm.touch(t[0], addr, AccessKind::Write).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::AikidoFault(_)));
        let lib = vm.aikido_lib();
        assert!(lib.is_aikido_pagefault(VmConfig::default().fake_write_fault_page));
        assert_eq!(lib.true_fault_addr(), Some(addr));
        assert_eq!(lib.last_fault_kind(), Some(AccessKind::Write));
    }

    #[test]
    fn unprotect_restores_access() {
        let (mut vm, t) = setup(1);
        let base = page_addr(60);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Read).unwrap().outcome,
            TouchOutcome::AikidoFault(_)
        ));
        vm.hypercall(Hypercall::UnprotectRange {
            thread: t[0],
            base,
            pages: 1,
        })
        .unwrap();
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Read).unwrap().outcome,
            TouchOutcome::Ok
        ));
    }

    #[test]
    fn read_only_restriction_allows_reads_blocks_writes() {
        let (mut vm, t) = setup(1);
        let base = page_addr(61);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::R_USER,
        })
        .unwrap();
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Read).unwrap().outcome,
            TouchOutcome::Ok
        ));
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Write).unwrap().outcome,
            TouchOutcome::AikidoFault(_)
        ));
    }

    #[test]
    fn protect_all_threads_blocks_every_thread() {
        let (mut vm, t) = setup(3);
        let base = page_addr(80);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        for &tid in &t {
            vm.touch(tid, base, AccessKind::Read).unwrap();
        }
        vm.hypercall(Hypercall::ProtectAllThreads {
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        for &tid in &t {
            assert!(matches!(
                vm.touch(tid, base, AccessKind::Read).unwrap().outcome,
                TouchOutcome::AikidoFault(_)
            ));
        }
        assert_eq!(vm.stats().aikido_faults_delivered, 3);
    }

    #[test]
    fn snapshot_roundtrip_preserves_hypervisor_behavior() {
        let (mut vm, t) = setup(2);
        let base = page_addr(300);
        vm.mmap(base, 4, Prot::RW_USER).unwrap();
        vm.mmap_mirror(base, page_addr(4096)).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.touch(t[1], base.offset(0x1000), AccessKind::Read)
            .unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        // Populate the mailbox and the temp-unprotected list.
        assert!(matches!(
            vm.touch(t[0], base.offset(0x8), AccessKind::Read)
                .unwrap()
                .outcome,
            TouchOutcome::AikidoFault(_)
        ));
        assert!(vm.kernel_touch(t[0], base, AccessKind::Read).unwrap());
        assert!(!vm.temp_unprotected_pages().is_empty());

        let mut w = aikido_snapshot::SectionWriter::new(*b"AKVM", 1);
        vm.encode_snapshot(&mut w);
        let mut b = aikido_snapshot::SnapshotBuilder::new();
        b.push(w);
        let snap = b.finish();
        let mut reader = snap.reader().unwrap();
        let mut section = reader.section(*b"AKVM", 1).unwrap();
        let mut restored = AikidoVm::decode_snapshot(&mut section).unwrap();
        section.finish().unwrap();
        reader.finish().unwrap();

        assert_eq!(restored.stats(), vm.stats());
        assert_eq!(restored.threads(), vm.threads());
        assert_eq!(
            restored.temp_unprotected_pages(),
            vm.temp_unprotected_pages()
        );
        assert_eq!(
            restored.aikido_lib().true_fault_addr(),
            vm.aikido_lib().true_fault_addr()
        );
        assert_eq!(
            restored.kernel().installed_ptes(),
            vm.kernel().installed_ptes()
        );
        assert_eq!(restored.kernel().vmas(), vm.kernel().vmas());

        // Future accesses behave identically (including the temp-reprotection
        // path, demand paging of untouched pages, and the Aikido fault path).
        for vm in [&mut vm, &mut restored] {
            let a = vm.touch(t[1], base, AccessKind::Write).unwrap();
            let b = vm.touch(t[0], base, AccessKind::Write).unwrap();
            let c = vm
                .touch(t[0], base.offset(0x3000), AccessKind::Write)
                .unwrap();
            assert!(matches!(a.outcome, TouchOutcome::Ok));
            assert!(matches!(b.outcome, TouchOutcome::AikidoFault(_)));
            assert!(matches!(c.outcome, TouchOutcome::Ok));
        }
        assert_eq!(restored.stats(), vm.stats());
        assert_eq!(
            restored.effective_prot(t[0], base.page()).unwrap(),
            vm.effective_prot(t[0], base.page()).unwrap()
        );
    }

    #[test]
    fn guest_protection_violation_is_not_an_aikido_fault() {
        let (mut vm, t) = setup(1);
        let base = page_addr(90);
        vm.mmap(base, 1, Prot::R_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Read).unwrap();
        let touch = vm.touch(t[0], base, AccessKind::Write).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::Fatal(_)));
        assert_eq!(vm.stats().aikido_faults_delivered, 0);
    }

    #[test]
    fn protection_set_before_first_touch_applies_at_shadow_install() {
        let (mut vm, t) = setup(1);
        let base = page_addr(95);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        let touch = vm.touch(t[0], base, AccessKind::Read).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::AikidoFault(_)));
    }

    #[test]
    fn kernel_access_to_protected_page_is_emulated_and_temporarily_unprotected() {
        let (mut vm, t) = setup(2);
        let base = page_addr(110);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.touch(t[1], base, AccessKind::Write).unwrap();
        vm.hypercall(Hypercall::ProtectAllThreads {
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();

        // Guest kernel copies data into the page on behalf of thread 0.
        let emulated = vm.kernel_touch(t[0], base, AccessKind::Write).unwrap();
        assert!(emulated);
        assert_eq!(vm.stats().kernel_emulations, 1);
        assert_eq!(vm.temp_unprotected_pages(), vec![base.page()]);

        // A second kernel access proceeds without another emulation because
        // the page is temporarily unprotected (user bit cleared only).
        let again = vm.kernel_touch(t[0], base, AccessKind::Write).unwrap();
        assert!(!again);
        assert_eq!(vm.stats().kernel_emulations, 1);

        // The next *userspace* access trips the cleared user bit, the original
        // protections are restored, and the access becomes an Aikido fault.
        let touch = vm.touch(t[1], base, AccessKind::Read).unwrap();
        assert!(matches!(touch.outcome, TouchOutcome::AikidoFault(_)));
        assert!(touch.charges.temp_reprotections >= 1);
        assert!(vm.temp_unprotected_pages().is_empty());
        assert!(vm.stats().temp_reprotections >= 1);
    }

    #[test]
    fn kernel_access_to_unrestricted_page_needs_no_emulation() {
        let (mut vm, t) = setup(1);
        let base = page_addr(120);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        assert!(!vm.kernel_touch(t[0], base, AccessKind::Write).unwrap());
        assert_eq!(vm.stats().kernel_emulations, 0);
    }

    #[test]
    fn mirror_mapping_resolves_to_same_frame() {
        let (mut vm, _t) = setup(1);
        let orig = page_addr(300);
        let mirror = page_addr(5000);
        vm.mmap(orig, 2, Prot::RW_USER).unwrap();
        vm.mmap_mirror(orig, mirror).unwrap();
        let f_orig = vm.resolve_frame(orig.offset(16)).unwrap();
        let f_mirror = vm.resolve_frame(mirror.offset(16)).unwrap();
        assert_eq!(f_orig, f_mirror);
    }

    #[test]
    fn mirror_pages_bypass_aikido_protection() {
        let (mut vm, t) = setup(1);
        let orig = page_addr(400);
        let mirror = page_addr(6000);
        vm.mmap(orig, 1, Prot::RW_USER).unwrap();
        vm.mmap_mirror(orig, mirror).unwrap();
        vm.touch(t[0], orig, AccessKind::Write).unwrap();
        vm.hypercall(Hypercall::ProtectAllThreads {
            base: orig,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        // The original page faults...
        assert!(matches!(
            vm.touch(t[0], orig, AccessKind::Write).unwrap().outcome,
            TouchOutcome::AikidoFault(_)
        ));
        // ...but the mirror page, backed by the same frame, does not.
        assert!(matches!(
            vm.touch(t[0], mirror, AccessKind::Write).unwrap().outcome,
            TouchOutcome::Ok
        ));
    }

    #[test]
    fn guest_pte_writes_update_all_shadow_tables() {
        let (mut vm, t) = setup(4);
        let base = page_addr(500);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        // Demand paging triggered by thread 0 must make the page visible to
        // every thread's shadow table (effective protections recomputed per
        // thread).
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        for &tid in &t {
            let touch = vm.touch(tid, base, AccessKind::Read).unwrap();
            assert!(matches!(touch.outcome, TouchOutcome::Ok));
            assert!(
                touch.charges.is_free(),
                "{tid:?} should not fault: {:?}",
                touch.charges
            );
        }
        assert!(vm.stats().guest_pte_writes >= 1);
    }

    #[test]
    fn context_switch_hypercall_is_counted() {
        let (mut vm, t) = setup(2);
        vm.hypercall(Hypercall::ContextSwitch {
            from: t[0],
            to: t[1],
        })
        .unwrap();
        assert_eq!(vm.stats().context_switches, 1);
    }

    #[test]
    fn duplicate_thread_registration_is_rejected() {
        let (mut vm, t) = setup(1);
        assert!(matches!(
            vm.register_thread(t[0]),
            Err(AikidoError::ThreadAlreadyRegistered { .. })
        ));
    }

    #[test]
    fn unknown_thread_operations_are_rejected() {
        let (mut vm, _t) = setup(1);
        let ghost = ThreadId::new(42);
        assert!(matches!(
            vm.touch(ghost, page_addr(1), AccessKind::Read),
            Err(AikidoError::UnknownThread { .. })
        ));
        assert!(matches!(
            vm.hypercall(Hypercall::ProtectRange {
                thread: ghost,
                base: page_addr(1),
                pages: 1,
                prot: Prot::NONE
            }),
            Err(AikidoError::UnknownThread { .. })
        ));
    }

    #[test]
    fn uninitialized_vm_rejects_hypercalls() {
        let mut vm = AikidoVm::new(VmConfig {
            auto_init: false,
            ..VmConfig::default()
        });
        assert!(matches!(
            vm.register_thread(ThreadId::new(0)),
            Err(AikidoError::NotInitialized)
        ));
        vm.hypercall(Hypercall::Init {
            read_fault_page: Addr::new(0x1000),
            write_fault_page: Addr::new(0x2000),
            mailbox: Addr::new(0x3000),
        })
        .unwrap();
        assert!(vm.register_thread(ThreadId::new(0)).is_ok());
    }

    #[test]
    fn effective_prot_reports_restrictions_before_and_after_shadow_install() {
        let (mut vm, t) = setup(1);
        let base = page_addr(700);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::R_USER,
        })
        .unwrap();
        // Page not yet demand-paged: no effective protection is known.
        assert_eq!(vm.effective_prot(t[0], base.page()).unwrap(), None);
        vm.resolve_frame(base).unwrap();
        assert_eq!(
            vm.effective_prot(t[0], base.page()).unwrap(),
            Some(Prot::R_USER)
        );
        assert_eq!(
            vm.thread_restriction(t[0], base.page()).unwrap(),
            Some(Prot::R_USER)
        );
    }

    #[test]
    fn tlb_fast_path_is_invalidated_by_protection_changes() {
        let (mut vm, t) = setup(1);
        let base = page_addr(130);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        // Warm the TLB.
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        assert!(vm
            .touch(t[0], base, AccessKind::Write)
            .unwrap()
            .charges
            .is_free());
        // A protection change must not be masked by the cached translation.
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[0],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Write).unwrap().outcome,
            TouchOutcome::AikidoFault(_)
        ));
    }

    #[test]
    fn tlb_fast_path_is_invalidated_by_munmap() {
        let (mut vm, t) = setup(1);
        let base = page_addr(140);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        vm.munmap(base).unwrap();
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Read).unwrap().outcome,
            TouchOutcome::Fatal(_)
        ));
    }

    #[test]
    fn tlb_is_per_thread() {
        let (mut vm, t) = setup(2);
        let base = page_addr(150);
        vm.mmap(base, 1, Prot::RW_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Write).unwrap();
        // Thread 1's first touch is free only because the shadow sync from the
        // demand-paging fault installed its entry; protect it for t1 only.
        vm.hypercall(Hypercall::ProtectRange {
            thread: t[1],
            base,
            pages: 1,
            prot: Prot::NONE,
        })
        .unwrap();
        // t0's cached translation still works; t1 faults.
        assert!(vm
            .touch(t[0], base, AccessKind::Write)
            .unwrap()
            .charges
            .is_free());
        assert!(matches!(
            vm.touch(t[1], base, AccessKind::Write).unwrap().outcome,
            TouchOutcome::AikidoFault(_)
        ));
    }

    #[test]
    fn read_tlb_entry_does_not_authorise_writes() {
        let (mut vm, t) = setup(1);
        let base = page_addr(160);
        vm.mmap(base, 1, Prot::R_USER).unwrap();
        vm.touch(t[0], base, AccessKind::Read).unwrap();
        assert!(vm
            .touch(t[0], base, AccessKind::Read)
            .unwrap()
            .charges
            .is_free());
        // The cached (page, R) entry must not satisfy a write.
        assert!(matches!(
            vm.touch(t[0], base, AccessKind::Write).unwrap().outcome,
            TouchOutcome::Fatal(_)
        ));
    }
}

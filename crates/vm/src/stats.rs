//! Hypervisor-level statistics.
//!
//! Every event that would cost a VM exit, a page fault or a page-table
//! synchronisation on real hardware is counted here; the simulator converts
//! the counts into cycles with its cost model, and the Table 2 harness reads
//! `aikido_faults_delivered` as the paper's "Segmentation Faults" column.

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::AikidoVm`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmStats {
    /// Total VM exits (any cause).
    pub vm_exits: u64,
    /// Aikido faults delivered to the guest userspace application.
    pub aikido_faults_delivered: u64,
    /// Native faults resolved by the guest kernel (demand paging, protection
    /// upgrades).
    pub native_faults: u64,
    /// Fatal faults (SIGSEGV) observed.
    pub fatal_faults: u64,
    /// Shadow page-table entries created or updated in response to guest
    /// page-table writes or protection changes.
    pub shadow_syncs: u64,
    /// Shadow page-table misses filled in lazily.
    pub shadow_misses: u64,
    /// Hypercalls issued by the guest.
    pub hypercalls: u64,
    /// Context switches between threads of the Aikido-enabled process.
    pub context_switches: u64,
    /// Guest-kernel accesses that hit an Aikido protection and had to be
    /// emulated by the hypervisor (§3.2.6).
    pub kernel_emulations: u64,
    /// Pages temporarily unprotected for the guest kernel.
    pub temp_unprotections: u64,
    /// Times the original protections were restored after a temporary
    /// unprotection (triggered by the next userspace access).
    pub temp_reprotections: u64,
    /// Guest page-table writes intercepted.
    pub guest_pte_writes: u64,
}

impl VmStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total page faults of any kind observed by the hypervisor.
    pub fn total_faults(&self) -> u64 {
        self.aikido_faults_delivered + self.native_faults + self.fatal_faults + self.shadow_misses
    }

    /// Adds another set of statistics to this one.
    pub fn merge(&mut self, other: &VmStats) {
        self.vm_exits += other.vm_exits;
        self.aikido_faults_delivered += other.aikido_faults_delivered;
        self.native_faults += other.native_faults;
        self.fatal_faults += other.fatal_faults;
        self.shadow_syncs += other.shadow_syncs;
        self.shadow_misses += other.shadow_misses;
        self.hypercalls += other.hypercalls;
        self.context_switches += other.context_switches;
        self.kernel_emulations += other.kernel_emulations;
        self.temp_unprotections += other.temp_unprotections;
        self.temp_reprotections += other.temp_reprotections;
        self.guest_pte_writes += other.guest_pte_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_faults_sums_all_fault_kinds() {
        let s = VmStats {
            aikido_faults_delivered: 3,
            native_faults: 2,
            fatal_faults: 1,
            shadow_misses: 4,
            ..VmStats::new()
        };
        assert_eq!(s.total_faults(), 10);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = VmStats {
            vm_exits: 1,
            hypercalls: 2,
            ..VmStats::new()
        };
        let b = VmStats {
            vm_exits: 10,
            hypercalls: 20,
            context_switches: 5,
            ..VmStats::new()
        };
        a.merge(&b);
        assert_eq!(a.vm_exits, 11);
        assert_eq!(a.hypercalls, 22);
        assert_eq!(a.context_switches, 5);
    }
}

//! Page-fault classification and the information delivered for each kind of
//! fault.
//!
//! AikidoVM must distinguish faults caused by Aikido-requested per-thread
//! protections from faults caused by regular guest behaviour (§3.2.4): the
//! former are delivered to the Aikido library via the fake-fault mechanism,
//! the latter go to the guest operating system as usual.

use serde::{Deserialize, Serialize};
use std::fmt;

use aikido_types::{AccessKind, Addr, ThreadId, Vpn};

/// Why a page fault occurred, from the hypervisor's point of view.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCause {
    /// The guest page table has no entry for the page and the guest OS must
    /// demand-page it in (normal behaviour, invisible to Aikido tools).
    NativeNotPresent,
    /// The guest page table denies the access (e.g. a write to a read-only
    /// page); the guest OS handles it (copy-on-write upgrade or SIGSEGV).
    NativeProtection,
    /// The access was denied purely because of a protection installed through
    /// the Aikido hypercall interface; the fault is delivered to the Aikido
    /// library, not the guest OS.
    AikidoProtection,
    /// The thread's shadow page table had no entry although the guest page
    /// table does; the hypervisor fills it in (a "shadow miss" VM exit).
    ShadowMiss,
    /// A userspace access hit a page that had been *temporarily unprotected*
    /// for the guest kernel (user bit cleared, §3.2.6); the hypervisor
    /// restores the original protections and retries.
    TempUnprotectTrip,
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCause::NativeNotPresent => write!(f, "page not present"),
            FaultCause::NativeProtection => write!(f, "guest protection violation"),
            FaultCause::AikidoProtection => write!(f, "aikido per-thread protection"),
            FaultCause::ShadowMiss => write!(f, "shadow page table miss"),
            FaultCause::TempUnprotectTrip => write!(f, "temporarily unprotected page"),
        }
    }
}

/// A page fault as recorded by the hypervisor (any cause).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageFault {
    /// Thread whose access faulted.
    pub thread: ThreadId,
    /// Faulting virtual address.
    pub addr: Addr,
    /// Kind of access that faulted.
    pub kind: AccessKind,
    /// Classification of the fault.
    pub cause: FaultCause,
}

impl PageFault {
    /// The page containing the faulting address.
    pub fn page(&self) -> Vpn {
        self.addr.page()
    }
}

impl fmt::Display for PageFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {} ({})",
            self.thread, self.kind, self.addr, self.cause
        )
    }
}

/// An Aikido fault as delivered to the guest userspace application.
///
/// The hypervisor cannot simply deliver a SIGSEGV at the true faulting
/// address — the guest OS might handle or suppress it — so it injects a fake
/// fault at one of two pre-registered addresses (one that is never readable,
/// one that is never writable) and writes the *true* faulting address into a
/// mailbox shared with the Aikido library (§3.2.5).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AikidoFault {
    /// Thread whose access faulted.
    pub thread: ThreadId,
    /// The fake address the fault appears to occur at (one of the two pages
    /// registered by [`crate::AikidoLib`] at initialisation).
    pub fake_addr: Addr,
    /// The true faulting address, as recorded in the mailbox.
    pub true_addr: Addr,
    /// Kind of access that faulted.
    pub kind: AccessKind,
}

impl AikidoFault {
    /// The page containing the true faulting address.
    pub fn page(&self) -> Vpn {
        self.true_addr.page()
    }
}

impl fmt::Display for AikidoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aikido fault: {} {} at {} (delivered at {})",
            self.thread, self.kind, self.true_addr, self.fake_addr
        )
    }
}

/// A fatal segmentation fault: the access hit memory with no mapping at all,
/// or violated a guest protection the guest OS will not repair.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segv {
    /// Thread whose access faulted.
    pub thread: ThreadId,
    /// Faulting address.
    pub addr: Addr,
    /// Kind of access that faulted.
    pub kind: AccessKind,
}

impl fmt::Display for Segv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SIGSEGV: {} {} at {}", self.thread, self.kind, self.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_page_matches_address() {
        let f = PageFault {
            thread: ThreadId::new(1),
            addr: Addr::new(0x5123),
            kind: AccessKind::Read,
            cause: FaultCause::AikidoProtection,
        };
        assert_eq!(f.page(), Addr::new(0x5123).page());
        assert!(f.to_string().contains("aikido"));
    }

    #[test]
    fn aikido_fault_reports_true_address() {
        let f = AikidoFault {
            thread: ThreadId::new(2),
            fake_addr: Addr::new(0x1000),
            true_addr: Addr::new(0xabcd_e000),
            kind: AccessKind::Write,
        };
        assert_eq!(f.page(), Vpn::new(0xabcde));
        assert!(f.to_string().contains("0xabcde000"));
    }

    #[test]
    fn cause_display_is_distinct() {
        let causes = [
            FaultCause::NativeNotPresent,
            FaultCause::NativeProtection,
            FaultCause::AikidoProtection,
            FaultCause::ShadowMiss,
            FaultCause::TempUnprotectTrip,
        ];
        let strings: Vec<_> = causes.iter().map(|c| c.to_string()).collect();
        for (i, a) in strings.iter().enumerate() {
            for (j, b) in strings.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b);
                }
            }
        }
    }
}

//! The per-thread protection table (§3.2.4).
//!
//! AikidoVM maintains one of these tables for every thread of the
//! Aikido-enabled guest process. It records, for each page, the protection
//! requested through the hypercall interface. The effective protection of a
//! shadow page-table entry is the intersection of the guest page-table
//! protection and the entry in this table; pages with no entry are
//! unrestricted.
//!
//! Like the shadow page table, the storage is a flat chunked [`ChunkMap`]
//! keyed by page number, so `effective` on the fault-handling path is pure
//! index arithmetic.

use aikido_types::{ChunkMap, Prot, Vpn};

/// Per-thread table of Aikido-requested page protections.
#[derive(Debug, Default)]
pub struct ThreadProtTable {
    entries: ChunkMap<Prot>,
}

impl ThreadProtTable {
    /// Creates an empty table (no restrictions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the requested protection for `page`.
    pub fn set(&mut self, page: Vpn, prot: Prot) {
        self.entries.insert(page.raw(), prot);
    }

    /// Removes any restriction on `page`.
    pub fn clear(&mut self, page: Vpn) {
        self.entries.remove(page.raw());
    }

    /// The restriction on `page`, if one is installed.
    #[inline]
    pub fn get(&self, page: Vpn) -> Option<Prot> {
        self.entries.get(page.raw()).copied()
    }

    /// The *effective* protection of `page` given the guest protection:
    /// the intersection of the guest protection and any installed restriction.
    #[inline]
    pub fn effective(&self, page: Vpn, guest: Prot) -> Prot {
        match self.get(page) {
            Some(restriction) => guest.intersect(restriction),
            None => guest,
        }
    }

    /// True if the table restricts `page` (i.e. an entry exists whose
    /// intersection with `guest` forbids something `guest` would allow).
    pub fn restricts(&self, page: Vpn, guest: Prot) -> bool {
        self.effective(page, guest) != guest
    }

    /// Number of pages with an installed restriction.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no restrictions are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all restrictions in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Prot)> + '_ {
        self.entries.iter().map(|(p, &v)| (Vpn::new(p), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_pages_keep_guest_protection() {
        let t = ThreadProtTable::new();
        assert_eq!(t.effective(Vpn::new(5), Prot::RW_USER), Prot::RW_USER);
        assert!(!t.restricts(Vpn::new(5), Prot::RW_USER));
        assert!(t.is_empty());
    }

    #[test]
    fn restriction_intersects_with_guest_protection() {
        let mut t = ThreadProtTable::new();
        t.set(Vpn::new(5), Prot::NONE);
        assert_eq!(t.effective(Vpn::new(5), Prot::RW_USER), Prot::NONE);
        assert!(t.restricts(Vpn::new(5), Prot::RW_USER));

        t.set(Vpn::new(6), Prot::R_USER);
        assert_eq!(t.effective(Vpn::new(6), Prot::RW_USER), Prot::R_USER);
    }

    #[test]
    fn restriction_cannot_grant_more_than_guest() {
        let mut t = ThreadProtTable::new();
        t.set(Vpn::new(9), Prot::RW_USER);
        // Guest says read-only; the table cannot add write permission.
        assert_eq!(t.effective(Vpn::new(9), Prot::R_USER), Prot::R_USER);
        assert!(!t.restricts(Vpn::new(9), Prot::R_USER));
    }

    #[test]
    fn clear_removes_restriction() {
        let mut t = ThreadProtTable::new();
        t.set(Vpn::new(3), Prot::NONE);
        assert_eq!(t.len(), 1);
        t.clear(Vpn::new(3));
        assert_eq!(t.effective(Vpn::new(3), Prot::RW_USER), Prot::RW_USER);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut t = ThreadProtTable::new();
        t.set(Vpn::new(1), Prot::NONE);
        t.set(Vpn::new(2), Prot::R_USER);
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(entries.len(), 2);
        assert!(entries.contains(&(Vpn::new(1), Prot::NONE)));
        assert!(entries.contains(&(Vpn::new(2), Prot::R_USER)));
    }
}

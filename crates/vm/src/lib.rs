//! AikidoVM — a software model of the hypervisor the Aikido paper builds on
//! Linux KVM (§3.2).
//!
//! The real AikidoVM extends KVM so that each *thread* of an Aikido-enabled
//! guest process gets its own shadow page table, and therefore its own page
//! protections, even though the guest operating system keeps a single page
//! table per process. This crate reproduces that design in a deterministic,
//! fully software-simulated form:
//!
//! * [`GuestKernel`] models the guest operating system: virtual memory areas,
//!   demand paging, a single guest page table per process, and kernel-mode
//!   accesses to user pages (system-call argument copies).
//! * [`AikidoVm`] models the hypervisor: one [`ShadowPageTable`] *per thread*,
//!   a [`ThreadProtTable`] per thread holding the protections requested
//!   through the hypercall interface, reverse maps from guest frames to the
//!   shadow entries that must be kept in sync, interception of guest
//!   page-table writes and context switches, classification of page faults
//!   into *Aikido* faults and *native* faults, delivery of Aikido faults to
//!   userspace through a fake-fault mailbox, and emulation plus temporary
//!   unprotection when the guest kernel itself trips over an Aikido
//!   protection (§3.2.6).
//! * [`AikidoLib`]/[`Hypercall`] model the userspace library that issues
//!   per-thread protection requests, bypassing the guest OS.
//!
//! The enforcement mechanism (hardware MMU + VMX exits) is replaced by an
//! explicit page walk in [`AikidoVm::touch`], and every event that would cost
//! a VM exit or fault on real hardware is counted in [`VmStats`] and in the
//! per-access [`Charges`] so the simulator can convert them into cycles.
//!
//! # Hot-path layout
//!
//! `touch` runs once per simulated memory access, so everything it consults
//! is flat and index-addressed: threads get dense slots into a vector of
//! per-thread `ThreadShard`s at registration (each shard — shadow page
//! table, protection table, TLB — is self-contained and `Send`, so the
//! per-thread state can migrate across OS threads or be updated shard-wise
//! without aliasing the rest of the VM), the shadow page table and protection
//! table are chunked flat tables (`aikido_types::ChunkMap`), and each thread
//! carries a direct-mapped software TLB over its recent successful
//! translations. The TLB is a pure accelerator — it only serves accesses the
//! shadow table would allow, so hits and misses produce byte-identical
//! outcomes, charges and statistics — and it is invalidated per page whenever
//! the thread's shadow state changes.
//!
//! # Examples
//!
//! ```
//! use aikido_types::{AccessKind, Addr, Prot, ThreadId};
//! use aikido_vm::{AikidoVm, Hypercall, TouchOutcome, VmConfig};
//!
//! # fn main() -> aikido_types::Result<()> {
//! let mut vm = AikidoVm::new(VmConfig::default());
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//! vm.register_thread(t0)?;
//! vm.register_thread(t1)?;
//! let base = Addr::new(0x10_0000);
//! vm.mmap(base, 4, Prot::RW_USER)?;
//!
//! // Thread 0 may access the page normally...
//! assert!(matches!(vm.touch(t0, base, AccessKind::Write)?.outcome, TouchOutcome::Ok));
//!
//! // ...until the Aikido library protects it for thread 0 only.
//! vm.hypercall(Hypercall::ProtectRange {
//!     thread: t0,
//!     base,
//!     pages: 1,
//!     prot: Prot::NONE,
//! })?;
//! assert!(matches!(
//!     vm.touch(t0, base, AccessKind::Read)?.outcome,
//!     TouchOutcome::AikidoFault(_)
//! ));
//! // Thread 1 is unaffected: per-thread protection.
//! assert!(matches!(vm.touch(t1, base, AccessKind::Read)?.outcome, TouchOutcome::Ok));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod fault;
mod frames;
mod hypercall;
mod kernel;
mod prot_table;
mod shadow_pt;
mod shard;
mod snap;
mod stats;
mod vm;

pub use fault::{AikidoFault, FaultCause, PageFault, Segv};
pub use frames::{FrameAllocator, FrameId};
pub use hypercall::{AikidoLib, FaultMailbox, Hypercall};
pub use kernel::{GuestKernel, GuestPte, KernelEvent, Vma, VmaBacking};
pub use prot_table::ThreadProtTable;
pub use shadow_pt::{ShadowPageTable, ShadowPte};
pub use stats::VmStats;
pub use vm::{AikidoVm, Charges, Touch, TouchOutcome, VmConfig};

//! A minimal model of the guest operating system.
//!
//! The guest kernel owns the process's *single* page table (the whole point
//! of AikidoVM is that the guest OS only has one), its virtual memory areas,
//! and the demand-paging policy. The hypervisor intercepts every write the
//! kernel makes to the page table (in the real system by write-protecting the
//! page-table pages); in the simulation the kernel returns those writes as
//! [`KernelEvent`]s so the hypervisor can synchronise every thread's shadow
//! page table.
//!
//! Mirror pages are modelled exactly as the paper builds them (§3.3.3): a
//! *backing object* (the backing file) owns the frames, and two VMAs — the
//! original mapping and the mirror mapping — reference the same backing
//! object, so demand-paging either of them resolves to the same machine
//! frame.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{AccessKind, Addr, AikidoError, ChunkMap, Prot, Result, Vpn};

use crate::frames::{FrameAllocator, FrameId};
use crate::snap::{get_prot, put_prot};

/// Alias distinguishing decode results from the crate's [`Result`] (which is
/// fixed to [`AikidoError`]).
type Result2<T, E> = std::result::Result<T, E>;

/// Identity of a backing object (an anonymous region or backing file).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BackingId(u64);

/// How a VMA is backed.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmaBacking {
    /// A private anonymous mapping with its own backing object.
    Private(BackingId),
    /// A shared mapping of an existing backing object (used for mirror pages
    /// and for the second mapping AikidoSD creates over the original range).
    Shared(BackingId),
}

impl VmaBacking {
    /// The backing object referenced by this VMA.
    pub fn id(self) -> BackingId {
        match self {
            VmaBacking::Private(id) | VmaBacking::Shared(id) => id,
        }
    }
}

/// A virtual memory area: a contiguous range of pages with one protection and
/// one backing object.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First page of the area.
    pub start: Vpn,
    /// Number of pages.
    pub pages: u64,
    /// Protection the guest OS grants the area.
    pub prot: Prot,
    /// Backing object.
    pub backing: VmaBacking,
}

impl Vma {
    /// True if `page` falls inside this area.
    pub fn contains(&self, page: Vpn) -> bool {
        page.raw() >= self.start.raw() && page.raw() < self.start.raw() + self.pages
    }

    /// Offset (in pages) of `page` within the area.
    pub fn page_offset(&self, page: Vpn) -> u64 {
        page.raw() - self.start.raw()
    }
}

/// A guest page-table entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestPte {
    /// Machine frame backing the page (the simulation collapses guest-physical
    /// and machine frames into one identifier; the extra indirection of
    /// guest-physical addresses does not affect any Aikido-visible behaviour).
    pub frame: FrameId,
    /// Protection recorded by the guest OS.
    pub prot: Prot,
}

/// A page-table update performed by the guest kernel, as observed by the
/// hypervisor through write-protection of the page-table pages.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelEvent {
    /// The kernel installed or replaced a PTE.
    PteInstalled {
        /// Page whose entry changed.
        page: Vpn,
        /// The new entry.
        pte: GuestPte,
    },
    /// The kernel removed a PTE (unmap).
    PteRemoved {
        /// Page whose entry was removed.
        page: Vpn,
    },
}

/// Outcome of asking the kernel to resolve a native page fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KernelFaultResolution {
    /// The kernel installed a mapping (demand paging / protection upgrade) and
    /// the access should be retried.
    Resolved,
    /// The access is illegal; the kernel would deliver SIGSEGV.
    Fatal,
}

/// The guest operating system model.
#[derive(Debug, Default)]
pub struct GuestKernel {
    vmas: Vec<Vma>,
    /// The single guest page table, stored flat so the hypervisor's
    /// shadow-miss and fault paths resolve PTEs by index arithmetic.
    page_table: ChunkMap<GuestPte>,
    backings: BTreeMap<BackingId, BTreeMap<u64, FrameId>>,
    next_backing: u64,
    frames: FrameAllocator,
    /// Events not yet drained by the hypervisor.
    pending_events: Vec<KernelEvent>,
}

impl GuestKernel {
    /// Creates a guest kernel with an empty address space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new anonymous mapping of `pages` pages at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::MappingOverlap`] if the range overlaps an
    /// existing VMA, and [`AikidoError::InvalidConfig`] if `pages` is zero.
    pub fn mmap(&mut self, base: Addr, pages: u64, prot: Prot) -> Result<Vma> {
        let backing = self.new_backing();
        self.map_with_backing(base, pages, prot, VmaBacking::Private(backing))
    }

    /// Creates a shared mapping of the backing object of `source_base` at
    /// `mirror_base`. This is how AikidoSD constructs mirror pages: both
    /// mappings resolve to the same frames.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnmappedAddress`] if `source_base` is not inside
    /// any VMA, and [`AikidoError::MappingOverlap`] if the mirror range
    /// overlaps an existing VMA.
    pub fn mmap_shared_of(&mut self, source_base: Addr, mirror_base: Addr) -> Result<Vma> {
        let source = *self
            .find_vma(source_base.page())
            .ok_or(AikidoError::UnmappedAddress { addr: source_base })?;
        self.map_with_backing(
            mirror_base,
            source.pages,
            source.prot,
            VmaBacking::Shared(source.backing.id()),
        )
    }

    fn map_with_backing(
        &mut self,
        base: Addr,
        pages: u64,
        prot: Prot,
        backing: VmaBacking,
    ) -> Result<Vma> {
        if pages == 0 {
            return Err(AikidoError::InvalidConfig {
                reason: "cannot map zero pages".to_string(),
            });
        }
        let start = base.page();
        for p in start.span(pages) {
            if self.find_vma(p).is_some() {
                return Err(AikidoError::MappingOverlap { page: p });
            }
        }
        let vma = Vma {
            start,
            pages,
            prot,
            backing,
        };
        self.backings.entry(backing.id()).or_default();
        self.vmas.push(vma);
        Ok(vma)
    }

    fn new_backing(&mut self) -> BackingId {
        let id = BackingId(self.next_backing);
        self.next_backing += 1;
        self.backings.insert(id, BTreeMap::new());
        id
    }

    /// The VMA covering `page`, if any.
    pub fn find_vma(&self, page: Vpn) -> Option<&Vma> {
        self.vmas.iter().find(|v| v.contains(page))
    }

    /// All VMAs, in creation order.
    pub fn vmas(&self) -> &[Vma] {
        &self.vmas
    }

    /// The guest page-table entry for `page`, if present.
    #[inline]
    pub fn pte(&self, page: Vpn) -> Option<GuestPte> {
        self.page_table.get(page.raw()).copied()
    }

    /// Number of PTEs currently installed.
    pub fn installed_ptes(&self) -> usize {
        self.page_table.len()
    }

    /// Number of machine frames allocated so far.
    pub fn frames_allocated(&self) -> u64 {
        self.frames.allocated()
    }

    /// Handles a native page fault (not caused by Aikido protections).
    ///
    /// Demand-pages the page in if a VMA covers it and the access is
    /// permitted by the VMA's protection; upgrades a read-only PTE to the VMA
    /// protection for a write to a writable VMA (the copy-on-write path);
    /// otherwise reports the access as fatal.
    pub fn handle_fault(&mut self, addr: Addr, kind: AccessKind) -> KernelFaultResolution {
        let page = addr.page();
        let Some(vma) = self.find_vma(page).copied() else {
            return KernelFaultResolution::Fatal;
        };
        if !vma.prot.allows(kind) {
            return KernelFaultResolution::Fatal;
        }
        let offset = vma.page_offset(page);
        let frame = self.frame_for(vma.backing.id(), offset);
        let pte = GuestPte {
            frame,
            prot: vma.prot,
        };
        self.page_table.insert(page.raw(), pte);
        self.pending_events
            .push(KernelEvent::PteInstalled { page, pte });
        KernelFaultResolution::Resolved
    }

    fn frame_for(&mut self, backing: BackingId, offset: u64) -> FrameId {
        let frames = &mut self.frames;
        *self
            .backings
            .entry(backing)
            .or_default()
            .entry(offset)
            .or_insert_with(|| frames.alloc())
    }

    /// Removes the mapping for `pages` pages starting at `base`, dropping any
    /// PTEs that covered it.
    ///
    /// # Errors
    ///
    /// Returns [`AikidoError::UnmappedAddress`] if no VMA starts exactly at
    /// `base`.
    pub fn munmap(&mut self, base: Addr) -> Result<()> {
        let start = base.page();
        let idx = self
            .vmas
            .iter()
            .position(|v| v.start == start)
            .ok_or(AikidoError::UnmappedAddress { addr: base })?;
        let vma = self.vmas.remove(idx);
        for p in vma.start.span(vma.pages) {
            if self.page_table.remove(p.raw()).is_some() {
                self.pending_events
                    .push(KernelEvent::PteRemoved { page: p });
            }
        }
        Ok(())
    }

    /// Drains the page-table updates performed since the last call; the
    /// hypervisor uses these to synchronise the per-thread shadow page tables.
    pub fn drain_events(&mut self) -> Vec<KernelEvent> {
        std::mem::take(&mut self.pending_events)
    }

    /// True if there are undrained page-table updates.
    pub fn has_pending_events(&self) -> bool {
        !self.pending_events.is_empty()
    }

    /// Serializes the whole guest-OS model — VMAs, the guest page table, the
    /// backing-object frame maps, the frame allocator cursor and any
    /// undrained page-table events — into a snapshot section.
    pub fn encode_snapshot(&self, out: &mut SectionWriter) {
        out.put_usize(self.vmas.len());
        for vma in &self.vmas {
            out.put_u64(vma.start.raw());
            out.put_u64(vma.pages);
            put_prot(out, vma.prot);
            match vma.backing {
                VmaBacking::Private(id) => {
                    out.put_u8(0);
                    out.put_u64(id.0);
                }
                VmaBacking::Shared(id) => {
                    out.put_u8(1);
                    out.put_u64(id.0);
                }
            }
        }
        out.put_usize(self.page_table.len());
        for (page, pte) in self.page_table.iter() {
            out.put_u64(page);
            out.put_u64(pte.frame.raw());
            put_prot(out, pte.prot);
        }
        out.put_usize(self.backings.len());
        for (id, frames) in &self.backings {
            out.put_u64(id.0);
            out.put_usize(frames.len());
            for (offset, frame) in frames {
                out.put_u64(*offset);
                out.put_u64(frame.raw());
            }
        }
        out.put_u64(self.next_backing);
        out.put_u64(self.frames.allocated());
        out.put_usize(self.pending_events.len());
        for event in &self.pending_events {
            match event {
                KernelEvent::PteInstalled { page, pte } => {
                    out.put_u8(0);
                    out.put_u64(page.raw());
                    out.put_u64(pte.frame.raw());
                    put_prot(out, pte.prot);
                }
                KernelEvent::PteRemoved { page } => {
                    out.put_u8(1);
                    out.put_u64(page.raw());
                }
            }
        }
    }

    /// Rebuilds a guest kernel from a section written by
    /// [`GuestKernel::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on any malformed payload.
    pub fn decode_snapshot(r: &mut SectionReader<'_>) -> Result2<GuestKernel, SnapshotError> {
        let mut kernel = GuestKernel::new();
        let vma_count = r.get_usize()?;
        for _ in 0..vma_count {
            let start = Vpn::new(r.get_u64()?);
            let pages = r.get_u64()?;
            let prot = get_prot(r)?;
            let backing = match r.get_u8()? {
                0 => VmaBacking::Private(BackingId(r.get_u64()?)),
                1 => VmaBacking::Shared(BackingId(r.get_u64()?)),
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid VMA backing tag {other}"),
                    ))
                }
            };
            kernel.vmas.push(Vma {
                start,
                pages,
                prot,
                backing,
            });
        }
        let pte_count = r.get_usize()?;
        for _ in 0..pte_count {
            let page = r.get_u64()?;
            let frame = FrameId::new(r.get_u64()?);
            let prot = get_prot(r)?;
            kernel.page_table.insert(page, GuestPte { frame, prot });
        }
        let backing_count = r.get_usize()?;
        for _ in 0..backing_count {
            let id = BackingId(r.get_u64()?);
            let frame_count = r.get_usize()?;
            let mut frames = BTreeMap::new();
            for _ in 0..frame_count {
                let offset = r.get_u64()?;
                let frame = FrameId::new(r.get_u64()?);
                frames.insert(offset, frame);
            }
            kernel.backings.insert(id, frames);
        }
        kernel.next_backing = r.get_u64()?;
        kernel.frames = FrameAllocator::with_allocated(r.get_u64()?);
        let event_count = r.get_usize()?;
        for _ in 0..event_count {
            let event = match r.get_u8()? {
                0 => {
                    let page = Vpn::new(r.get_u64()?);
                    let frame = FrameId::new(r.get_u64()?);
                    let prot = get_prot(r)?;
                    KernelEvent::PteInstalled {
                        page,
                        pte: GuestPte { frame, prot },
                    }
                }
                1 => KernelEvent::PteRemoved {
                    page: Vpn::new(r.get_u64()?),
                },
                other => {
                    return Err(SnapshotError::new(
                        r.section_name(),
                        r.offset(),
                        format!("invalid kernel event tag {other}"),
                    ))
                }
            };
            kernel.pending_events.push(event);
        }
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(page: u64) -> Addr {
        Vpn::new(page).base()
    }

    #[test]
    fn mmap_then_fault_installs_pte() {
        let mut k = GuestKernel::new();
        k.mmap(addr(16), 4, Prot::RW_USER).unwrap();
        assert!(k.pte(Vpn::new(16)).is_none());
        assert_eq!(
            k.handle_fault(addr(16), AccessKind::Write),
            KernelFaultResolution::Resolved
        );
        let pte = k.pte(Vpn::new(16)).unwrap();
        assert_eq!(pte.prot, Prot::RW_USER);
        let events = k.drain_events();
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], KernelEvent::PteInstalled { page, .. } if page == Vpn::new(16))
        );
        assert!(!k.has_pending_events());
    }

    #[test]
    fn fault_outside_any_vma_is_fatal() {
        let mut k = GuestKernel::new();
        assert_eq!(
            k.handle_fault(addr(100), AccessKind::Read),
            KernelFaultResolution::Fatal
        );
    }

    #[test]
    fn write_to_readonly_vma_is_fatal() {
        let mut k = GuestKernel::new();
        k.mmap(addr(8), 1, Prot::R_USER).unwrap();
        assert_eq!(
            k.handle_fault(addr(8), AccessKind::Write),
            KernelFaultResolution::Fatal
        );
        assert_eq!(
            k.handle_fault(addr(8), AccessKind::Read),
            KernelFaultResolution::Resolved
        );
    }

    #[test]
    fn overlapping_mmap_is_rejected() {
        let mut k = GuestKernel::new();
        k.mmap(addr(32), 4, Prot::RW_USER).unwrap();
        let err = k.mmap(addr(34), 4, Prot::RW_USER).unwrap_err();
        assert!(matches!(err, AikidoError::MappingOverlap { .. }));
    }

    #[test]
    fn zero_page_mmap_is_rejected() {
        let mut k = GuestKernel::new();
        assert!(matches!(
            k.mmap(addr(32), 0, Prot::RW_USER),
            Err(AikidoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn mirror_mapping_shares_frames_with_original() {
        let mut k = GuestKernel::new();
        k.mmap(addr(64), 2, Prot::RW_USER).unwrap();
        k.mmap_shared_of(addr(64), addr(1024)).unwrap();

        k.handle_fault(addr(64), AccessKind::Write);
        k.handle_fault(addr(1024), AccessKind::Write);
        let orig = k.pte(Vpn::new(64)).unwrap();
        let mirror = k.pte(Vpn::new(1024)).unwrap();
        assert_eq!(orig.frame, mirror.frame, "mirror must alias the same frame");

        // Second page of each mapping also aliases, and differs from page 0.
        k.handle_fault(addr(65), AccessKind::Write);
        k.handle_fault(addr(1025), AccessKind::Write);
        assert_eq!(
            k.pte(Vpn::new(65)).unwrap().frame,
            k.pte(Vpn::new(1025)).unwrap().frame
        );
        assert_ne!(orig.frame, k.pte(Vpn::new(65)).unwrap().frame);
    }

    #[test]
    fn mirror_of_unmapped_source_fails() {
        let mut k = GuestKernel::new();
        assert!(matches!(
            k.mmap_shared_of(addr(7), addr(2048)),
            Err(AikidoError::UnmappedAddress { .. })
        ));
    }

    #[test]
    fn munmap_removes_ptes_and_emits_events() {
        let mut k = GuestKernel::new();
        k.mmap(addr(10), 2, Prot::RW_USER).unwrap();
        k.handle_fault(addr(10), AccessKind::Read);
        k.handle_fault(addr(11), AccessKind::Read);
        k.drain_events();
        k.munmap(addr(10)).unwrap();
        assert!(k.pte(Vpn::new(10)).is_none());
        assert!(k.find_vma(Vpn::new(10)).is_none());
        let events = k.drain_events();
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| matches!(e, KernelEvent::PteRemoved { .. })));
    }

    #[test]
    fn demand_paging_is_lazy_per_page() {
        let mut k = GuestKernel::new();
        k.mmap(addr(200), 8, Prot::RW_USER).unwrap();
        k.handle_fault(addr(203), AccessKind::Read);
        assert_eq!(k.installed_ptes(), 1);
        assert_eq!(k.frames_allocated(), 1);
        k.handle_fault(addr(207), AccessKind::Read);
        assert_eq!(k.installed_ptes(), 2);
        assert_eq!(k.frames_allocated(), 2);
    }
}

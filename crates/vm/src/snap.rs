//! Shared field codecs for this crate's snapshot sections.
//!
//! `Prot` and `AccessKind` appear in several serialized structures (guest
//! PTEs, VMAs, shadow entries, the fault mailbox); these helpers keep their
//! wire encoding in one place so every section agrees on it.

use aikido_snapshot::{SectionReader, SectionWriter, SnapshotError};
use aikido_types::{AccessKind, Prot};

/// Encodes a protection as a single bit-packed byte (`read | write<<1 |
/// user<<2`).
pub(crate) fn put_prot(out: &mut SectionWriter, prot: Prot) {
    let bits = (prot.read() as u8) | ((prot.write() as u8) << 1) | ((prot.user() as u8) << 2);
    out.put_u8(bits);
}

/// Decodes a protection written by [`put_prot`].
pub(crate) fn get_prot(r: &mut SectionReader<'_>) -> Result<Prot, SnapshotError> {
    let bits = r.get_u8()?;
    if bits > 7 {
        return Err(SnapshotError::new(
            r.section_name(),
            r.offset(),
            format!("invalid protection bits {bits:#x}"),
        ));
    }
    Ok(Prot::from_bits(bits & 1 != 0, bits & 2 != 0, bits & 4 != 0))
}

/// Encodes an access kind (`Read` = 0, `Write` = 1).
pub(crate) fn put_kind(out: &mut SectionWriter, kind: AccessKind) {
    out.put_u8(match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    });
}

/// Decodes an access kind written by [`put_kind`].
pub(crate) fn get_kind(r: &mut SectionReader<'_>) -> Result<AccessKind, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        other => Err(SnapshotError::new(
            r.section_name(),
            r.offset(),
            format!("invalid access kind {other}"),
        )),
    }
}

//! Per-thread shadow page tables (§3.2.3).
//!
//! A traditional hypervisor keeps one shadow page table per guest page table;
//! AikidoVM keeps one per *thread* sharing that guest page table, each
//! performing the same virtual→machine translation but potentially with
//! different protection bits (the intersection of the guest protection and
//! the thread's protection-table entry).
//!
//! The table is stored as a [`ChunkMap`] — a fixed directory of flat
//! 512-entry leaves keyed by page number — so the `lookup` on every simulated
//! access is two array loads and a tag compare instead of a `BTreeMap`
//! descent.

use aikido_types::{ChunkMap, Prot, Vpn};

use crate::frames::FrameId;

/// A shadow page-table entry: the machine frame plus the *effective*
/// protection enforced by the (simulated) hardware for one thread.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShadowPte {
    /// Machine frame the page translates to.
    pub frame: FrameId,
    /// Effective protection (guest ∩ per-thread restriction), possibly with
    /// the user bit cleared while the page is temporarily unprotected for the
    /// guest kernel.
    pub prot: Prot,
}

/// One thread's shadow page table.
#[derive(Debug, Default)]
pub struct ShadowPageTable {
    entries: ChunkMap<ShadowPte>,
}

impl ShadowPageTable {
    /// Creates an empty shadow page table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the entry for `page`.
    #[inline]
    pub fn lookup(&self, page: Vpn) -> Option<ShadowPte> {
        self.entries.get(page.raw()).copied()
    }

    /// Installs or replaces the entry for `page`.
    pub fn install(&mut self, page: Vpn, pte: ShadowPte) {
        self.entries.insert(page.raw(), pte);
    }

    /// Removes the entry for `page` (invalidation), returning the old entry.
    pub fn invalidate(&mut self, page: Vpn) -> Option<ShadowPte> {
        self.entries.remove(page.raw())
    }

    /// Updates just the protection of an existing entry; returns `true` if an
    /// entry existed.
    pub fn set_prot(&mut self, page: Vpn, prot: Prot) -> bool {
        if let Some(e) = self.entries.get_mut(page.raw()) {
            e.prot = prot;
            true
        } else {
            false
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Removes every entry (used on address-space teardown).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the installed entries in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, ShadowPte)> + '_ {
        self.entries.iter().map(|(p, &e)| (Vpn::new(p), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(frame: u64, prot: Prot) -> ShadowPte {
        ShadowPte {
            frame: FrameId::new(frame),
            prot,
        }
    }

    #[test]
    fn install_lookup_invalidate_roundtrip() {
        let mut t = ShadowPageTable::new();
        assert!(t.lookup(Vpn::new(1)).is_none());
        t.install(Vpn::new(1), pte(7, Prot::RW_USER));
        assert_eq!(t.lookup(Vpn::new(1)), Some(pte(7, Prot::RW_USER)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.invalidate(Vpn::new(1)), Some(pte(7, Prot::RW_USER)));
        assert!(t.is_empty());
    }

    #[test]
    fn set_prot_only_touches_existing_entries() {
        let mut t = ShadowPageTable::new();
        assert!(!t.set_prot(Vpn::new(3), Prot::NONE));
        t.install(Vpn::new(3), pte(1, Prot::RW_USER));
        assert!(t.set_prot(Vpn::new(3), Prot::R_USER));
        assert_eq!(t.lookup(Vpn::new(3)).unwrap().prot, Prot::R_USER);
        assert_eq!(t.lookup(Vpn::new(3)).unwrap().frame, FrameId::new(1));
    }

    #[test]
    fn clear_empties_the_table() {
        let mut t = ShadowPageTable::new();
        t.install(Vpn::new(1), pte(1, Prot::RW_USER));
        t.install(Vpn::new(2), pte(2, Prot::RW_USER));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn iter_returns_all_entries_sorted_by_page() {
        let mut t = ShadowPageTable::new();
        t.install(Vpn::new(9), pte(1, Prot::RW_USER));
        t.install(Vpn::new(2), pte(2, Prot::R_USER));
        let pages: Vec<_> = t.iter().map(|(p, _)| p.raw()).collect();
        assert_eq!(pages, vec![2, 9]);
    }

    #[test]
    fn far_apart_pages_coexist() {
        // Application pages, mirror-area pages and the fake fault pages span
        // ~2^35 page numbers; the chunked table must hold them all.
        let mut t = ShadowPageTable::new();
        let pages = [0x400u64, 0x6_0000_0000, 0x7_ffff_0000];
        for (i, &p) in pages.iter().enumerate() {
            t.install(Vpn::new(p), pte(i as u64, Prot::RW_USER));
        }
        for (i, &p) in pages.iter().enumerate() {
            assert_eq!(t.lookup(Vpn::new(p)).unwrap().frame, FrameId::new(i as u64));
        }
    }
}

//! Machine (host physical) frame management.
//!
//! The hypervisor maps guest-physical frames onto machine frames. In the
//! simulation the distinction is kept so that *shared mappings* — two virtual
//! pages backed by the same frame, which is how AikidoSD builds mirror pages —
//! are represented faithfully: the mirror page and the original page resolve
//! to the same [`FrameId`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identity of a machine frame (a 4 KiB unit of simulated physical memory).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FrameId(u64);

impl FrameId {
    /// Creates a frame id from its raw number.
    pub const fn new(raw: u64) -> Self {
        FrameId(raw)
    }

    /// Raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame {}", self.0)
    }
}

/// A bump allocator of machine frames.
///
/// Frames are never freed in the simulation (the workloads we model do not
/// unmap memory mid-run); the allocator only needs to hand out fresh frames
/// and report how many exist.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FrameAllocator {
    next: u64,
}

impl FrameAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh frame.
    pub fn alloc(&mut self) -> FrameId {
        let id = FrameId(self.next);
        self.next += 1;
        id
    }

    /// Number of frames allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next
    }

    /// Rebuilds an allocator whose next `alloc` continues after `allocated`
    /// frames (snapshot restore).
    pub(crate) fn with_allocated(allocated: u64) -> Self {
        FrameAllocator { next: allocated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_hands_out_distinct_frames() {
        let mut a = FrameAllocator::new();
        let f0 = a.alloc();
        let f1 = a.alloc();
        let f2 = a.alloc();
        assert_ne!(f0, f1);
        assert_ne!(f1, f2);
        assert_eq!(a.allocated(), 3);
    }

    #[test]
    fn frame_ids_order_by_allocation() {
        let mut a = FrameAllocator::new();
        let f0 = a.alloc();
        let f1 = a.alloc();
        assert!(f0 < f1);
        assert_eq!(f0.raw(), 0);
        assert_eq!(format!("{f1:?}"), "F1");
    }
}

//! Per-thread hypervisor state as a self-contained, `Send` shard.
//!
//! Everything the hypervisor keeps *per guest thread* — the thread's shadow
//! page table, its Aikido protection table, and its direct-mapped software
//! TLB — lives in one [`ThreadShard`]. The shard owns no references into the
//! rest of the VM, so disjoint shards can be updated independently: the VM's
//! broadcast operations (`restore_temp_protections`, guest page-table
//! synchronisation) iterate shards without aliasing, and the compile-time
//! assertion below guarantees a shard can migrate to another OS thread —
//! the property the epoch-parallel engine's design (commit-ordered VM
//! mutations, shardable per-thread state) rests on.

use aikido_types::{Prot, ThreadId, Vpn};

use crate::prot_table::ThreadProtTable;
use crate::shadow_pt::{ShadowPageTable, ShadowPte};

/// Entries in each thread's direct-mapped software TLB (power of two).
/// Sized to cover a thread's private working set (a few dozen pages) so the
/// steady-state unshared access stays on the two-load fast path.
pub(crate) const TLB_ENTRIES: usize = 64;
/// A TLB slot that can never match a real page.
pub(crate) const TLB_EMPTY: (Vpn, Prot) = (Vpn::new(u64::MAX), Prot::NONE);

/// One guest thread's slice of hypervisor state (shadow page table,
/// protection table, software TLB).
#[derive(Debug)]
pub(crate) struct ThreadShard {
    pub(crate) id: ThreadId,
    pub(crate) shadow: ShadowPageTable,
    pub(crate) prot: ThreadProtTable,
    /// Direct-mapped software TLB over recent successful translations
    /// (page → effective protection). Purely an accelerator: it only serves
    /// accesses the shadow table would allow, so hits and misses produce
    /// byte-identical outcomes and charges. Flash-invalidated whenever the
    /// thread's shadow table changes.
    pub(crate) tlb: [(Vpn, Prot); TLB_ENTRIES],
}

impl ThreadShard {
    pub(crate) fn new(id: ThreadId) -> Self {
        ThreadShard {
            id,
            shadow: ShadowPageTable::new(),
            prot: ThreadProtTable::new(),
            tlb: [TLB_EMPTY; TLB_ENTRIES],
        }
    }

    #[inline]
    pub(crate) fn tlb_slot(page: Vpn) -> usize {
        (page.raw() as usize) & (TLB_ENTRIES - 1)
    }

    #[inline]
    pub(crate) fn tlb_lookup(&self, page: Vpn) -> Option<Prot> {
        let (cached_page, prot) = self.tlb[Self::tlb_slot(page)];
        if cached_page == page {
            Some(prot)
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn tlb_fill(&mut self, page: Vpn, prot: Prot) {
        self.tlb[Self::tlb_slot(page)] = (page, prot);
    }

    /// Drops any cached translation of `page`. A translation of `page` can
    /// only live in its own direct-mapped slot, so this is O(1).
    #[inline]
    pub(crate) fn tlb_invalidate(&mut self, page: Vpn) {
        let slot = Self::tlb_slot(page);
        if self.tlb[slot].0 == page {
            self.tlb[slot] = TLB_EMPTY;
        }
    }

    /// Installs a shadow entry, invalidating the TLB.
    pub(crate) fn install_shadow(&mut self, page: Vpn, pte: ShadowPte) {
        self.tlb_invalidate(page);
        self.shadow.install(page, pte);
    }

    /// Invalidates a shadow entry and the TLB.
    pub(crate) fn invalidate_shadow(&mut self, page: Vpn) {
        self.tlb_invalidate(page);
        self.shadow.invalidate(page);
    }

    /// Updates a shadow entry's protection, invalidating the TLB; returns
    /// `true` if an entry existed.
    pub(crate) fn set_shadow_prot(&mut self, page: Vpn, prot: Prot) -> bool {
        self.tlb_invalidate(page);
        self.shadow.set_prot(page, prot)
    }
}

// A shard owns all of its storage (chunked flat tables and a fixed TLB
// array), so it can be handed to another OS thread wholesale. Verified at
// compile time so a future field can't silently regress it.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ThreadShard>();
};

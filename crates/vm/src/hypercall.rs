//! The hypercall interface and the userspace Aikido library model (§3.2.5).
//!
//! The real AikidoLib is linked into the guest process (inside DynamoRIO) and
//! talks to the hypervisor with hypercalls that bypass the guest OS. At
//! initialisation it registers two specially allocated pages — one mapped
//! without read access and one without write access — that the hypervisor
//! uses as the *fake* fault addresses when injecting Aikido page faults, plus
//! a mailbox address where the hypervisor writes the *true* faulting address.

use serde::{Deserialize, Serialize};
use std::fmt;

use aikido_types::{AccessKind, Addr, Prot, ThreadId};

/// A request from the guest userspace Aikido library to the hypervisor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Hypercall {
    /// Register the fake-fault pages and the true-address mailbox; must be the
    /// first hypercall issued.
    Init {
        /// Page with no read access; faults that were reads are injected here.
        read_fault_page: Addr,
        /// Page with no write access; faults that were writes are injected here.
        write_fault_page: Addr,
        /// Address at which the hypervisor reports the true faulting address.
        mailbox: Addr,
    },
    /// Register a thread so the hypervisor creates a shadow page table and
    /// protection table for it.
    RegisterThread {
        /// The new thread.
        thread: ThreadId,
    },
    /// Set the per-thread protection of a contiguous range of pages.
    ProtectRange {
        /// Thread whose view is being restricted.
        thread: ThreadId,
        /// First address of the range (page aligned).
        base: Addr,
        /// Number of pages.
        pages: u64,
        /// Requested protection (intersected with the guest protection).
        prot: Prot,
    },
    /// Remove any per-thread restriction from a contiguous range of pages.
    UnprotectRange {
        /// Thread whose restriction is removed.
        thread: ThreadId,
        /// First address of the range (page aligned).
        base: Addr,
        /// Number of pages.
        pages: u64,
    },
    /// Set the protection of a page for *every* registered thread (used when a
    /// page becomes shared and must be globally inaccessible).
    ProtectAllThreads {
        /// First address of the range (page aligned).
        base: Addr,
        /// Number of pages.
        pages: u64,
        /// Requested protection.
        prot: Prot,
    },
    /// Notify the hypervisor of a guest context switch between two threads of
    /// the Aikido-enabled process (the paper inserts this hypercall into the
    /// guest scheduler because CR3 does not change on same-address-space
    /// switches).
    ContextSwitch {
        /// Thread being switched out.
        from: ThreadId,
        /// Thread being switched in.
        to: ThreadId,
    },
}

impl fmt::Display for Hypercall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hypercall::Init { .. } => write!(f, "init"),
            Hypercall::RegisterThread { thread } => write!(f, "register {thread}"),
            Hypercall::ProtectRange {
                thread,
                base,
                pages,
                prot,
            } => write!(f, "protect {pages} pages at {base} for {thread} as {prot}"),
            Hypercall::UnprotectRange {
                thread,
                base,
                pages,
            } => {
                write!(f, "unprotect {pages} pages at {base} for {thread}")
            }
            Hypercall::ProtectAllThreads { base, pages, prot } => {
                write!(
                    f,
                    "protect {pages} pages at {base} for all threads as {prot}"
                )
            }
            Hypercall::ContextSwitch { from, to } => write!(f, "context switch {from} -> {to}"),
        }
    }
}

/// The mailbox shared between the hypervisor and the Aikido library: fake
/// fault pages plus the location of the last true faulting address.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMailbox {
    /// Page used as the fake address for faulting *reads*.
    pub read_fault_page: Addr,
    /// Page used as the fake address for faulting *writes*.
    pub write_fault_page: Addr,
    /// Address of the mailbox word itself.
    pub mailbox: Addr,
    /// Last true faulting address written by the hypervisor.
    pub last_true_addr: Option<Addr>,
    /// Last faulting access kind written by the hypervisor.
    pub last_kind: Option<AccessKind>,
}

impl FaultMailbox {
    /// The fake address the hypervisor will use for a fault of kind `kind`.
    pub fn fake_addr_for(&self, kind: AccessKind) -> Addr {
        match kind {
            AccessKind::Read => self.read_fault_page,
            AccessKind::Write => self.write_fault_page,
        }
    }

    /// Records a fault delivery (hypervisor side).
    pub fn record(&mut self, true_addr: Addr, kind: AccessKind) {
        self.last_true_addr = Some(true_addr);
        self.last_kind = Some(kind);
    }
}

/// Guest-side view of the Aikido library (`aikido_is_aikido_pagefault()` and
/// friends): lets a signal handler decide whether a delivered fault came from
/// Aikido and recover the true faulting address.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AikidoLib {
    mailbox: FaultMailbox,
}

impl AikidoLib {
    /// Creates the library view over an initialised mailbox.
    pub fn new(mailbox: FaultMailbox) -> Self {
        AikidoLib { mailbox }
    }

    /// Returns `true` if a fault delivered at `fault_addr` is an Aikido fault
    /// (it was injected at one of the two registered fake-fault pages).
    pub fn is_aikido_pagefault(&self, fault_addr: Addr) -> bool {
        fault_addr.page() == self.mailbox.read_fault_page.page()
            || fault_addr.page() == self.mailbox.write_fault_page.page()
    }

    /// The true faulting address of the last Aikido fault, if any.
    pub fn true_fault_addr(&self) -> Option<Addr> {
        self.mailbox.last_true_addr
    }

    /// The access kind of the last Aikido fault, if any.
    pub fn last_fault_kind(&self) -> Option<AccessKind> {
        self.mailbox.last_kind
    }

    /// Updates the library's view of the mailbox (the simulator calls this
    /// after the hypervisor records a fault; in the real system the library
    /// simply reads the shared memory).
    pub fn sync(&mut self, mailbox: FaultMailbox) {
        self.mailbox = mailbox;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mailbox() -> FaultMailbox {
        FaultMailbox {
            read_fault_page: Addr::new(0x7000_0000),
            write_fault_page: Addr::new(0x7000_1000),
            mailbox: Addr::new(0x7000_2000),
            last_true_addr: None,
            last_kind: None,
        }
    }

    #[test]
    fn fake_addr_depends_on_access_kind() {
        let m = mailbox();
        assert_eq!(m.fake_addr_for(AccessKind::Read), Addr::new(0x7000_0000));
        assert_eq!(m.fake_addr_for(AccessKind::Write), Addr::new(0x7000_1000));
    }

    #[test]
    fn library_recognises_aikido_faults_by_fake_page() {
        let mut m = mailbox();
        m.record(Addr::new(0xdead_beef), AccessKind::Write);
        let lib = AikidoLib::new(m);
        assert!(lib.is_aikido_pagefault(Addr::new(0x7000_0004)));
        assert!(lib.is_aikido_pagefault(Addr::new(0x7000_1ff8)));
        assert!(!lib.is_aikido_pagefault(Addr::new(0xdead_beef)));
        assert_eq!(lib.true_fault_addr(), Some(Addr::new(0xdead_beef)));
        assert_eq!(lib.last_fault_kind(), Some(AccessKind::Write));
    }

    #[test]
    fn hypercall_display_is_informative() {
        let h = Hypercall::ProtectRange {
            thread: ThreadId::new(3),
            base: Addr::new(0x4000),
            pages: 2,
            prot: Prot::NONE,
        };
        let s = h.to_string();
        assert!(s.contains("thread 3"));
        assert!(s.contains("2 pages"));
    }
}

//! Fleet-level reporting: per-run outcomes plus aggregate metrics, all
//! deterministic and serializable.

use aikido_sim::RunReport;
use serde::Serialize;

/// Occupancy and throughput counters for one simulator shard.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Runs ever assigned to this shard.
    pub assigned: u64,
    /// Runs this shard completed successfully.
    pub completed: u64,
    /// Runs that finished with an error.
    pub failed: u64,
    /// Assigned runs that landed here via the load-aware override rather
    /// than rendezvous preference.
    pub overridden: u64,
    /// Highest pending (queued + in flight) count ever observed.
    pub peak_pending: usize,
    /// Current pending count.
    pub pending: usize,
}

/// Admission and spend accounting for one tenant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantUsage {
    /// The tenant.
    pub tenant: String,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests refused (every refusal also appears in
    /// [`FleetReport::rejections`]).
    pub rejected: u64,
    /// Admitted runs completed successfully.
    pub completed: u64,
    /// Admitted runs that finished with an error.
    pub failed: u64,
    /// Simulated accesses charged against the quota so far.
    pub spent_accesses: u64,
    /// The tenant's lifetime access quota.
    pub access_quota: u64,
}

/// Global queue statistics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueueMetrics {
    /// Configured queue capacity.
    pub capacity: usize,
    /// Requests ever submitted (admitted + rejected).
    pub submitted: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Highest queue depth ever observed.
    pub peak_depth: usize,
    /// Current queue depth.
    pub depth: usize,
}

/// One refused request: who, when (logical time), and the structured reason.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RejectionRecord {
    /// The refused tenant.
    pub tenant: String,
    /// Logical admission-clock timestamp of the refusal.
    pub at: u64,
    /// Machine-readable category (`AdmitError::kind`).
    pub kind: String,
    /// Human-readable reason (`AdmitError`'s display form).
    pub reason: String,
}

/// The delivered result of one admitted run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunOutcome {
    /// Fleet-wide run id (admission order).
    pub run_id: u64,
    /// The tenant billed for the run.
    pub tenant: String,
    /// Workload name (from the spec).
    pub workload: String,
    /// Execution mode label.
    pub mode: String,
    /// The shard that executed the run.
    pub shard: usize,
    /// Whether placement was diverted by the load-aware override.
    pub overridden: bool,
    /// Logical admission timestamp.
    pub admitted_at: u64,
    /// The simulation report — byte-identical to a direct
    /// `Simulator::from_config` run of the same request. `None` on failure.
    pub report: Option<RunReport>,
    /// The failure, when the run did not complete.
    pub error: Option<String>,
}

/// Everything the service knows, as one deterministic serializable document:
/// per-run outcomes (in run-id order), per-shard occupancy, per-tenant
/// spend, queue statistics and the full rejection log. Two services fed the
/// same request sequence serialize byte-identical fleet reports.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Per-shard metrics, indexed by shard.
    pub shards: Vec<ShardMetrics>,
    /// Per-tenant accounting, sorted by tenant name.
    pub tenants: Vec<TenantUsage>,
    /// Global queue statistics.
    pub queue: QueueMetrics,
    /// Every refusal, in admission-clock order.
    pub rejections: Vec<RejectionRecord>,
    /// Every delivered run, in run-id order.
    pub runs: Vec<RunOutcome>,
}

impl FleetReport {
    /// The outcomes that completed successfully.
    pub fn successes(&self) -> impl Iterator<Item = &RunOutcome> {
        self.runs.iter().filter(|r| r.report.is_some())
    }

    /// The outcomes that failed.
    pub fn failures(&self) -> impl Iterator<Item = &RunOutcome> {
        self.runs.iter().filter(|r| r.error.is_some())
    }
}

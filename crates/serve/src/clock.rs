//! Logical time for the control plane.
//!
//! Every timestamp in a [`FleetReport`](crate::FleetReport) is *logical*: a
//! monotonically increasing event counter, never a wall clock. That is what
//! makes fleet reports byte-for-byte deterministic — two services fed the
//! same request sequence produce identical reports regardless of machine
//! speed — and what keeps the admission/budget unit tests free of wall-clock
//! flakiness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of logical timestamps for control-plane events.
pub trait ServiceClock: std::fmt::Debug + Send {
    /// The timestamp for the event happening now. Must be monotonically
    /// non-decreasing across calls.
    fn now(&mut self) -> u64;
}

/// The default clock: every observed event gets the next integer, so a
/// timestamp is simply the event's position in the control plane's history.
#[derive(Debug, Default)]
pub struct EventClock {
    next: u64,
}

impl ServiceClock for EventClock {
    fn now(&mut self) -> u64 {
        let t = self.next;
        self.next += 1;
        t
    }
}

/// A manually driven clock for tests: the control plane reads whatever time
/// the test last set, and the cloneable handle lets the test advance time
/// while the plane holds the clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock starting at time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ticks`.
    pub fn advance(&self, ticks: u64) {
        self.now.fetch_add(ticks, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute time.
    pub fn set(&self, now: u64) {
        self.now.store(now, Ordering::SeqCst);
    }

    /// The current virtual time.
    pub fn current(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl ServiceClock for VirtualClock {
    fn now(&mut self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_clock_counts_events() {
        let mut clock = EventClock::default();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 1);
        assert_eq!(clock.now(), 2);
    }

    #[test]
    fn virtual_clock_only_moves_when_told() {
        let handle = VirtualClock::new();
        let mut clock = handle.clone();
        assert_eq!(clock.now(), 0);
        assert_eq!(clock.now(), 0, "no flakiness: time is frozen");
        handle.advance(5);
        assert_eq!(clock.now(), 5);
        handle.set(100);
        assert_eq!(clock.now(), 100);
        assert_eq!(handle.current(), 100);
    }
}

//! The worker fleet: bounded, scoped execution of queued runs.
//!
//! Mirrors the epoch engine's concurrency idiom (`std::thread::scope` plus a
//! bounded `sync_channel`): a fixed pool of scoped workers pulls queued runs
//! off a bounded work lane, executes each with a per-run
//! [`Simulator::from_config`], and sends outcomes back on an unbounded
//! results lane. The main thread finishes sending before it starts
//! collecting and drops its sender first, so the drain can neither deadlock
//! nor leak a worker. Outcomes are sorted by run id before they are applied
//! to the control plane, so the fleet report is byte-identical regardless of
//! how the OS scheduled the workers — the simulator's own re-entrancy
//! (multiple instances on concurrent threads produce byte-identical reports)
//! does the rest.

use std::sync::mpsc;
use std::sync::Mutex;

use aikido_sim::Simulator;
use aikido_workloads::Workload;

use crate::budget::{AdmitError, TenantBudget};
use crate::clock::ServiceClock;
use crate::control::{ControlPlane, QueuedRun, RunTicket, ServiceConfig};
use crate::report::{FleetReport, RunOutcome};
use crate::request::RunRequest;

/// The long-running multi-tenant simulation service: a [`ControlPlane`]
/// fronted by `submit`, executed by a bounded worker fleet on `drain`.
///
/// ```
/// use aikido_serve::{RunRequest, ServiceConfig, SimService};
/// use aikido_sim::{Mode, SimConfig};
/// use aikido_workloads::WorkloadSpec;
///
/// let mut service = SimService::new(ServiceConfig::default()).unwrap();
/// let spec = WorkloadSpec::parsec("blackscholes").unwrap();
/// let request = RunRequest::new("acme", spec, Mode::Aikido)
///     .with_config(SimConfig::default().with_scale(0.02));
/// service.submit(request).unwrap();
/// let report = service.drain();
/// assert_eq!(report.runs.len(), 1);
/// assert!(report.runs[0].report.is_some());
/// ```
#[derive(Debug)]
pub struct SimService {
    plane: ControlPlane,
}

impl SimService {
    /// A service with the default event clock.
    ///
    /// # Errors
    ///
    /// Returns the validation failure if `config` is invalid.
    pub fn new(config: ServiceConfig) -> Result<Self, String> {
        Ok(SimService {
            plane: ControlPlane::new(config)?,
        })
    }

    /// A service stamping control-plane events from a caller-provided clock.
    ///
    /// # Errors
    ///
    /// Returns the validation failure if `config` is invalid.
    pub fn with_clock(config: ServiceConfig, clock: Box<dyn ServiceClock>) -> Result<Self, String> {
        Ok(SimService {
            plane: ControlPlane::with_clock(config, clock)?,
        })
    }

    /// Installs an explicit budget for `tenant` (see
    /// [`ControlPlane::set_budget`]).
    pub fn set_budget(&mut self, tenant: impl Into<String>, budget: TenantBudget) {
        self.plane.set_budget(tenant, budget);
    }

    /// Admits or refuses a request (see [`ControlPlane::submit`]).
    ///
    /// # Errors
    ///
    /// A structured [`AdmitError`]; never a panic, never a hang.
    pub fn submit(&mut self, request: RunRequest) -> Result<RunTicket, AdmitError> {
        self.plane.submit(request)
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.plane.queue_depth()
    }

    /// Executes every queued run on the worker fleet, applies the outcomes
    /// to the control plane in run-id order, and returns the aggregated
    /// [`FleetReport`]. Queued and drained batches may alternate; the report
    /// accumulates across drains.
    pub fn drain(&mut self) -> FleetReport {
        let mut jobs = Vec::new();
        while let Some(run) = self.plane.take_queued() {
            jobs.push(run);
        }
        let workers = self.plane.config().fleet_workers.min(jobs.len()).max(1);
        let mut outcomes = execute(jobs, workers);
        outcomes.sort_by_key(|o| o.run_id);
        for outcome in outcomes {
            self.plane.complete(outcome);
        }
        self.plane.report()
    }

    /// The aggregated report without executing anything.
    pub fn report(&self) -> FleetReport {
        self.plane.report()
    }
}

/// Runs `jobs` on `workers` scoped threads and returns the outcomes in
/// arbitrary order.
fn execute(jobs: Vec<QueuedRun>, workers: usize) -> Vec<RunOutcome> {
    if jobs.is_empty() {
        return Vec::new();
    }
    let total = jobs.len();
    // Bounded work lane: admission already capped the batch, the bound just
    // keeps the hand-off cheap. Results are unbounded so a worker never
    // blocks on a slow collector.
    let (work_tx, work_rx) = mpsc::sync_channel::<QueuedRun>(workers * 2);
    let work_rx = Mutex::new(work_rx);
    let (result_tx, result_rx) = mpsc::channel::<RunOutcome>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let work_rx = &work_rx;
            let result_tx = result_tx.clone();
            scope.spawn(move || loop {
                // Hold the lock only for the receive, not the run.
                let job = match work_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => return,
                };
                match job {
                    Ok(job) => {
                        let outcome = run_one(job);
                        if result_tx.send(outcome).is_err() {
                            return;
                        }
                    }
                    Err(_) => return, // Work lane closed: batch done.
                }
            });
        }
        for job in jobs {
            work_tx
                .send(job)
                .expect("workers outlive the send loop inside the scope");
        }
        drop(work_tx);
    });
    drop(result_tx);
    let outcomes: Vec<RunOutcome> = result_rx.into_iter().collect();
    assert_eq!(
        outcomes.len(),
        total,
        "every queued run must produce exactly one outcome"
    );
    outcomes
}

/// Executes one admitted run: generate the scaled workload, build the
/// simulator from the request's config verbatim, run, and wrap the result.
/// Failures become structured outcomes, never fleet panics.
fn run_one(job: QueuedRun) -> RunOutcome {
    let QueuedRun { ticket, request } = job;
    let mut outcome = RunOutcome {
        run_id: ticket.run_id,
        tenant: ticket.tenant,
        workload: request.spec.name.clone(),
        mode: request.mode.label().to_string(),
        shard: ticket.shard,
        overridden: ticket.overridden,
        admitted_at: ticket.admitted_at,
        report: None,
        error: None,
    };
    let workload = Workload::generate(&request.effective_spec());
    match Simulator::from_config(request.config) {
        // run_checkpointed honours the config's checkpoint policy and is an
        // ordinary run when the policy is unset.
        Ok(sim) => match sim.run_checkpointed(&workload, request.mode) {
            Ok(report) => outcome.report = Some(report),
            Err(err) => outcome.error = Some(err.to_string()),
        },
        // Unreachable through submit (admission validates the config), but
        // the fleet still never panics on a bad job.
        Err(err) => outcome.error = Some(err.to_string()),
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use aikido_sim::{Mode, SimConfig};
    use aikido_workloads::WorkloadSpec;

    fn small_request(tenant: &str, preset: &str, mode: Mode) -> RunRequest {
        RunRequest::new(tenant, WorkloadSpec::parsec(preset).unwrap(), mode)
            .with_config(SimConfig::default().with_scale(0.02))
    }

    #[test]
    fn drained_reports_are_byte_identical_to_direct_runs() {
        let mut service = SimService::new(ServiceConfig::default()).unwrap();
        let requests = [
            small_request("a", "blackscholes", Mode::Native),
            small_request("a", "blackscholes", Mode::Aikido),
            small_request("b", "canneal", Mode::FullInstrumentation),
            small_request("c", "swaptions", Mode::Aikido),
        ];
        for request in &requests {
            service.submit(request.clone()).unwrap();
        }
        let report = service.drain();
        assert_eq!(report.runs.len(), requests.len());
        for (outcome, request) in report.runs.iter().zip(&requests) {
            let direct = Simulator::from_config(request.config.clone())
                .unwrap()
                .try_run(&Workload::generate(&request.effective_spec()), request.mode)
                .unwrap();
            let delivered = outcome.report.as_ref().expect("run succeeded");
            assert_eq!(delivered, &direct);
            assert_eq!(
                serde_json::to_string(delivered).unwrap(),
                serde_json::to_string(&direct).unwrap(),
                "byte-identical serialization"
            );
        }
    }

    #[test]
    fn fleet_reports_are_deterministic_across_identical_services() {
        let run = || {
            let mut service = SimService::new(ServiceConfig {
                fleet_workers: 3,
                ..ServiceConfig::default()
            })
            .unwrap();
            service.set_budget("broke", TenantBudget::default().with_access_quota(0));
            for i in 0..10 {
                let tenant = ["a", "b", "c", "broke"][i % 4];
                let _ = service.submit(small_request(tenant, "blackscholes", Mode::Native));
            }
            serde_json::to_string(&service.drain()).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn queue_and_drain_cycles_accumulate() {
        let mut service = SimService::new(ServiceConfig::default()).unwrap();
        service
            .submit(small_request("a", "blackscholes", Mode::Native))
            .unwrap();
        assert_eq!(service.queue_depth(), 1);
        let report = service.drain();
        assert_eq!(report.runs.len(), 1);
        assert_eq!(service.queue_depth(), 0);

        service
            .submit(small_request("a", "blackscholes", Mode::Aikido))
            .unwrap();
        let report = service.drain();
        assert_eq!(report.runs.len(), 2, "outcomes accumulate across drains");
        assert_eq!(report.queue.admitted, 2);
        assert_eq!(report.shards.iter().map(|s| s.pending).sum::<usize>(), 0);
    }

    #[test]
    fn draining_an_empty_service_is_a_no_op() {
        let mut service = SimService::new(ServiceConfig::default()).unwrap();
        let report = service.drain();
        assert!(report.runs.is_empty());
        assert_eq!(report.queue.admitted, 0);
    }
}

//! The unified request API: one serializable value describing a run.

use aikido_sim::{Mode, SimConfig};
use aikido_workloads::WorkloadSpec;
use serde::Serialize;

/// One tenant-attributed simulation request: who is asking, what workload to
/// run, in which execution mode, under which [`SimConfig`].
///
/// The embedded config is used *verbatim* — the simulator the fleet builds
/// for this request is exactly `Simulator::from_config(request.config)`, so
/// a delivered report is byte-identical to a direct run of the same request
/// (the `loadgen` harness and the `service_equivalence` suite pin this).
///
/// Wire format (see [`RunRequest::from_json`]):
///
/// ```json
/// {
///   "tenant": "acme",
///   "workload": {"preset": "vips", "threads": 4},
///   "mode": "aikido",
///   "config": {"workers": 2, "scale": 0.05}
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunRequest {
    /// The tenant the run is attributed to (billing, budgets, quotas).
    pub tenant: String,
    /// The workload to generate and run.
    pub spec: WorkloadSpec,
    /// Execution mode (native / full instrumentation / Aikido).
    pub mode: Mode,
    /// The full simulator configuration, embedded verbatim.
    pub config: SimConfig,
}

impl RunRequest {
    /// A request for `tenant` running `spec` in `mode` under the default
    /// config.
    pub fn new(tenant: impl Into<String>, spec: WorkloadSpec, mode: Mode) -> Self {
        RunRequest {
            tenant: tenant.into(),
            spec,
            mode,
            config: SimConfig::default(),
        }
    }

    /// Builder: replaces the embedded [`SimConfig`].
    pub fn with_config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Parses a request from its JSON wire format. `tenant`, `workload` and
    /// `mode` are required; `config` is optional (default config when
    /// absent). Unknown fields and invalid values are structured errors —
    /// the admission layer rejects, it never panics.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("request is not JSON: {e}"))?;
        Self::from_json_value(&value)
    }

    /// [`RunRequest::from_json`] on an already-parsed value.
    pub fn from_json_value(value: &serde_json::Value) -> Result<Self, String> {
        let serde_json::Value::Object(entries) = value else {
            return Err("request must be a JSON object".into());
        };
        let mut tenant = None;
        let mut spec = None;
        let mut mode = None;
        let mut config = SimConfig::default();
        for (key, value) in entries {
            match key.as_str() {
                "tenant" => {
                    let t = value.as_str().ok_or("'tenant' must be a JSON string")?;
                    if t.is_empty() {
                        return Err("'tenant' must be non-empty".into());
                    }
                    tenant = Some(t.to_string());
                }
                "workload" => spec = Some(WorkloadSpec::from_json_value(value)?),
                "mode" => {
                    let label = value.as_str().ok_or("'mode' must be a JSON string")?;
                    mode = Some(
                        Mode::from_label(label).ok_or_else(|| format!("unknown mode '{label}'"))?,
                    );
                }
                "config" => {
                    config = SimConfig::from_json_value(value).map_err(|e| e.to_string())?
                }
                unknown => return Err(format!("unknown request field '{unknown}'")),
            }
        }
        Ok(RunRequest {
            tenant: tenant.ok_or("request is missing 'tenant'")?,
            spec: spec.ok_or("request is missing 'workload'")?,
            mode: mode.ok_or("request is missing 'mode'")?,
            config,
        })
    }

    /// The workload spec the fleet will actually generate: the embedded spec
    /// scaled by the config's scale factor. Use this to reproduce a service
    /// run directly.
    pub fn effective_spec(&self) -> WorkloadSpec {
        self.spec.clone().scaled(self.config.scale)
    }

    /// The quota cost of this request: the simulated memory accesses the
    /// effective (scaled) workload performs. Charged against the tenant's
    /// `access_quota` at admission.
    pub fn cost_accesses(&self) -> u64 {
        self.effective_spec().total_mem_accesses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_wire_format() {
        let request = RunRequest::from_json(
            r#"{
                "tenant": "acme",
                "workload": {"preset": "vips", "threads": 4},
                "mode": "aikido",
                "config": {"workers": 2, "scale": 0.05}
            }"#,
        )
        .unwrap();
        assert_eq!(request.tenant, "acme");
        assert_eq!(request.spec.name, "vips");
        assert_eq!(request.spec.threads, 4);
        assert_eq!(request.mode, Mode::Aikido);
        assert_eq!(request.config.workers, 2);
        assert_eq!(request.config.scale, 0.05);
    }

    #[test]
    fn config_is_optional_and_defaults() {
        let request = RunRequest::from_json(
            r#"{"tenant": "t", "workload": {"preset": "canneal"}, "mode": "native"}"#,
        )
        .unwrap();
        assert_eq!(request.config, SimConfig::default());
    }

    #[test]
    fn rejects_malformed_requests_with_structured_reasons() {
        for (bad, needle) in [
            (
                r#"{"workload": {"preset": "vips"}, "mode": "aikido"}"#,
                "tenant",
            ),
            (r#"{"tenant": "t", "mode": "aikido"}"#, "workload"),
            (r#"{"tenant": "t", "workload": {"preset": "vips"}}"#, "mode"),
            (
                r#"{"tenant": "t", "workload": {"preset": "vips"}, "mode": "warp"}"#,
                "unknown mode 'warp'",
            ),
            (
                r#"{"tenant": "", "workload": {"preset": "vips"}, "mode": "native"}"#,
                "non-empty",
            ),
            (
                r#"{"tenant": "t", "workload": {"preset": "vips"}, "mode": "native", "extra": 1}"#,
                "unknown request field",
            ),
            ("not json", "not JSON"),
            ("[1]", "must be a JSON object"),
        ] {
            let err = RunRequest::from_json(bad).unwrap_err();
            assert!(err.contains(needle), "{bad} -> {err}");
        }
    }

    #[test]
    fn cost_is_the_scaled_access_count() {
        let spec = WorkloadSpec::parsec("blackscholes").unwrap();
        let request = RunRequest::new("t", spec.clone(), Mode::Native)
            .with_config(SimConfig::default().with_scale(0.05));
        assert_eq!(
            request.cost_accesses(),
            spec.scaled(0.05).total_mem_accesses()
        );
    }

    #[test]
    fn wire_form_reconstructs_the_typed_request() {
        // A request is fully described by (tenant, preset + overrides, mode
        // label, config object) — rebuilding it from those four pieces must
        // give back an identical value, seed included. This is the property
        // the service relies on when it logs and replays request sequences.
        let request = RunRequest::new(
            "round-trip",
            WorkloadSpec::parsec("swaptions").unwrap().with_threads(2),
            Mode::FullInstrumentation,
        )
        .with_config(SimConfig::default().with_workers(3).with_scale(0.1));
        let mut config_json = String::new();
        serde::Serialize::json_write(&request.config, &mut config_json);
        let wire = format!(
            r#"{{"tenant": "round-trip",
                 "workload": {{"preset": "swaptions", "threads": 2}},
                 "mode": "{}",
                 "config": {}}}"#,
            request.mode.label(),
            config_json
        );
        assert_eq!(RunRequest::from_json(&wire).unwrap(), request);
    }
}

//! The control plane: a deterministic admission/placement/accounting state
//! machine.
//!
//! The control plane is single-threaded plain data on purpose. Every
//! decision — admit or refuse, which shard, which timestamps — is a pure
//! function of the request sequence and the service configuration, which is
//! what makes fleet reports reproducible. The worker fleet
//! ([`SimService`](crate::SimService)) is the only concurrent part, and it
//! reports completions back here in run-id order.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::budget::{AdmitError, TenantBudget};
use crate::clock::{EventClock, ServiceClock};
use crate::placement;
use crate::report::{
    FleetReport, QueueMetrics, RejectionRecord, RunOutcome, ShardMetrics, TenantUsage,
};
use crate::request::RunRequest;
use serde::Serialize;

/// Static service configuration: pool sizes and the default tenant budget.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceConfig {
    /// Simulator shards runs are placed onto.
    pub shards: usize,
    /// OS worker threads the fleet executes runs on.
    pub fleet_workers: usize,
    /// Global queue capacity (across all tenants).
    pub queue_capacity: usize,
    /// Pending runs per shard before the load-aware placement override
    /// diverts new work elsewhere.
    pub shard_capacity: usize,
    /// Budget applied to tenants without an explicit one.
    pub default_budget: TenantBudget,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            fleet_workers: 4,
            queue_capacity: 1024,
            shard_capacity: 64,
            default_budget: TenantBudget::default(),
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == 0 {
            return Err("shards must be at least 1".into());
        }
        if self.fleet_workers == 0 {
            return Err("fleet_workers must be at least 1".into());
        }
        if self.queue_capacity == 0 {
            return Err("queue_capacity must be at least 1".into());
        }
        if self.shard_capacity == 0 {
            return Err("shard_capacity must be at least 1".into());
        }
        Ok(())
    }
}

/// Proof of admission: the identifiers the caller needs to correlate the
/// eventual [`RunOutcome`](crate::RunOutcome) with their request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RunTicket {
    /// Fleet-wide run id (admission order, starting at 0).
    pub run_id: u64,
    /// The tenant billed.
    pub tenant: String,
    /// The shard the run was placed on.
    pub shard: usize,
    /// Whether the load-aware override diverted placement.
    pub overridden: bool,
    /// Logical admission timestamp.
    pub admitted_at: u64,
}

/// An admitted run waiting for a fleet worker.
#[derive(Debug, Clone)]
pub struct QueuedRun {
    /// The admission ticket.
    pub ticket: RunTicket,
    /// The admitted request, verbatim.
    pub request: RunRequest,
}

#[derive(Debug, Default)]
struct TenantState {
    budget: TenantBudget,
    queued: usize,
    in_flight: usize,
    admitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    spent: u64,
}

#[derive(Debug, Default, Clone)]
struct ShardState {
    assigned: u64,
    completed: u64,
    failed: u64,
    overridden: u64,
    pending: usize,
    peak_pending: usize,
}

/// The deterministic admission / placement / accounting state machine.
pub struct ControlPlane {
    config: ServiceConfig,
    clock: Box<dyn ServiceClock>,
    tenants: BTreeMap<String, TenantState>,
    shards: Vec<ShardState>,
    queue: VecDeque<QueuedRun>,
    outcomes: Vec<RunOutcome>,
    rejections: Vec<RejectionRecord>,
    next_run_id: u64,
    submitted: u64,
    peak_queue_depth: usize,
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("config", &self.config)
            .field("tenants", &self.tenants.len())
            .field("queue_depth", &self.queue.len())
            .field("next_run_id", &self.next_run_id)
            .finish()
    }
}

impl ControlPlane {
    /// A control plane with the default [`EventClock`].
    ///
    /// # Errors
    ///
    /// Returns the validation failure if `config` is invalid.
    pub fn new(config: ServiceConfig) -> Result<Self, String> {
        Self::with_clock(config, Box::<EventClock>::default())
    }

    /// A control plane stamping events from a caller-provided clock (tests
    /// use [`VirtualClock`](crate::VirtualClock) for deterministic
    /// timestamps).
    ///
    /// # Errors
    ///
    /// Returns the validation failure if `config` is invalid.
    pub fn with_clock(config: ServiceConfig, clock: Box<dyn ServiceClock>) -> Result<Self, String> {
        config.validate()?;
        let shards = vec![ShardState::default(); config.shards];
        Ok(ControlPlane {
            config,
            clock,
            tenants: BTreeMap::new(),
            shards,
            queue: VecDeque::new(),
            outcomes: Vec::new(),
            rejections: Vec::new(),
            next_run_id: 0,
            submitted: 0,
            peak_queue_depth: 0,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Installs an explicit budget for `tenant` (otherwise the default
    /// budget applies on first contact). Replaces any previous budget;
    /// accounting state is kept.
    pub fn set_budget(&mut self, tenant: impl Into<String>, budget: TenantBudget) {
        let default = self.config.default_budget.clone();
        self.tenants
            .entry(tenant.into())
            .or_insert_with(|| TenantState {
                budget: default,
                ..TenantState::default()
            })
            .budget = budget;
    }

    /// Admits or refuses `request`. Admission validates the request, checks
    /// the global queue, the tenant's backlog and outstanding caps, and the
    /// tenant's access quota (charged here, at admission), then places the
    /// run on a shard via rendezvous hashing with the load-aware override.
    ///
    /// # Errors
    ///
    /// A structured [`AdmitError`]; the refusal is also recorded in the
    /// rejection log. Never panics, never blocks.
    pub fn submit(&mut self, request: RunRequest) -> Result<RunTicket, AdmitError> {
        self.submitted += 1;
        match self.admit(request) {
            Ok(ticket) => Ok(ticket),
            Err((tenant, err)) => {
                let at = self.clock.now();
                self.rejections.push(RejectionRecord {
                    tenant: tenant.clone(),
                    at,
                    kind: err.kind().to_string(),
                    reason: err.to_string(),
                });
                let default = self.config.default_budget.clone();
                self.tenants
                    .entry(tenant)
                    .or_insert_with(|| TenantState {
                        budget: default,
                        ..TenantState::default()
                    })
                    .rejected += 1;
                Err(err)
            }
        }
    }

    fn admit(&mut self, request: RunRequest) -> Result<RunTicket, (String, AdmitError)> {
        let tenant_name = request.tenant.clone();
        let refuse = |err| (tenant_name.clone(), err);

        if let Err(reason) = request.spec.validate() {
            return Err(refuse(AdmitError::InvalidSpec { reason }));
        }
        if let Err(err) = request.config.validate() {
            return Err(refuse(err.into()));
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Err(refuse(AdmitError::QueueFull {
                capacity: self.config.queue_capacity,
            }));
        }

        let default = self.config.default_budget.clone();
        let tenant = self
            .tenants
            .entry(tenant_name.clone())
            .or_insert_with(|| TenantState {
                budget: default,
                ..TenantState::default()
            });
        if tenant.queued >= tenant.budget.max_queued {
            return Err((
                tenant_name.clone(),
                AdmitError::TenantQueueFull {
                    tenant: tenant_name,
                    max_queued: tenant.budget.max_queued,
                },
            ));
        }
        if tenant.queued + tenant.in_flight >= tenant.budget.max_in_flight {
            return Err((
                tenant_name.clone(),
                AdmitError::TenantInFlightFull {
                    tenant: tenant_name,
                    max_in_flight: tenant.budget.max_in_flight,
                },
            ));
        }
        let cost = request.cost_accesses();
        if tenant.spent.saturating_add(cost) > tenant.budget.access_quota {
            return Err((
                tenant_name.clone(),
                AdmitError::QuotaExhausted {
                    tenant: tenant_name,
                    quota: tenant.budget.access_quota,
                    spent: tenant.spent,
                    requested: cost,
                },
            ));
        }

        // Admitted: charge the quota now, place, queue.
        tenant.spent += cost;
        tenant.queued += 1;
        let tenant_seq = tenant.admitted;
        tenant.admitted += 1;

        let pending: Vec<usize> = self.shards.iter().map(|s| s.pending).collect();
        let key = format!("{tenant_name}#{tenant_seq}");
        let placement = placement::place(&key, &pending, self.config.shard_capacity);
        let shard = &mut self.shards[placement.shard];
        shard.assigned += 1;
        shard.pending += 1;
        shard.peak_pending = shard.peak_pending.max(shard.pending);
        if placement.overridden {
            shard.overridden += 1;
        }

        let ticket = RunTicket {
            run_id: self.next_run_id,
            tenant: tenant_name,
            shard: placement.shard,
            overridden: placement.overridden,
            admitted_at: self.clock.now(),
        };
        self.next_run_id += 1;
        self.queue.push_back(QueuedRun {
            ticket: ticket.clone(),
            request,
        });
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
        Ok(ticket)
    }

    /// Hands the oldest queued run to the fleet, moving the tenant's count
    /// from queued to in-flight.
    pub fn take_queued(&mut self) -> Option<QueuedRun> {
        let run = self.queue.pop_front()?;
        let tenant = self
            .tenants
            .get_mut(&run.ticket.tenant)
            .expect("queued runs belong to known tenants");
        tenant.queued -= 1;
        tenant.in_flight += 1;
        Some(run)
    }

    /// Records a finished run. The fleet calls this in run-id order so the
    /// resulting report is independent of worker scheduling.
    pub fn complete(&mut self, outcome: RunOutcome) {
        let tenant = self
            .tenants
            .get_mut(&outcome.tenant)
            .expect("completions belong to known tenants");
        tenant.in_flight -= 1;
        let shard = &mut self.shards[outcome.shard];
        shard.pending -= 1;
        if outcome.report.is_some() {
            tenant.completed += 1;
            shard.completed += 1;
        } else {
            tenant.failed += 1;
            shard.failed += 1;
        }
        self.outcomes.push(outcome);
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The aggregated fleet report: every outcome in run-id order plus shard
    /// / tenant / queue metrics and the rejection log. Deterministic for a
    /// fixed request sequence.
    pub fn report(&self) -> FleetReport {
        let mut runs = self.outcomes.clone();
        runs.sort_by_key(|r| r.run_id);
        FleetReport {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(shard, s)| ShardMetrics {
                    shard,
                    assigned: s.assigned,
                    completed: s.completed,
                    failed: s.failed,
                    overridden: s.overridden,
                    peak_pending: s.peak_pending,
                    pending: s.pending,
                })
                .collect(),
            tenants: self
                .tenants
                .iter()
                .map(|(name, t)| TenantUsage {
                    tenant: name.clone(),
                    admitted: t.admitted,
                    rejected: t.rejected,
                    completed: t.completed,
                    failed: t.failed,
                    spent_accesses: t.spent,
                    access_quota: t.budget.access_quota,
                })
                .collect(),
            queue: QueueMetrics {
                capacity: self.config.queue_capacity,
                submitted: self.submitted,
                admitted: self.next_run_id,
                rejected: self.rejections.len() as u64,
                peak_depth: self.peak_queue_depth,
                depth: self.queue.len(),
            },
            rejections: self.rejections.clone(),
            runs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use aikido_sim::{Mode, SimConfig};
    use aikido_workloads::WorkloadSpec;

    fn request(tenant: &str) -> RunRequest {
        RunRequest::new(
            tenant,
            WorkloadSpec::parsec("blackscholes").unwrap(),
            Mode::Native,
        )
        .with_config(SimConfig::default().with_scale(0.05))
    }

    fn plane(config: ServiceConfig) -> (ControlPlane, VirtualClock) {
        let clock = VirtualClock::new();
        let plane = ControlPlane::with_clock(config, Box::new(clock.clone())).unwrap();
        (plane, clock)
    }

    #[test]
    fn rejects_invalid_service_configs() {
        for config in [
            ServiceConfig {
                shards: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                fleet_workers: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                queue_capacity: 0,
                ..ServiceConfig::default()
            },
            ServiceConfig {
                shard_capacity: 0,
                ..ServiceConfig::default()
            },
        ] {
            assert!(ControlPlane::new(config).is_err());
        }
    }

    #[test]
    fn admission_stamps_tickets_from_the_virtual_clock() {
        let (mut plane, clock) = plane(ServiceConfig::default());
        clock.set(41);
        let ticket = plane.submit(request("acme")).unwrap();
        assert_eq!(ticket.run_id, 0);
        assert_eq!(ticket.admitted_at, 41);
        clock.advance(9);
        let ticket = plane.submit(request("acme")).unwrap();
        assert_eq!(ticket.run_id, 1);
        assert_eq!(ticket.admitted_at, 50);
    }

    #[test]
    fn invalid_spec_and_config_are_refused_up_front() {
        let (mut plane, _clock) = plane(ServiceConfig::default());
        let mut bad_spec = request("acme");
        bad_spec.spec.threads = 0;
        let err = plane.submit(bad_spec).unwrap_err();
        assert_eq!(err.kind(), "invalid_spec");

        let bad_config = request("acme").with_config(SimConfig::default().with_quantum(0));
        let err = plane.submit(bad_config).unwrap_err();
        assert!(
            matches!(&err, AdmitError::InvalidConfig { field, .. } if field == "quantum"),
            "{err}"
        );

        // Both refusals were logged with the tenant attributed.
        let report = plane.report();
        assert_eq!(report.queue.rejected, 2);
        assert_eq!(report.tenants[0].rejected, 2);
        assert_eq!(report.tenants[0].admitted, 0);
    }

    #[test]
    fn global_queue_capacity_refuses_everyone() {
        let config = ServiceConfig {
            queue_capacity: 2,
            ..ServiceConfig::default()
        };
        let (mut plane, _clock) = plane(config);
        plane.submit(request("a")).unwrap();
        plane.submit(request("b")).unwrap();
        let err = plane.submit(request("c")).unwrap_err();
        assert_eq!(err, AdmitError::QueueFull { capacity: 2 });
    }

    #[test]
    fn tenant_backlog_and_outstanding_caps_apply_per_tenant() {
        let config = ServiceConfig {
            default_budget: TenantBudget::default()
                .with_max_queued(2)
                .with_max_in_flight(3),
            ..ServiceConfig::default()
        };
        let (mut plane, _clock) = plane(config);
        plane.submit(request("greedy")).unwrap();
        plane.submit(request("greedy")).unwrap();
        let err = plane.submit(request("greedy")).unwrap_err();
        assert_eq!(
            err,
            AdmitError::TenantQueueFull {
                tenant: "greedy".into(),
                max_queued: 2
            }
        );
        // Another tenant is unaffected.
        plane.submit(request("patient")).unwrap();

        // Move both greedy runs in flight: the backlog is empty again, but
        // the outstanding cap (queued + in flight) still binds, so the
        // refusal switches to TenantInFlightFull.
        for expected in ["greedy", "greedy"] {
            assert_eq!(plane.take_queued().unwrap().ticket.tenant, expected);
        }
        plane.submit(request("greedy")).unwrap();
        let err = plane.submit(request("greedy")).unwrap_err();
        assert_eq!(
            err,
            AdmitError::TenantInFlightFull {
                tenant: "greedy".into(),
                max_in_flight: 3
            }
        );
    }

    #[test]
    fn quota_is_charged_at_admission_and_refuses_overdraw() {
        let cost = request("umbrella").cost_accesses();
        let config = ServiceConfig {
            default_budget: TenantBudget::default().with_access_quota(cost * 2),
            ..ServiceConfig::default()
        };
        let (mut plane, _clock) = plane(config);
        plane.submit(request("umbrella")).unwrap();
        plane.submit(request("umbrella")).unwrap();
        let err = plane.submit(request("umbrella")).unwrap_err();
        assert_eq!(
            err,
            AdmitError::QuotaExhausted {
                tenant: "umbrella".into(),
                quota: cost * 2,
                spent: cost * 2,
                requested: cost,
            }
        );
        let report = plane.report();
        let usage = &report.tenants[0];
        assert_eq!(usage.spent_accesses, cost * 2);
        assert_eq!(usage.admitted, 2);
        assert_eq!(usage.rejected, 1);
    }

    #[test]
    fn explicit_budgets_override_the_default() {
        let (mut plane, _clock) = plane(ServiceConfig::default());
        plane.set_budget("vip", TenantBudget::default().with_access_quota(0));
        let err = plane.submit(request("vip")).unwrap_err();
        assert_eq!(err.kind(), "quota_exhausted");
    }

    #[test]
    fn placement_is_deterministic_and_spreads_load() {
        let submit_all = || {
            let (mut plane, _clock) = plane(ServiceConfig::default());
            let mut shards = Vec::new();
            for i in 0..64 {
                let tenant = format!("tenant-{}", i % 5);
                shards.push(plane.submit(request(&tenant)).unwrap().shard);
            }
            shards
        };
        let first = submit_all();
        let second = submit_all();
        assert_eq!(first, second, "same sequence, same placement");
        let distinct: std::collections::BTreeSet<usize> = first.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "64 runs over 4 shards should spread: {distinct:?}"
        );
    }

    #[test]
    fn override_engages_when_the_preferred_shard_saturates() {
        let config = ServiceConfig {
            shard_capacity: 1,
            ..ServiceConfig::default()
        };
        let (mut plane, _clock) = plane(config);
        let mut overridden = 0;
        for _ in 0..16 {
            if plane.submit(request("acme")).unwrap().overridden {
                overridden += 1;
            }
        }
        assert!(
            overridden > 0,
            "16 pending runs at shard_capacity 1 must divert some placements"
        );
        let report = plane.report();
        let total: u64 = report.shards.iter().map(|s| s.overridden).sum();
        assert_eq!(total, overridden);
        for shard in &report.shards {
            assert!(shard.pending > 0, "override should have spread the load");
        }
    }
}

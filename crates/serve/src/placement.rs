//! Shard placement: rendezvous (highest-random-weight) hashing with a
//! load-aware override.
//!
//! HRW hashing gives every (key, shard) pair an independent pseudo-random
//! score and places the key on the highest-scoring shard. Compared to
//! modulo placement it has the two properties a simulation fleet wants:
//! placement is a pure function of the key (deterministic, no coordination)
//! and resizing the shard pool moves only the keys whose winner changed.
//! The control plane layers a load-aware override on top — when the winning
//! shard's pending work is at capacity, the run is diverted to the least
//! loaded shard — mirroring the pool-metrics-driven placement policy of the
//! sharding runtimes the ROADMAP references.

/// Where a run was placed and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The shard the run was assigned to.
    pub shard: usize,
    /// The shard rendezvous hashing preferred before load was considered.
    pub preferred: usize,
    /// Whether the load-aware override diverted the run off its preferred
    /// shard.
    pub overridden: bool,
}

/// The rendezvous winner for `key` over `shards` shards (shard 0 when the
/// pool is empty). Deterministic: a pure function of the key bytes and the
/// shard count.
pub fn hrw_shard(key: &str, shards: usize) -> usize {
    (0..shards)
        .max_by_key(|&shard| (score(key, shard), std::cmp::Reverse(shard)))
        .unwrap_or(0)
}

/// Places `key` given per-shard pending-run counts: the rendezvous winner
/// unless its pending load is at `shard_capacity`, in which case the least
/// loaded shard (lowest index on ties) takes the run. `pending.len()` is the
/// shard count.
pub fn place(key: &str, pending: &[usize], shard_capacity: usize) -> Placement {
    let preferred = hrw_shard(key, pending.len());
    if pending.is_empty() || pending[preferred] < shard_capacity {
        return Placement {
            shard: preferred,
            preferred,
            overridden: false,
        };
    }
    let least_loaded = (0..pending.len())
        .min_by_key(|&shard| (pending[shard], shard))
        .expect("pool is non-empty");
    Placement {
        shard: least_loaded,
        preferred,
        overridden: least_loaded != preferred,
    }
}

/// FNV-1a over the key bytes and the shard index, giving each (key, shard)
/// pair an independent 64-bit score.
fn score(key: &str, shard: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    for b in (shard as u64).to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        for key in ["a#0", "tenant#17", "z"] {
            assert_eq!(hrw_shard(key, 8), hrw_shard(key, 8));
        }
    }

    #[test]
    fn keys_spread_across_the_pool() {
        let shards = 8;
        let mut hits = vec![0usize; shards];
        for i in 0..1_000 {
            hits[hrw_shard(&format!("tenant-{}#{}", i % 7, i), shards)] += 1;
        }
        for (shard, &count) in hits.iter().enumerate() {
            assert!(count > 0, "shard {shard} never chosen");
            // A uniform spread would be 125 per shard; allow a wide band.
            assert!(count < 400, "shard {shard} absorbed {count}/1000 keys");
        }
    }

    #[test]
    fn resizing_moves_only_displaced_keys() {
        // The rendezvous property: growing the pool from 4 to 5 shards only
        // relocates keys whose new winner IS the new shard.
        for i in 0..200 {
            let key = format!("k{i}");
            let before = hrw_shard(&key, 4);
            let after = hrw_shard(&key, 5);
            assert!(after == before || after == 4, "{key}: {before} -> {after}");
        }
    }

    #[test]
    fn override_diverts_to_the_least_loaded_shard() {
        let key = "hot";
        let shards = 4;
        let preferred = hrw_shard(key, shards);
        let mut pending = vec![1usize; shards];

        // Under capacity: the preferred shard wins, no override.
        let p = place(key, &pending, 8);
        assert_eq!(
            p,
            Placement {
                shard: preferred,
                preferred,
                overridden: false
            }
        );

        // Preferred at capacity: the least loaded shard takes the run.
        pending[preferred] = 8;
        let least = (0..shards).find(|&s| s != preferred).unwrap();
        pending[least] = 0;
        let p = place(key, &pending, 8);
        assert_eq!(p.shard, least);
        assert_eq!(p.preferred, preferred);
        assert!(p.overridden);

        // Everything at capacity: still places (least loaded, lowest index),
        // never refuses or panics — admission caps load, placement only
        // spreads it.
        let p = place(key, &vec![8; shards], 8);
        assert_eq!(p.shard, 0, "uniform load ties break to the lowest index");
        assert_eq!(p.overridden, preferred != p.shard);
    }
}

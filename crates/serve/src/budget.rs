//! Per-tenant budgets and the structured admission errors they produce.

use aikido_sim::SimConfigError;
use serde::Serialize;

/// What one tenant is allowed to do to the fleet.
///
/// `max_queued` caps the tenant's backlog, `max_in_flight` caps its total
/// outstanding work (queued + executing), and `access_quota` caps the
/// cumulative simulated memory accesses the tenant may spend over the
/// service's lifetime (charged at admission, from the scaled workload size).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TenantBudget {
    /// Maximum runs waiting in the queue for this tenant.
    pub max_queued: usize,
    /// Maximum outstanding runs (queued + in flight) for this tenant.
    pub max_in_flight: usize,
    /// Cumulative simulated-access quota; `u64::MAX` is effectively
    /// unlimited.
    pub access_quota: u64,
}

impl Default for TenantBudget {
    fn default() -> Self {
        TenantBudget {
            max_queued: 64,
            max_in_flight: 128,
            access_quota: u64::MAX,
        }
    }
}

impl TenantBudget {
    /// Builder: caps the tenant's queue backlog.
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Builder: caps the tenant's outstanding runs.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Builder: caps the tenant's cumulative simulated-access spend.
    pub fn with_access_quota(mut self, access_quota: u64) -> Self {
        self.access_quota = access_quota;
        self
    }
}

/// Why the control plane refused a request. Always a structured value — a
/// refused request never panics and never hangs the caller — and every
/// variant carries the numbers the caller needs to react (back off, shrink
/// the request, or give up).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum AdmitError {
    /// The workload spec failed [`WorkloadSpec::validate`](aikido_workloads::WorkloadSpec::validate)
    /// (`aikido_workloads::WorkloadSpec::validate`).
    InvalidSpec {
        /// What the validator rejected.
        reason: String,
    },
    /// The embedded `SimConfig` failed validation.
    InvalidConfig {
        /// The offending config field.
        field: String,
        /// What the validator rejected.
        reason: String,
    },
    /// The global queue is at capacity; every tenant is affected.
    QueueFull {
        /// The configured global queue capacity.
        capacity: usize,
    },
    /// This tenant's backlog is at its `max_queued` cap.
    TenantQueueFull {
        /// The refused tenant.
        tenant: String,
        /// The tenant's backlog cap.
        max_queued: usize,
    },
    /// This tenant's outstanding work (queued + in flight) is at its
    /// `max_in_flight` cap.
    TenantInFlightFull {
        /// The refused tenant.
        tenant: String,
        /// The tenant's outstanding-run cap.
        max_in_flight: usize,
    },
    /// Admitting the run would overdraw the tenant's cumulative
    /// simulated-access quota.
    QuotaExhausted {
        /// The refused tenant.
        tenant: String,
        /// The tenant's lifetime quota.
        quota: u64,
        /// Accesses already charged to the tenant.
        spent: u64,
        /// What this request would have cost.
        requested: u64,
    },
}

impl AdmitError {
    /// A short machine-readable category label, recorded in rejection
    /// metrics so dashboards can break refusals down without parsing the
    /// human-readable message.
    pub fn kind(&self) -> &'static str {
        match self {
            AdmitError::InvalidSpec { .. } => "invalid_spec",
            AdmitError::InvalidConfig { .. } => "invalid_config",
            AdmitError::QueueFull { .. } => "queue_full",
            AdmitError::TenantQueueFull { .. } => "tenant_queue_full",
            AdmitError::TenantInFlightFull { .. } => "tenant_in_flight_full",
            AdmitError::QuotaExhausted { .. } => "quota_exhausted",
        }
    }
}

impl From<SimConfigError> for AdmitError {
    fn from(err: SimConfigError) -> Self {
        AdmitError::InvalidConfig {
            field: err.field.to_string(),
            reason: err.reason,
        }
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::InvalidSpec { reason } => write!(f, "invalid workload spec: {reason}"),
            AdmitError::InvalidConfig { field, reason } => {
                write!(f, "invalid SimConfig.{field}: {reason}")
            }
            AdmitError::QueueFull { capacity } => {
                write!(f, "service queue is full (capacity {capacity})")
            }
            AdmitError::TenantQueueFull { tenant, max_queued } => {
                write!(
                    f,
                    "tenant '{tenant}' backlog is full (max_queued {max_queued})"
                )
            }
            AdmitError::TenantInFlightFull {
                tenant,
                max_in_flight,
            } => write!(
                f,
                "tenant '{tenant}' outstanding runs at cap (max_in_flight {max_in_flight})"
            ),
            AdmitError::QuotaExhausted {
                tenant,
                quota,
                spent,
                requested,
            } => write!(
                f,
                "tenant '{tenant}' access quota exhausted: \
                 spent {spent} + requested {requested} > quota {quota}"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_distinct_kind_and_a_display() {
        let errors = [
            AdmitError::InvalidSpec { reason: "r".into() },
            AdmitError::InvalidConfig {
                field: "workers".into(),
                reason: "r".into(),
            },
            AdmitError::QueueFull { capacity: 8 },
            AdmitError::TenantQueueFull {
                tenant: "t".into(),
                max_queued: 2,
            },
            AdmitError::TenantInFlightFull {
                tenant: "t".into(),
                max_in_flight: 2,
            },
            AdmitError::QuotaExhausted {
                tenant: "t".into(),
                quota: 10,
                spent: 8,
                requested: 5,
            },
        ];
        let kinds: std::collections::BTreeSet<&str> = errors.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), errors.len());
        for err in &errors {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn quota_error_carries_the_arithmetic() {
        let err = AdmitError::QuotaExhausted {
            tenant: "umbrella".into(),
            quota: 1_000,
            spent: 900,
            requested: 200,
        };
        let msg = err.to_string();
        for needle in ["umbrella", "1000", "900", "200"] {
            assert!(msg.contains(needle), "{msg}");
        }
    }
}

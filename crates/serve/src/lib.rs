//! Multi-tenant simulation service: the serving layer over the Aikido
//! reproduction's re-entrant [`Simulator`](aikido_sim::Simulator).
//!
//! The engine itself has been safe to run many-at-once since the epoch
//! engine landed (multiple `Simulator` instances on concurrent threads
//! produce byte-identical reports); this crate adds everything *around* that
//! property that a production service needs — the request lifecycle is
//!
//! ```text
//!            admit                place                 run        aggregate
//! RunRequest ──────► RunTicket ─────────► shard queue ──────► RunOutcome ──► FleetReport
//!      │  validate spec+config      HRW hash + load     bounded scoped
//!      │  queue / tenant caps       override            worker fleet,
//!      └─► AdmitError (structured   (deterministic)     Simulator::from_config
//!          rejection, never a                           per run
//!          panic or hang)
//! ```
//!
//! * [`RunRequest`] — the unified request API: tenant, workload spec,
//!   mode, and a [`SimConfig`](aikido_sim::SimConfig) embedded verbatim.
//! * [`ControlPlane`] — deterministic admission against per-tenant
//!   [`TenantBudget`]s (backlog, outstanding, cumulative access quota;
//!   structured [`AdmitError`] refusals), rendezvous-hashed shard placement
//!   with a load-aware override, and all fleet accounting.
//! * [`SimService`] — the control plane plus a bounded worker fleet
//!   (`std::thread::scope` + bounded mpsc, the epoch engine's idiom):
//!   `submit` requests, `drain` the queue, read the [`FleetReport`].
//! * [`FleetReport`] — per-run reports (each byte-identical to a direct
//!   `Simulator` run of the same request) plus queue depth, per-shard
//!   occupancy and per-tenant spend. Deterministic: logical clocks only,
//!   outcomes applied in run-id order.
//!
//! The `loadgen` harness in `aikido-bench` drives hundreds of concurrent
//! scaled-down runs through a service and `cmp`s every delivered report
//! against a direct run; the `service_equivalence` integration suite pins
//! the same property in-tree.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod budget;
mod clock;
mod control;
mod fleet;
mod placement;
mod report;
mod request;

pub use budget::{AdmitError, TenantBudget};
pub use clock::{EventClock, ServiceClock, VirtualClock};
pub use control::{ControlPlane, QueuedRun, RunTicket, ServiceConfig};
pub use fleet::SimService;
pub use placement::{hrw_shard, place, Placement};
pub use report::{
    FleetReport, QueueMetrics, RejectionRecord, RunOutcome, ShardMetrics, TenantUsage,
};
pub use request::RunRequest;

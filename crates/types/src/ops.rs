//! Memory and synchronisation operations as they appear in workload traces
//! and flow through the DBI engine into analyses.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{Addr, InstrId, LockId, ThreadId};

/// Whether a memory access reads or writes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// Addressing mode of a memory instruction.
///
/// The distinction matters to AikidoSD's rewriting strategy (§3.3.2): a
/// *direct* instruction embeds an immediate effective address and can be
/// patched to point at the mirror page; an *indirect* instruction computes its
/// address from a register and therefore needs a translation sequence plus a
/// dynamic shared/private check, because it may touch different pages on
/// different executions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AddrMode {
    /// Effective address is an immediate in the instruction encoding.
    Direct,
    /// Effective address is computed from a base register at run time.
    Indirect,
}

impl AddrMode {
    /// True for [`AddrMode::Indirect`].
    pub const fn is_indirect(self) -> bool {
        matches!(self, AddrMode::Indirect)
    }
}

/// A single dynamic memory reference: the static instruction that performed
/// it, the effective address, the access kind, size and addressing mode.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MemRef {
    /// Static instruction performing the access.
    pub instr: InstrId,
    /// Effective virtual address.
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// Direct or indirect addressing.
    pub mode: AddrMode,
}

impl MemRef {
    /// Convenience constructor for an 8-byte access.
    pub const fn new(instr: InstrId, addr: Addr, kind: AccessKind, mode: AddrMode) -> Self {
        MemRef {
            instr,
            addr,
            kind,
            size: 8,
            mode,
        }
    }

    /// Returns the same reference with a different size.
    pub const fn with_size(mut self, size: u8) -> Self {
        self.size = size;
        self
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} bytes at {} by {}",
            self.kind, self.size, self.addr, self.instr
        )
    }
}

/// A synchronisation operation observed in the target application.
///
/// These are always visible to a shared data analysis (the paper's race
/// detector instruments the pthread wrappers regardless of page sharing).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SyncOp {
    /// Acquire (lock) a mutex.
    Acquire(LockId),
    /// Release (unlock) a mutex.
    Release(LockId),
    /// Spawn a new thread; the payload is the child's id.
    Fork(ThreadId),
    /// Join a finished thread; the payload is the joined thread's id.
    Join(ThreadId),
    /// Arrive at a named barrier shared by all threads of the workload.
    Barrier(u32),
}

impl fmt::Display for SyncOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncOp::Acquire(l) => write!(f, "acquire {l}"),
            SyncOp::Release(l) => write!(f, "release {l}"),
            SyncOp::Fork(t) => write!(f, "fork {t}"),
            SyncOp::Join(t) => write!(f, "join {t}"),
            SyncOp::Barrier(b) => write!(f, "barrier {b}"),
        }
    }
}

/// One operation in a thread's instruction stream.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operation {
    /// A memory access.
    Mem(MemRef),
    /// `count` purely register-to-register (ALU / branch) instructions; they
    /// contribute native cycles but never touch memory.
    Compute {
        /// Number of non-memory instructions represented.
        count: u32,
    },
    /// A synchronisation operation.
    Sync(SyncOp),
    /// The thread maps `pages` new pages starting at `base` (models `mmap`).
    Map {
        /// First address of the new mapping.
        base: Addr,
        /// Number of pages mapped.
        pages: u64,
        /// Whether the mapping is writable.
        writable: bool,
    },
    /// The thread finishes execution.
    Exit,
}

impl Operation {
    /// True if this operation is a memory access.
    pub const fn is_mem(&self) -> bool {
        matches!(self, Operation::Mem(_))
    }

    /// The memory reference, if this is a memory operation.
    pub const fn as_mem(&self) -> Option<&MemRef> {
        match self {
            Operation::Mem(m) => Some(m),
            _ => None,
        }
    }

    /// Number of dynamic instructions this operation represents.
    pub const fn instruction_count(&self) -> u64 {
        match self {
            Operation::Mem(_) | Operation::Sync(_) | Operation::Exit => 1,
            Operation::Compute { count } => *count as u64,
            Operation::Map { .. } => 1,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Mem(m) => write!(f, "{m}"),
            Operation::Compute { count } => write!(f, "{count} compute instrs"),
            Operation::Sync(s) => write!(f, "{s}"),
            Operation::Map { base, pages, .. } => write!(f, "map {pages} pages at {base}"),
            Operation::Exit => write!(f, "exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockId;

    fn instr() -> InstrId {
        InstrId::new(BlockId::new(1), 0)
    }

    #[test]
    fn memref_constructors() {
        let m = MemRef::new(
            instr(),
            Addr::new(0x100),
            AccessKind::Write,
            AddrMode::Direct,
        );
        assert_eq!(m.size, 8);
        assert_eq!(m.with_size(4).size, 4);
        assert!(m.kind.is_write());
        assert!(!m.mode.is_indirect());
    }

    #[test]
    fn operation_instruction_counts() {
        assert_eq!(
            Operation::Mem(MemRef::new(
                instr(),
                Addr::new(0),
                AccessKind::Read,
                AddrMode::Indirect
            ))
            .instruction_count(),
            1
        );
        assert_eq!(Operation::Compute { count: 17 }.instruction_count(), 17);
        assert_eq!(
            Operation::Sync(SyncOp::Acquire(LockId::new(1))).instruction_count(),
            1
        );
        assert_eq!(Operation::Exit.instruction_count(), 1);
    }

    #[test]
    fn as_mem_filters_non_memory_operations() {
        let mem = Operation::Mem(MemRef::new(
            instr(),
            Addr::new(64),
            AccessKind::Read,
            AddrMode::Direct,
        ));
        assert!(mem.as_mem().is_some());
        assert!(mem.is_mem());
        assert!(Operation::Compute { count: 1 }.as_mem().is_none());
        assert!(Operation::Exit.as_mem().is_none());
    }

    #[test]
    fn sync_and_operation_display() {
        assert_eq!(
            SyncOp::Acquire(LockId::new(3)).to_string(),
            "acquire lock 3"
        );
        assert_eq!(SyncOp::Barrier(2).to_string(), "barrier 2");
        assert_eq!(
            Operation::Compute { count: 5 }.to_string(),
            "5 compute instrs"
        );
    }
}

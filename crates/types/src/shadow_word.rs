//! The packed shadow-word metadata plane: one 64-bit word per variable,
//! stored in page-granular dense slabs.
//!
//! FastTrack's insight is that the common-case metadata of a variable is a
//! single epoch; SmartTrack-style follow-on work collapses the whole
//! per-variable record into one machine word. This module provides the two
//! storage primitives that insight needs:
//!
//! * [`ShadowWord`] — the bit-packing scheme. A word carries the write epoch
//!   and the exclusive-read epoch side by side (31 bits each: 24-bit clock +
//!   7-bit thread), with a tag bit that escapes to a spilled side table when
//!   the state no longer fits (a promoted read-shared vector clock, a clock
//!   past 2^24, or a thread id past 2^7). The all-zero word doubles as
//!   "never tracked", which works because every real access installs an
//!   epoch with a non-zero clock.
//! * [`ShadowSlab`] / [`SlabDirectory`] — dense, page-sized slabs of raw
//!   `u64` words keyed by block index. Unlike [`crate::ChunkMap`], slots are
//!   bare words (no `Option`, no enum tag), so a probe is two loads and the
//!   per-entry footprint is exactly 8 bytes. The directory hands out a
//!   [`SlabHandle`] so a caller processing a *run* of same-page accesses can
//!   resolve the slab once and index words by slot for the rest of the run.

use std::fmt;

/// log2 of the number of words per slab.
pub const SLAB_BITS: u32 = 9;
/// Words per slab (512 — one 4 KiB page of 8-byte blocks).
pub const SLAB_WORDS: usize = 1 << SLAB_BITS;
const SLAB_MASK: u64 = (SLAB_WORDS as u64) - 1;

/// Bits per packed epoch field (clock + thread).
const FIELD_BITS: u32 = 31;
/// Bits of the clock component within a field.
const CLOCK_BITS: u32 = 24;
/// Bits of the thread component within a field.
const THREAD_BITS: u32 = FIELD_BITS - CLOCK_BITS;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;
/// Bit position of the write field (the read field sits at bit 0).
const WRITE_SHIFT: u32 = FIELD_BITS;

/// One packed shadow word.
///
/// Layout (bit 63 down to bit 0):
///
/// ```text
/// | 63: spill tag | 62: owner tag | 61..31: write epoch | 30..0: read epoch |
/// ```
///
/// Each 31-bit epoch field is `clock << 7 | thread` (24-bit clock, 7-bit
/// thread). The zero word means "never tracked"; a word with only the spill
/// tag set means "state lives in the side table".
///
/// On a spilled word the write lane doubles as the *same-epoch hint* (the
/// epoch whose fast-path probe would hit — see
/// [`ShadowWord::with_spill_hint`]) and the owner tag marks an *ownership
/// epoch* in the SmartTrack sense: the hint epoch is also the spilled
/// state's write epoch, so a repeat **write** by that owner in that epoch is
/// answered by one masked compare on the word
/// ([`ShadowWord::matches_owned_write`]) without touching the side table.
#[derive(Copy, Clone, PartialEq, Eq, Default)]
pub struct ShadowWord(u64);

impl ShadowWord {
    /// The spill tag bit: the variable's state lives in the side table.
    pub const SPILL_BIT: u64 = 1 << 63;

    /// The owner tag bit (meaningful only on spilled words): the same-epoch
    /// hint is an *ownership epoch* — it equals the spilled state's write
    /// epoch, so the owner's repeat writes match the word directly.
    pub const OWNED_BIT: u64 = 1 << 62;

    /// The "never tracked" word.
    pub const EMPTY: ShadowWord = ShadowWord(0);

    /// The marker installed in place of a spilled entry whose side table is
    /// keyed externally (by block index).
    pub const SPILLED: ShadowWord = ShadowWord(Self::SPILL_BIT);

    /// A spill marker carrying the side-table slot inline (low 31 bits):
    /// the spilled access costs one slab load plus one direct index, with
    /// no second probe. The write-field lane doubles as a *same-epoch
    /// hint* — see [`ShadowWord::with_spill_hint`].
    #[inline]
    pub const fn spill_marker(index: u64) -> ShadowWord {
        ShadowWord(Self::SPILL_BIT | index)
    }

    /// The side-table slot of a spilled word (valid only when
    /// [`ShadowWord::is_spilled`]).
    #[inline]
    pub const fn spill_index(self) -> u64 {
        self.0 & FIELD_MASK
    }

    /// Replaces the spilled word's same-epoch hint: the epoch field of the
    /// access that last updated the spilled state (0 = no hint). The hint's
    /// contract is "a fast-path probe by exactly this epoch would hit", so
    /// a repeat access by the same thread in the same epoch is satisfied by
    /// one masked compare on the word, without touching the side table.
    /// Clears the owner tag — use [`ShadowWord::with_ownership`] to install
    /// a hint that is also an ownership epoch.
    #[inline]
    pub const fn with_spill_hint(self, field: u64) -> ShadowWord {
        self.with_ownership(field, false)
    }

    /// Replaces the spilled word's same-epoch hint *and* owner tag in one
    /// store. `owned` asserts the hint epoch equals the spilled state's
    /// write epoch (the ownership-epoch invariant behind
    /// [`ShadowWord::matches_owned_write`]); the caller is responsible for
    /// only passing `true` when that holds.
    #[inline]
    pub const fn with_ownership(self, field: u64, owned: bool) -> ShadowWord {
        let cleared = self.0 & !(Self::OWNED_BIT | (FIELD_MASK << WRITE_SHIFT));
        let owner = if owned { Self::OWNED_BIT } else { 0 };
        ShadowWord(cleared | owner | (field << WRITE_SHIFT))
    }

    /// Positions `field` for a one-compare match against a spilled word's
    /// same-epoch hint (see [`ShadowWord::matches_spill_hint`]).
    #[inline]
    pub const fn spill_hint_probe(field: u64) -> u64 {
        Self::SPILL_BIT | (field << WRITE_SHIFT)
    }

    /// True if this word is spilled and its same-epoch hint equals the
    /// probe. An unspilled word can never match because the probe carries
    /// the spill bit; a hintless spilled word (hint 0) can never match
    /// because live epoch fields are non-zero (clocks start at 1). The
    /// mask excludes the owner tag: the read-side hint matches whether or
    /// not the hint is also an ownership epoch.
    #[inline]
    pub const fn matches_spill_hint(self, probe: u64) -> bool {
        self.0 & (Self::SPILL_BIT | (FIELD_MASK << WRITE_SHIFT)) == probe
    }

    /// The spilled word's same-epoch hint field (0 = no hint). Shares the
    /// write lane — meaningful only when [`ShadowWord::is_spilled`].
    #[inline]
    pub const fn spill_hint_field(self) -> u64 {
        (self.0 >> WRITE_SHIFT) & FIELD_MASK
    }

    /// True if the spilled word's hint carries the owner tag.
    #[inline]
    pub const fn is_owned(self) -> bool {
        self.0 & Self::OWNED_BIT != 0
    }

    /// Positions `field` for a one-compare match against a spilled word's
    /// ownership epoch (see [`ShadowWord::matches_owned_write`]).
    #[inline]
    pub const fn owned_write_probe(field: u64) -> u64 {
        Self::SPILL_BIT | Self::OWNED_BIT | (field << WRITE_SHIFT)
    }

    /// True if this word is spilled, owner-tagged, and its ownership epoch
    /// equals the probe — the owner's repeat write in the same epoch,
    /// answered without touching the side table. An unspilled or unowned
    /// word can never match because the probe carries both tag bits.
    #[inline]
    pub const fn matches_owned_write(self, probe: u64) -> bool {
        self.0 & (Self::SPILL_BIT | Self::OWNED_BIT | (FIELD_MASK << WRITE_SHIFT)) == probe
    }

    /// Wraps a raw word.
    pub const fn from_raw(raw: u64) -> Self {
        ShadowWord(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// True for the all-zero "never tracked" word.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if the state escaped to the spilled side table.
    pub const fn is_spilled(self) -> bool {
        self.0 & Self::SPILL_BIT != 0
    }

    /// Packs a `(clock, thread)` epoch into a 31-bit field, or `None` when
    /// either component exceeds its budget (the caller must spill).
    #[inline]
    pub const fn pack_field(clock: u32, thread: u32) -> Option<u64> {
        if clock < (1 << CLOCK_BITS) && thread < (1 << THREAD_BITS) {
            Some(((clock as u64) << THREAD_BITS) | thread as u64)
        } else {
            None
        }
    }

    /// The clock component of a packed field.
    #[inline]
    pub const fn field_clock(field: u64) -> u32 {
        (field >> THREAD_BITS) as u32
    }

    /// The thread component of a packed field.
    #[inline]
    pub const fn field_thread(field: u64) -> u32 {
        (field & ((1 << THREAD_BITS) - 1)) as u32
    }

    /// Builds an unspilled word from its write and read fields.
    #[inline]
    pub const fn from_fields(write: u64, read: u64) -> ShadowWord {
        ShadowWord((write << WRITE_SHIFT) | read)
    }

    /// The write epoch field of an unspilled word.
    #[inline]
    pub const fn write_field(self) -> u64 {
        (self.0 >> WRITE_SHIFT) & FIELD_MASK
    }

    /// The read epoch field of an unspilled word.
    #[inline]
    pub const fn read_field(self) -> u64 {
        self.0 & FIELD_MASK
    }

    /// Positions `field` for a one-compare match against the word's *read*
    /// lane (see [`ShadowWord::matches_read`]).
    #[inline]
    pub const fn read_probe(field: u64) -> u64 {
        field
    }

    /// Positions `field` for a one-compare match against the word's *write*
    /// lane (see [`ShadowWord::matches_write`]).
    #[inline]
    pub const fn write_probe(field: u64) -> u64 {
        field << WRITE_SHIFT
    }

    /// True if this word is unspilled and its read field equals the probe.
    /// One masked compare: a spilled word can never match because the probe
    /// carries no spill bit.
    #[inline]
    pub const fn matches_read(self, probe: u64) -> bool {
        self.0 & (Self::SPILL_BIT | FIELD_MASK) == probe
    }

    /// True if this word is unspilled and its write field equals the probe.
    #[inline]
    pub const fn matches_write(self, probe: u64) -> bool {
        self.0 & (Self::SPILL_BIT | (FIELD_MASK << WRITE_SHIFT)) == probe
    }
}

impl fmt::Debug for ShadowWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_spilled() {
            write!(
                f,
                "ShadowWord(spilled slot {}{}, hint {}@{})",
                self.spill_index(),
                if self.is_owned() { ", owned" } else { "" },
                Self::field_clock(self.spill_hint_field()),
                Self::field_thread(self.spill_hint_field()),
            )
        } else {
            write!(
                f,
                "ShadowWord(w={}@{}, r={}@{})",
                Self::field_clock(self.write_field()),
                Self::field_thread(self.write_field()),
                Self::field_clock(self.read_field()),
                Self::field_thread(self.read_field()),
            )
        }
    }
}

/// One dense slab: [`SLAB_WORDS`] raw words covering one aligned group of
/// consecutive block indices (one application page at 8-byte granularity).
#[derive(Clone)]
pub struct ShadowSlab {
    words: [u64; SLAB_WORDS],
}

impl ShadowSlab {
    fn new() -> Box<ShadowSlab> {
        Box::new(ShadowSlab {
            words: [0; SLAB_WORDS],
        })
    }

    /// The word at `slot`.
    #[inline]
    pub fn word(&self, slot: usize) -> ShadowWord {
        ShadowWord(self.words[slot])
    }
}

impl fmt::Debug for ShadowSlab {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let used = self.words.iter().filter(|&&w| w != 0).count();
        write!(f, "ShadowSlab({used}/{SLAB_WORDS} words)")
    }
}

/// Directory tag meaning "no slab here". Slab indices are `key >> SLAB_BITS`
/// (< 2^55), so the sentinel can never collide with a real slab.
const EMPTY_TAG: u64 = u64::MAX;
/// Initial directory capacity (power of two).
const INITIAL_DIR: usize = 64;
/// Directory load factor (in percent) beyond which it doubles.
const MAX_LOAD_PCT: usize = 70;

/// A resolved slab: an index into the directory, valid until the next
/// [`SlabDirectory::resolve`] call (which may grow the directory and move
/// slabs). Callers resolve once per run of same-slab keys and then index
/// words by slot; spill-table operations never invalidate a handle.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SlabHandle(usize);

/// An open-addressed directory of dense [`ShadowSlab`]s keyed by
/// `key >> SLAB_BITS` — the storage engine of the packed metadata plane.
///
/// Compared to [`crate::ChunkMap`], slots hold bare `u64` words (zero =
/// absent) instead of `Option<T>`, so the per-entry footprint is 8 bytes and
/// a lookup never touches an enum tag. The directory itself mirrors the
/// chunk map's probing scheme: power-of-two tag lane, linear probing,
/// doubling past 70 % load.
#[derive(Clone)]
pub struct SlabDirectory {
    /// Open-addressed slab tags ([`EMPTY_TAG`] = vacant), probed as a dense
    /// 8-byte lane.
    tags: Vec<u64>,
    /// Slabs, parallel to `tags` (`Some` iff the tag is occupied).
    slabs: Vec<Option<Box<ShadowSlab>>>,
    /// `tags.len() - 1`; the directory length is always a power of two.
    mask: u64,
    slab_count: usize,
    /// Number of non-zero words across all slabs.
    entries: usize,
}

impl Default for SlabDirectory {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SlabDirectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SlabDirectory({} slabs, {} words)",
            self.slab_count, self.entries
        )
    }
}

impl SlabDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        let mut slabs = Vec::with_capacity(INITIAL_DIR);
        slabs.resize_with(INITIAL_DIR, || None);
        SlabDirectory {
            tags: vec![EMPTY_TAG; INITIAL_DIR],
            slabs,
            mask: (INITIAL_DIR as u64) - 1,
            slab_count: 0,
            entries: 0,
        }
    }

    /// Number of non-zero words stored.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if every word is zero.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of slabs allocated.
    pub fn slab_count(&self) -> usize {
        self.slab_count
    }

    /// Splits a word key into `(slab index, slot)`.
    #[inline]
    pub const fn split(key: u64) -> (u64, usize) {
        (key >> SLAB_BITS, (key & SLAB_MASK) as usize)
    }

    /// Directory index holding `chunk`, or the empty slot where it belongs.
    #[inline]
    fn probe(&self, chunk: u64) -> usize {
        let mut i = (chunk & self.mask) as usize;
        loop {
            let tag = self.tags[i];
            if tag == chunk || tag == EMPTY_TAG {
                return i;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    fn grow(&mut self) {
        let new_len = self.tags.len() * 2;
        let mut new_tags = vec![EMPTY_TAG; new_len];
        let mut new_slabs: Vec<Option<Box<ShadowSlab>>> = Vec::with_capacity(new_len);
        new_slabs.resize_with(new_len, || None);
        let new_mask = (new_len as u64) - 1;
        for (tag, slab) in self.tags.drain(..).zip(self.slabs.drain(..)) {
            if tag != EMPTY_TAG {
                let mut i = (tag & new_mask) as usize;
                while new_tags[i] != EMPTY_TAG {
                    i = (i + 1) & new_mask as usize;
                }
                new_tags[i] = tag;
                new_slabs[i] = slab;
            }
        }
        self.tags = new_tags;
        self.slabs = new_slabs;
        self.mask = new_mask;
    }

    /// Resolves (allocating if necessary) the slab for `chunk` and returns
    /// its handle. The handle stays valid until the next `resolve` call.
    pub fn resolve(&mut self, chunk: u64) -> SlabHandle {
        let i = self.probe(chunk);
        if self.tags[i] != EMPTY_TAG {
            return SlabHandle(i);
        }
        if (self.slab_count + 1) * 100 > self.tags.len() * MAX_LOAD_PCT {
            self.grow();
        }
        let i = self.probe(chunk);
        self.tags[i] = chunk;
        self.slabs[i] = Some(ShadowSlab::new());
        self.slab_count += 1;
        SlabHandle(i)
    }

    /// The handle of `chunk`'s slab, if one has been allocated.
    #[inline]
    pub fn handle(&self, chunk: u64) -> Option<SlabHandle> {
        let i = self.probe(chunk);
        (self.tags[i] != EMPTY_TAG).then_some(SlabHandle(i))
    }

    /// The word at `slot` of a resolved slab: one load, no probing.
    #[inline]
    pub fn word_at(&self, handle: SlabHandle, slot: usize) -> ShadowWord {
        self.slabs[handle.0]
            .as_ref()
            .expect("handles only reference occupied directory slots")
            .word(slot)
    }

    /// Stores `word` at `slot` of a resolved slab.
    #[inline]
    pub fn set_word_at(&mut self, handle: SlabHandle, slot: usize, word: ShadowWord) {
        let slab = self.slabs[handle.0]
            .as_mut()
            .expect("handles only reference occupied directory slots");
        let old = slab.words[slot];
        slab.words[slot] = word.raw();
        self.entries += usize::from(old == 0 && word.raw() != 0);
        self.entries -= usize::from(old != 0 && word.raw() == 0);
    }

    /// The word at `key` ([`ShadowWord::EMPTY`] when its slab is absent).
    #[inline]
    pub fn get(&self, key: u64) -> ShadowWord {
        let (chunk, slot) = Self::split(key);
        match self.handle(chunk) {
            Some(h) => self.word_at(h, slot),
            None => ShadowWord::EMPTY,
        }
    }

    /// Stores `word` at `key`, allocating the slab if needed.
    #[inline]
    pub fn set(&mut self, key: u64, word: ShadowWord) {
        let (chunk, slot) = Self::split(key);
        let h = self.resolve(chunk);
        self.set_word_at(h, slot, word);
    }

    /// Iterates over `(key, word)` pairs with non-zero words, in ascending
    /// key order.
    pub fn iter_nonempty(&self) -> impl Iterator<Item = (u64, ShadowWord)> + '_ {
        let mut order: Vec<(u64, &ShadowSlab)> = self
            .tags
            .iter()
            .zip(&self.slabs)
            .filter_map(|(&tag, slab)| slab.as_deref().map(|s| (tag, s)))
            .collect();
        order.sort_by_key(|&(tag, _)| tag);
        order.into_iter().flat_map(|(tag, slab)| {
            let base = tag << SLAB_BITS;
            slab.words
                .iter()
                .enumerate()
                .filter(|(_, &w)| w != 0)
                .map(move |(i, &w)| (base + i as u64, ShadowWord::from_raw(w)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrips_within_the_field_budget() {
        for (clock, thread) in [(0, 0), (1, 0), (0, 1), ((1 << 24) - 1, (1 << 7) - 1)] {
            let field = ShadowWord::pack_field(clock, thread).expect("fits");
            assert_eq!(ShadowWord::field_clock(field), clock);
            assert_eq!(ShadowWord::field_thread(field), thread);
        }
    }

    #[test]
    fn out_of_budget_components_refuse_to_pack() {
        assert_eq!(ShadowWord::pack_field(1 << 24, 0), None);
        assert_eq!(ShadowWord::pack_field(0, 1 << 7), None);
        assert_eq!(ShadowWord::pack_field(u32::MAX, u32::MAX), None);
    }

    #[test]
    fn fields_occupy_disjoint_lanes() {
        let w = ShadowWord::pack_field(5, 3).unwrap();
        let r = ShadowWord::pack_field(9, 1).unwrap();
        let word = ShadowWord::from_fields(w, r);
        assert_eq!(word.write_field(), w);
        assert_eq!(word.read_field(), r);
        assert!(!word.is_spilled());
        assert!(!word.is_empty());
    }

    #[test]
    fn probes_match_only_unspilled_words() {
        let f = ShadowWord::pack_field(7, 2).unwrap();
        let word = ShadowWord::from_fields(f, f);
        assert!(word.matches_read(ShadowWord::read_probe(f)));
        assert!(word.matches_write(ShadowWord::write_probe(f)));
        let other = ShadowWord::pack_field(8, 2).unwrap();
        assert!(!word.matches_read(ShadowWord::read_probe(other)));
        // A spilled word never matches any probe.
        assert!(!ShadowWord::SPILLED.matches_read(ShadowWord::read_probe(f)));
        assert!(!ShadowWord::SPILLED.matches_write(ShadowWord::write_probe(f)));
        // The empty word only matches the zero probe, which no live epoch
        // produces (clocks start at 1).
        assert!(!ShadowWord::EMPTY.matches_read(ShadowWord::read_probe(f)));
    }

    #[test]
    fn spill_hint_survives_in_the_write_lane() {
        let f = ShadowWord::pack_field(4, 1).unwrap();
        let marker = ShadowWord::spill_marker(17).with_spill_hint(f);
        assert!(marker.is_spilled());
        assert_eq!(marker.spill_index(), 17);
        assert_eq!(marker.spill_hint_field(), f);
        assert!(marker.matches_spill_hint(ShadowWord::spill_hint_probe(f)));
        let other = ShadowWord::pack_field(5, 1).unwrap();
        assert!(!marker.matches_spill_hint(ShadowWord::spill_hint_probe(other)));
        // Replacing the hint keeps the slot index intact.
        let replaced = marker.with_spill_hint(other);
        assert_eq!(replaced.spill_index(), 17);
        assert!(replaced.matches_spill_hint(ShadowWord::spill_hint_probe(other)));
    }

    #[test]
    fn owner_tag_gates_the_owned_write_match() {
        let f = ShadowWord::pack_field(9, 3).unwrap();
        let owned = ShadowWord::spill_marker(5).with_ownership(f, true);
        let unowned = ShadowWord::spill_marker(5).with_ownership(f, false);
        assert!(owned.is_owned());
        assert!(!unowned.is_owned());
        // Both match the read-side hint probe: the owner tag is excluded
        // from that mask.
        let hint = ShadowWord::spill_hint_probe(f);
        assert!(owned.matches_spill_hint(hint));
        assert!(unowned.matches_spill_hint(hint));
        // Only the owner-tagged word matches the owned-write probe.
        let probe = ShadowWord::owned_write_probe(f);
        assert!(owned.matches_owned_write(probe));
        assert!(!unowned.matches_owned_write(probe));
        let other = ShadowWord::pack_field(10, 3).unwrap();
        assert!(!owned.matches_owned_write(ShadowWord::owned_write_probe(other)));
        // An unspilled word never matches: the probe carries the spill bit.
        let word = ShadowWord::from_fields(f, f);
        assert!(!word.matches_owned_write(probe));
        // Installing a plain hint clears a stale owner tag.
        assert!(!owned.with_spill_hint(f).is_owned());
        // The slot index survives ownership changes.
        assert_eq!(owned.spill_index(), 5);
        assert_eq!(owned.with_ownership(other, false).spill_index(), 5);
    }

    #[test]
    fn zero_word_is_empty_and_spill_marker_is_not() {
        assert!(ShadowWord::EMPTY.is_empty());
        assert!(!ShadowWord::SPILLED.is_empty());
        assert!(ShadowWord::SPILLED.is_spilled());
        assert_eq!(ShadowWord::from_fields(0, 0), ShadowWord::EMPTY);
    }

    #[test]
    fn directory_stores_and_reads_words() {
        let mut d = SlabDirectory::new();
        assert!(d.is_empty());
        assert_eq!(d.get(12345), ShadowWord::EMPTY);
        d.set(12345, ShadowWord::from_raw(7));
        d.set(12346, ShadowWord::from_raw(8));
        assert_eq!(d.get(12345).raw(), 7);
        assert_eq!(d.get(12346).raw(), 8);
        assert_eq!(d.len(), 2);
        assert_eq!(d.slab_count(), 1);
        // Overwriting with zero removes the entry from the count.
        d.set(12345, ShadowWord::EMPTY);
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(12345), ShadowWord::EMPTY);
    }

    #[test]
    fn handles_index_without_probing() {
        let mut d = SlabDirectory::new();
        let key = 0x40_0000u64;
        let (chunk, slot) = SlabDirectory::split(key);
        let h = d.resolve(chunk);
        assert_eq!(d.word_at(h, slot), ShadowWord::EMPTY);
        d.set_word_at(h, slot, ShadowWord::from_raw(42));
        assert_eq!(d.get(key).raw(), 42);
        assert_eq!(d.handle(chunk), Some(h));
        assert_eq!(d.handle(chunk + 1), None);
    }

    #[test]
    fn directory_survives_growth_with_collisions() {
        let mut d = SlabDirectory::new();
        // 200 distinct slabs force at least two doublings from 64 slots,
        // with colliding families probing linearly.
        for i in 0..200u64 {
            d.set(i * 64 * SLAB_WORDS as u64, ShadowWord::from_raw(i + 1));
        }
        for i in 0..200u64 {
            assert_eq!(d.get(i * 64 * SLAB_WORDS as u64).raw(), i + 1);
        }
        assert_eq!(d.len(), 200);
    }

    #[test]
    fn iter_nonempty_is_sorted_and_skips_zero_words() {
        let mut d = SlabDirectory::new();
        for &k in &[900u64, 3, 512, 511, 1 << 30] {
            d.set(k, ShadowWord::from_raw(k + 1));
        }
        let got: Vec<u64> = d.iter_nonempty().map(|(k, _)| k).collect();
        assert_eq!(got, vec![3, 511, 512, 900, 1 << 30]);
    }

    #[test]
    fn widely_separated_keys_coexist() {
        let mut d = SlabDirectory::new();
        let keys = [0x10_0000u64 >> 3, 0x5000_0000_0000 >> 3, u64::MAX >> 12];
        for (i, &k) in keys.iter().enumerate() {
            d.set(k, ShadowWord::from_raw(i as u64 + 1));
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(d.get(k).raw(), i as u64 + 1, "key {k:#x}");
        }
    }

    #[test]
    fn clone_preserves_contents() {
        let mut d = SlabDirectory::new();
        d.set(9, ShadowWord::from_raw(1));
        d.set(1 << 35, ShadowWord::from_raw(2));
        let c = d.clone();
        assert_eq!(c.get(9).raw(), 1);
        assert_eq!(c.get(1 << 35).raw(), 2);
        assert_eq!(c.len(), 2);
    }
}

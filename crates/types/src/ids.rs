//! Identifier newtypes: addresses, pages, threads, locks, instructions and
//! basic blocks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of a virtual-memory page in bytes (4 KiB, as on x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// A virtual address in the guest application's address space.
///
/// # Examples
///
/// ```
/// use aikido_types::Addr;
/// let a = Addr::new(0x1000).offset(8);
/// assert_eq!(a.raw(), 0x1008);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value of the address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the virtual page number containing this address.
    pub const fn page(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its page.
    pub const fn offset_in_page(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns this address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the addition overflows.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0 + bytes)
    }

    /// Returns the address aligned down to `align` bytes (`align` must be a
    /// power of two).
    pub const fn align_down(self, align: u64) -> Self {
        Addr(self.0 & !(align - 1))
    }

    /// True if this address lies in `[start, start + len)`.
    pub const fn in_range(self, start: Addr, len: u64) -> bool {
        self.0 >= start.0 && self.0 < start.0 + len
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A virtual page number (a virtual address shifted right by [`PAGE_SHIFT`]).
///
/// # Examples
///
/// ```
/// use aikido_types::{Addr, Vpn};
/// let p = Vpn::containing(Addr::new(0x5000 + 17));
/// assert_eq!(p.base(), Addr::new(0x5000));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a page number from its raw value.
    pub const fn new(raw: u64) -> Self {
        Vpn(raw)
    }

    /// Returns the page containing `addr`.
    pub const fn containing(addr: Addr) -> Self {
        addr.page()
    }

    /// Raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// First address of the page.
    pub const fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }

    /// Size of the page in bytes.
    pub const fn size(self) -> u64 {
        PAGE_SIZE
    }

    /// The page `n` pages after this one.
    pub const fn add(self, n: u64) -> Self {
        Vpn(self.0 + n)
    }

    /// Iterates over the `count` pages starting at this one.
    pub fn span(self, count: u64) -> impl Iterator<Item = Vpn> {
        (self.0..self.0 + count).map(Vpn)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page {:#x}", self.0)
    }
}

/// Identity of a guest thread.
///
/// Thread 0 is conventionally the main thread of the target application.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id.
    pub const fn new(raw: u32) -> Self {
        ThreadId(raw)
    }

    /// Raw numeric id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The conventional main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Index usable for dense per-thread arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread {}", self.0)
    }
}

impl From<u32> for ThreadId {
    fn from(raw: u32) -> Self {
        ThreadId(raw)
    }
}

/// Identity of a lock (mutex) object in the target application.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct LockId(u64);

impl LockId {
    /// Creates a lock id.
    pub const fn new(raw: u64) -> Self {
        LockId(raw)
    }

    /// Raw numeric id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock {}", self.0)
    }
}

impl From<u64> for LockId {
    fn from(raw: u64) -> Self {
        LockId(raw)
    }
}

/// Identity of a *static* basic block in the target application's code.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct BlockId(u32);

impl BlockId {
    /// Creates a basic-block id.
    pub const fn new(raw: u32) -> Self {
        BlockId(raw)
    }

    /// Raw numeric id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {}", self.0)
    }
}

/// Identity of a *static* instruction: a position inside a static basic block.
///
/// Dynamic executions of the same program point share one `InstrId`; this is
/// what Aikido's sharing detector records when it decides which instructions
/// must be instrumented.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct InstrId {
    block: BlockId,
    index: u16,
}

impl InstrId {
    /// Creates an instruction id from its block and position within it.
    pub const fn new(block: BlockId, index: u16) -> Self {
        InstrId { block, index }
    }

    /// The static basic block that contains this instruction.
    pub const fn block(self) -> BlockId {
        self.block
    }

    /// The position of the instruction within its block.
    pub const fn index(self) -> u16 {
        self.index
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I{}.{}", self.block.raw(), self.index)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instr {}:{}", self.block.raw(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_arithmetic() {
        let a = Addr::new(3 * PAGE_SIZE + 123);
        assert_eq!(a.page(), Vpn::new(3));
        assert_eq!(a.offset_in_page(), 123);
        assert_eq!(a.page().base(), Addr::new(3 * PAGE_SIZE));
        assert_eq!(a.align_down(8), Addr::new(3 * PAGE_SIZE + 120));
    }

    #[test]
    fn addr_range_membership() {
        let start = Addr::new(0x1000);
        assert!(Addr::new(0x1000).in_range(start, 0x100));
        assert!(Addr::new(0x10ff).in_range(start, 0x100));
        assert!(!Addr::new(0x1100).in_range(start, 0x100));
        assert!(!Addr::new(0xfff).in_range(start, 0x100));
    }

    #[test]
    fn vpn_span_iterates_consecutive_pages() {
        let pages: Vec<_> = Vpn::new(10).span(3).collect();
        assert_eq!(pages, vec![Vpn::new(10), Vpn::new(11), Vpn::new(12)]);
    }

    #[test]
    fn instr_id_roundtrip() {
        let id = InstrId::new(BlockId::new(7), 3);
        assert_eq!(id.block(), BlockId::new(7));
        assert_eq!(id.index(), 3);
        assert_eq!(format!("{id:?}"), "I7.3");
    }

    #[test]
    fn thread_id_display_and_index() {
        let t = ThreadId::new(5);
        assert_eq!(t.index(), 5);
        assert_eq!(format!("{t:?}"), "T5");
        assert_eq!(ThreadId::MAIN.raw(), 0);
    }

    #[test]
    fn debug_representations_are_nonempty() {
        assert!(!format!("{:?}", Addr::default()).is_empty());
        assert!(!format!("{:?}", Vpn::default()).is_empty());
        assert!(!format!("{:?}", LockId::default()).is_empty());
        assert!(!format!("{:?}", BlockId::default()).is_empty());
    }
}

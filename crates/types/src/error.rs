//! Error types shared across the Aikido crates.

use std::fmt;

use crate::{Addr, ThreadId, Vpn};

/// Result alias using [`AikidoError`].
pub type Result<T> = std::result::Result<T, AikidoError>;

/// Errors surfaced by the Aikido components.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AikidoError {
    /// An address was used that is not mapped in the guest address space.
    UnmappedAddress {
        /// The offending address.
        addr: Addr,
    },
    /// A page was referenced that is not mapped in the guest address space.
    UnmappedPage {
        /// The offending page.
        page: Vpn,
    },
    /// An operation referenced a thread unknown to the component.
    UnknownThread {
        /// The offending thread id.
        thread: ThreadId,
    },
    /// A thread was registered twice.
    ThreadAlreadyRegistered {
        /// The offending thread id.
        thread: ThreadId,
    },
    /// A mapping request overlaps an existing mapping.
    MappingOverlap {
        /// First page of the conflicting request.
        page: Vpn,
    },
    /// A configuration value was invalid (e.g. zero threads).
    InvalidConfig {
        /// Description of the problem.
        reason: String,
    },
    /// The hypercall interface was used before initialisation.
    NotInitialized,
    /// A shadow-memory translation was requested for an address outside any
    /// registered region.
    NoShadowRegion {
        /// The offending address.
        addr: Addr,
    },
}

impl fmt::Display for AikidoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AikidoError::UnmappedAddress { addr } => write!(f, "address {addr} is not mapped"),
            AikidoError::UnmappedPage { page } => write!(f, "{page} is not mapped"),
            AikidoError::UnknownThread { thread } => write!(f, "{thread} is not registered"),
            AikidoError::ThreadAlreadyRegistered { thread } => {
                write!(f, "{thread} is already registered")
            }
            AikidoError::MappingOverlap { page } => {
                write!(f, "mapping overlaps existing mapping at {page}")
            }
            AikidoError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            AikidoError::NotInitialized => write!(f, "aikido library not initialised"),
            AikidoError::NoShadowRegion { addr } => {
                write!(f, "no shadow region covers address {addr}")
            }
        }
    }
}

impl std::error::Error for AikidoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let e = AikidoError::UnmappedAddress {
            addr: Addr::new(0xdead),
        };
        assert!(e.to_string().contains("0xdead"));
        let e = AikidoError::UnknownThread {
            thread: ThreadId::new(9),
        };
        assert!(e.to_string().contains("thread 9"));
        let e = AikidoError::InvalidConfig {
            reason: "zero threads".into(),
        };
        assert!(e.to_string().contains("zero threads"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<AikidoError>();
    }
}

//! A flat, chunked map keyed by `u64` indices — the storage engine behind
//! every per-access table in the reproduction.
//!
//! The per-access hot paths (shadow page-table lookups, per-thread protection
//! checks, shadow-metadata loads, page sharing states) were originally backed
//! by `BTreeMap`/`HashMap`, so every simulated access paid pointer chasing or
//! hashing. [`ChunkMap`] replaces them with index arithmetic:
//!
//! * Keys are split into a *chunk* (`key >> CHUNK_BITS`) and a *slot*
//!   (`key & CHUNK_MASK`). Each chunk owns a lazily boxed leaf array of
//!   [`CHUNK_LEN`] slots — page-granular when keys are 8-byte block indices,
//!   2 MiB-granular when keys are page numbers.
//! * Chunks live in a fixed-size, power-of-two *directory* addressed by
//!   open addressing (`chunk & mask`, linear probing). Simulated address
//!   spaces touch a handful of chunks (application regions, mirror and
//!   metadata areas), so probes are almost always length one; the directory
//!   doubles on the rare occasion it fills past 70 %.
//!
//! A lookup is therefore two array loads and a tag compare — no hashing, no
//! tree descent, no allocation — which is what lets the simulator's fast path
//! approach native speed.

use std::fmt;

/// log2 of the number of slots per leaf chunk.
pub const CHUNK_BITS: u32 = 9;
/// Number of slots per leaf chunk (512 — one page of 8-byte blocks).
pub const CHUNK_LEN: usize = 1 << CHUNK_BITS;
const CHUNK_MASK: u64 = (CHUNK_LEN as u64) - 1;
/// Initial directory capacity (power of two).
const INITIAL_DIR: usize = 64;
/// Directory load factor (in percent) beyond which it doubles.
const MAX_LOAD_PCT: usize = 70;

/// Directory tag meaning "no chunk here". Keys are full `u64`s but chunk
/// indices are `key >> CHUNK_BITS < 2^55`, so the sentinel can never collide.
const EMPTY_TAG: u64 = u64::MAX;

fn new_leaf<T>() -> Box<[Option<T>]> {
    let mut slots = Vec::with_capacity(CHUNK_LEN);
    slots.resize_with(CHUNK_LEN, || None);
    slots.into_boxed_slice()
}

/// A sparse `u64 → T` map stored as a fixed directory of flat leaf chunks.
///
/// See the module docs for the layout. The API mirrors the subset of
/// `HashMap` the tables need; iteration is in ascending key order.
pub struct ChunkMap<T> {
    /// Open-addressed chunk tags ([`EMPTY_TAG`] = vacant). Kept separate from
    /// the leaves so probing touches a dense 8-byte lane.
    tags: Vec<u64>,
    /// Leaf arrays, parallel to `tags` (`Some` iff the tag is occupied).
    leaves: Vec<Option<Box<[Option<T>]>>>,
    /// `tags.len() - 1`; the directory length is always a power of two.
    mask: u64,
    chunks: usize,
    entries: usize,
}

impl<T> Default for ChunkMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for ChunkMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T: Clone> Clone for ChunkMap<T> {
    fn clone(&self) -> Self {
        let mut copy = ChunkMap::new();
        for (k, v) in self.iter() {
            copy.insert(k, v.clone());
        }
        copy
    }
}

impl<T> ChunkMap<T> {
    /// Creates an empty map.
    pub fn new() -> Self {
        let mut leaves = Vec::with_capacity(INITIAL_DIR);
        leaves.resize_with(INITIAL_DIR, || None);
        ChunkMap {
            tags: vec![EMPTY_TAG; INITIAL_DIR],
            leaves,
            mask: (INITIAL_DIR as u64) - 1,
            chunks: 0,
            entries: 0,
        }
    }

    /// Number of keys with a value.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if no key has a value.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Removes every entry but keeps the directory allocation.
    pub fn clear(&mut self) {
        self.tags.fill(EMPTY_TAG);
        for leaf in &mut self.leaves {
            *leaf = None;
        }
        self.chunks = 0;
        self.entries = 0;
    }

    #[inline]
    fn split(key: u64) -> (u64, usize) {
        (key >> CHUNK_BITS, (key & CHUNK_MASK) as usize)
    }

    /// Directory index holding `chunk`, or the empty slot where it belongs.
    #[inline]
    fn probe(&self, chunk: u64) -> usize {
        let mut i = (chunk & self.mask) as usize;
        loop {
            let tag = self.tags[i];
            if tag == chunk || tag == EMPTY_TAG {
                return i;
            }
            i = (i + 1) & self.mask as usize;
        }
    }

    /// Shared access to the value at `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&T> {
        let (chunk, slot) = Self::split(key);
        match &self.leaves[self.probe(chunk)] {
            Some(leaf) => leaf[slot].as_ref(),
            None => None,
        }
    }

    /// Mutable access to the value at `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let (chunk, slot) = Self::split(key);
        let i = self.probe(chunk);
        match &mut self.leaves[i] {
            Some(leaf) => leaf[slot].as_mut(),
            None => None,
        }
    }

    /// True if `key` has a value.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn grow(&mut self) {
        let new_len = self.tags.len() * 2;
        let mut new_tags = vec![EMPTY_TAG; new_len];
        let mut new_leaves: Vec<Option<Box<[Option<T>]>>> = Vec::with_capacity(new_len);
        new_leaves.resize_with(new_len, || None);
        let new_mask = (new_len as u64) - 1;
        for (tag, leaf) in self.tags.drain(..).zip(self.leaves.drain(..)) {
            if tag != EMPTY_TAG {
                let mut i = (tag & new_mask) as usize;
                while new_tags[i] != EMPTY_TAG {
                    i = (i + 1) & new_mask as usize;
                }
                new_tags[i] = tag;
                new_leaves[i] = leaf;
            }
        }
        self.tags = new_tags;
        self.leaves = new_leaves;
        self.mask = new_mask;
    }

    /// Directory index of the chunk for `key`, allocating the chunk (and
    /// growing the directory) if needed.
    fn chunk_for_insert(&mut self, chunk: u64) -> usize {
        let i = self.probe(chunk);
        if self.tags[i] != EMPTY_TAG {
            return i;
        }
        if (self.chunks + 1) * 100 > self.tags.len() * MAX_LOAD_PCT {
            self.grow();
        }
        let i = self.probe(chunk);
        self.tags[i] = chunk;
        self.leaves[i] = Some(new_leaf());
        self.chunks += 1;
        i
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        let (chunk, slot) = Self::split(key);
        let i = self.chunk_for_insert(chunk);
        let leaf = self.leaves[i].as_mut().expect("chunk just ensured");
        let old = leaf[slot].replace(value);
        if old.is_none() {
            self.entries += 1;
        }
        old
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (chunk, slot) = Self::split(key);
        let i = self.probe(chunk);
        let leaf = self.leaves[i].as_mut()?;
        let old = leaf[slot].take();
        if old.is_some() {
            self.entries -= 1;
            // Chunks are kept once allocated (tombstone-free removal would
            // break the probe sequence and churn is rare); an empty chunk
            // still answers lookups correctly.
        }
        old
    }

    /// Mutable access to the value at `key`, inserting `T::default()` first
    /// if the key is vacant.
    #[inline]
    pub fn get_or_default(&mut self, key: u64) -> &mut T
    where
        T: Default,
    {
        self.get_or_default_tracked(key).1
    }

    /// Like [`ChunkMap::get_or_default`], but also reports whether the entry
    /// was newly created — callers tracking "first touch" statistics avoid a
    /// second lookup.
    #[inline]
    pub fn get_or_default_tracked(&mut self, key: u64) -> (bool, &mut T)
    where
        T: Default,
    {
        let (chunk, slot) = Self::split(key);
        let i = self.chunk_for_insert(chunk);
        let leaf = self.leaves[i].as_mut().expect("chunk just ensured");
        let entry = &mut leaf[slot];
        let is_new = entry.is_none();
        if is_new {
            *entry = Some(T::default());
            self.entries += 1;
        }
        (is_new, entry.as_mut().expect("just filled"))
    }

    /// Iterates over `(key, &value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let mut chunk_order: Vec<(u64, &[Option<T>])> = self
            .tags
            .iter()
            .zip(&self.leaves)
            .filter_map(|(&tag, leaf)| leaf.as_ref().map(|l| (tag, &l[..])))
            .collect();
        chunk_order.sort_by_key(|&(tag, _)| tag);
        chunk_order.into_iter().flat_map(|(tag, slots)| {
            let base = tag << CHUNK_BITS;
            slots
                .iter()
                .enumerate()
                .filter_map(move |(i, v)| v.as_ref().map(|v| (base + i as u64, v)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_answers_lookups() {
        let m: ChunkMap<u32> = ChunkMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(0), None);
        assert_eq!(m.get(u64::MAX >> 12), None);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = ChunkMap::new();
        assert_eq!(m.insert(5, "a"), None);
        assert_eq!(m.insert(5, "b"), Some("a"));
        assert_eq!(m.get(5), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(5), Some("b"));
        assert_eq!(m.remove(5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn keys_far_apart_land_in_distinct_chunks() {
        let mut m = ChunkMap::new();
        // Page numbers of an app region, the mirror area and the fake fault
        // pages — the realistic extremes.
        let keys = [0x400u64, 0x6_0000_0000, 0x7_ffff_0000, u64::MAX >> 12];
        for (i, &k) in keys.iter().enumerate() {
            m.insert(k, i);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.get(k), Some(&i), "key {k:#x}");
        }
        assert_eq!(m.len(), keys.len());
    }

    #[test]
    fn colliding_directory_slots_probe_linearly() {
        let mut m = ChunkMap::new();
        // Chunks 0, 64, 128 … all hash to directory slot 0 at the initial
        // directory size.
        for i in 0..8u64 {
            m.insert(i * 64 * CHUNK_LEN as u64, i);
        }
        for i in 0..8u64 {
            assert_eq!(m.get(i * 64 * CHUNK_LEN as u64), Some(&i));
        }
    }

    #[test]
    fn directory_grows_past_the_load_factor() {
        let mut m = ChunkMap::new();
        // 200 distinct chunks forces at least two doublings from 64 slots.
        for i in 0..200u64 {
            m.insert(i * CHUNK_LEN as u64, i);
        }
        for i in 0..200u64 {
            assert_eq!(m.get(i * CHUNK_LEN as u64), Some(&i));
        }
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn get_or_default_creates_then_reuses() {
        let mut m: ChunkMap<u64> = ChunkMap::new();
        *m.get_or_default(77) += 1;
        *m.get_or_default(77) += 1;
        assert_eq!(m.get(77), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut m = ChunkMap::new();
        let keys = [900u64, 3, 512, 511, 1 << 30];
        for &k in &keys {
            m.insert(k, k * 2);
        }
        let got: Vec<(u64, u64)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(
            got,
            vec![
                (3, 6),
                (511, 1022),
                (512, 1024),
                (900, 1800),
                (1 << 30, 2 << 30)
            ]
        );
    }

    #[test]
    fn clear_empties_but_map_remains_usable() {
        let mut m = ChunkMap::new();
        m.insert(1, 1);
        m.insert(1 << 40, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(2, 3);
        assert_eq!(m.get(2), Some(&3));
    }

    #[test]
    fn adjacent_keys_share_a_chunk() {
        let mut m = ChunkMap::new();
        for k in 0..CHUNK_LEN as u64 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), CHUNK_LEN);
        assert_eq!(m.get(CHUNK_LEN as u64), None);
    }

    #[test]
    fn clone_preserves_contents() {
        let mut m = ChunkMap::new();
        m.insert(9, "x");
        m.insert(1 << 35, "y");
        let c = m.clone();
        assert_eq!(c.get(9), Some(&"x"));
        assert_eq!(c.get(1 << 35), Some(&"y"));
        assert_eq!(c.len(), 2);
    }
}

//! The `SharedDataAnalysis` trait — the interface every analysis tool
//! (race detector, atomicity checker, sharing profiler, …) implements in
//! order to be driven either by Aikido (shared accesses only) or by the
//! conventional full-instrumentation pipeline (all accesses).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{AccessKind, Addr, InstrId, LockId, ThreadId, Vpn};

/// Context for an instrumented memory access delivered to an analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessContext {
    /// The thread performing the access.
    pub thread: ThreadId,
    /// The effective address accessed (application address, not mirror).
    pub addr: Addr,
    /// Read or write.
    pub kind: AccessKind,
    /// Access size in bytes.
    pub size: u8,
    /// Static instruction performing the access.
    pub instr: InstrId,
}

/// The category of a report produced by an analysis.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportKind {
    /// A data race (write/write or read/write without a happens-before edge).
    DataRace,
    /// An atomicity violation.
    AtomicityViolation,
    /// Any other diagnostic.
    Other,
}

impl fmt::Display for ReportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportKind::DataRace => write!(f, "data race"),
            ReportKind::AtomicityViolation => write!(f, "atomicity violation"),
            ReportKind::Other => write!(f, "diagnostic"),
        }
    }
}

/// A single diagnostic produced by a shared data analysis.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Category of the report.
    pub kind: ReportKind,
    /// Address (variable) involved.
    pub addr: Addr,
    /// Thread performing the access that triggered the report.
    pub thread: ThreadId,
    /// Other thread involved, when known (e.g. the prior conflicting access).
    pub other_thread: Option<ThreadId>,
    /// Static instruction that triggered the report, when known.
    pub instr: Option<InstrId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} ({})", self.kind, self.addr, self.message)
    }
}

/// A dynamic analysis that operates on shared data.
///
/// Implementations receive callbacks for instrumented memory accesses and for
/// every synchronisation operation. Under Aikido only accesses performed by
/// instructions that touch shared pages are delivered; under the conventional
/// pipeline every memory access is delivered. Synchronisation callbacks are
/// always delivered in both configurations.
///
/// # Examples
///
/// A trivial analysis that counts instrumented accesses:
///
/// ```
/// use aikido_types::{AccessContext, AnalysisReport, SharedDataAnalysis};
///
/// #[derive(Default, Debug)]
/// struct Counter {
///     accesses: u64,
/// }
///
/// impl SharedDataAnalysis for Counter {
///     fn name(&self) -> &'static str {
///         "counter"
///     }
///     fn on_access(&mut self, _cx: AccessContext) {
///         self.accesses += 1;
///     }
///     fn reports(&self) -> Vec<AnalysisReport> {
///         Vec::new()
///     }
/// }
/// ```
pub trait SharedDataAnalysis {
    /// Short name of the analysis (used in reports and statistics).
    fn name(&self) -> &'static str;

    /// Called for every instrumented memory access.
    fn on_access(&mut self, cx: AccessContext);

    /// Called with a *run* of instrumented accesses delivered back-to-back by
    /// the same thread (the simulator groups consecutive accesses that share
    /// a page and an access kind into runs and delivers each run with one
    /// call). Pushes the per-access cost — what
    /// [`SharedDataAnalysis::last_access_cost_cycles`] would have returned
    /// after each access — into `costs` (cleared first), in access order.
    ///
    /// The default implementation is the scalar loop, so implementing
    /// [`SharedDataAnalysis::on_access`] alone is always enough. Overrides
    /// exist purely for speed (hoisting per-thread state out of the loop) and
    /// **must be observably identical** to the default: same end state, same
    /// reports, same statistics, same costs in the same order. Overrides may
    /// not assume anything about the run beyond "non-empty slice of accesses
    /// in program order by one thread" — callers usually group by page and
    /// kind, but that is an optimisation contract, not a guarantee.
    fn on_access_batch(&mut self, run: &[AccessContext], costs: &mut Vec<u64>) {
        costs.clear();
        costs.reserve(run.len());
        for cx in run {
            self.on_access(*cx);
            costs.push(self.last_access_cost_cycles());
        }
    }

    /// Like [`SharedDataAnalysis::on_access_batch`], with two extra
    /// guarantees the caller vouches for: every access of the run targets
    /// `page` and performs `kind`. Analyses that keep page-indexed metadata
    /// (packed shadow slabs) override this to resolve their slab once per run
    /// instead of once per access; the default simply forwards to the batch
    /// entry point. Overrides carry the same contract: observably identical
    /// to the scalar loop — same end state, same reports, same statistics,
    /// same costs in the same order.
    fn on_access_run(
        &mut self,
        page: Vpn,
        kind: AccessKind,
        run: &[AccessContext],
        costs: &mut Vec<u64>,
    ) {
        let _ = (page, kind);
        self.on_access_batch(run, costs);
    }

    /// Called when `thread` acquires `lock`.
    fn on_acquire(&mut self, thread: ThreadId, lock: LockId) {
        let _ = (thread, lock);
    }

    /// Called when `thread` releases `lock`.
    fn on_release(&mut self, thread: ThreadId, lock: LockId) {
        let _ = (thread, lock);
    }

    /// Called when `parent` spawns `child`.
    fn on_fork(&mut self, parent: ThreadId, child: ThreadId) {
        let _ = (parent, child);
    }

    /// Called when `parent` joins `child`.
    fn on_join(&mut self, parent: ThreadId, child: ThreadId) {
        let _ = (parent, child);
    }

    /// Called when all threads of the workload reach barrier `id`.
    fn on_barrier(&mut self, threads: &[ThreadId], id: u32) {
        let _ = (threads, id);
    }

    /// Called when `thread` exits.
    fn on_thread_exit(&mut self, thread: ThreadId) {
        let _ = thread;
    }

    /// All diagnostics produced so far.
    fn reports(&self) -> Vec<AnalysisReport>;

    /// Cost in cycles charged by the simulator for one instrumented access
    /// (the analysis check itself, excluding shadow translation and
    /// redirection which the simulator charges separately).
    fn access_cost_cycles(&self) -> u64 {
        55
    }

    /// Cost in cycles of the *most recent* [`SharedDataAnalysis::on_access`]
    /// call. Analyses whose per-access work varies (e.g. FastTrack's epoch
    /// fast path versus its vector-clock slow path) override this so the
    /// simulator charges the path actually taken; the default is the flat
    /// [`SharedDataAnalysis::access_cost_cycles`].
    fn last_access_cost_cycles(&self) -> u64 {
        self.access_cost_cycles()
    }

    /// Cost in cycles charged for one synchronisation callback.
    fn sync_cost_cycles(&self) -> u64 {
        120
    }
}

/// An analysis that does nothing; useful for measuring pure framework
/// overhead (DBI dispatch, sharing detection, redirection) without any
/// analysis cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullAnalysis {
    accesses: u64,
}

impl NullAnalysis {
    /// Creates a new null analysis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accesses delivered to the analysis so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

impl SharedDataAnalysis for NullAnalysis {
    fn name(&self) -> &'static str {
        "null"
    }

    fn on_access(&mut self, _cx: AccessContext) {
        self.accesses += 1;
    }

    fn reports(&self) -> Vec<AnalysisReport> {
        Vec::new()
    }

    fn access_cost_cycles(&self) -> u64 {
        0
    }

    fn sync_cost_cycles(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, BlockId};

    fn cx() -> AccessContext {
        AccessContext {
            thread: ThreadId::new(1),
            addr: Addr::new(0x2000),
            kind: AccessKind::Write,
            size: 8,
            instr: InstrId::new(BlockId::new(0), 0),
        }
    }

    #[test]
    fn null_analysis_counts_accesses_and_reports_nothing() {
        let mut a = NullAnalysis::new();
        a.on_access(cx());
        a.on_access(cx());
        assert_eq!(a.accesses(), 2);
        assert!(a.reports().is_empty());
        assert_eq!(a.access_cost_cycles(), 0);
        assert_eq!(a.name(), "null");
    }

    #[test]
    fn default_batch_delivery_matches_scalar_delivery() {
        let mut scalar = NullAnalysis::new();
        let mut batched = NullAnalysis::new();
        let run = [cx(), cx(), cx()];
        let mut costs = vec![0xdead];
        for access in run {
            scalar.on_access(access);
        }
        batched.on_access_batch(&run, &mut costs);
        assert_eq!(batched.accesses(), scalar.accesses());
        assert_eq!(costs, vec![0, 0, 0], "stale contents are cleared first");
        batched.on_access_batch(&[], &mut costs);
        assert!(costs.is_empty());
        assert_eq!(batched.accesses(), 3);
    }

    #[test]
    fn default_run_delivery_forwards_to_the_batch_entry_point() {
        let mut a = NullAnalysis::new();
        let run = [cx(), cx()];
        let mut costs = Vec::new();
        a.on_access_run(
            Addr::new(0x2000).page(),
            AccessKind::Write,
            &run,
            &mut costs,
        );
        assert_eq!(a.accesses(), 2);
        assert_eq!(costs, vec![0, 0]);
    }

    #[test]
    fn default_sync_callbacks_are_noops() {
        let mut a = NullAnalysis::new();
        a.on_acquire(ThreadId::new(0), LockId::new(1));
        a.on_release(ThreadId::new(0), LockId::new(1));
        a.on_fork(ThreadId::new(0), ThreadId::new(1));
        a.on_join(ThreadId::new(0), ThreadId::new(1));
        a.on_barrier(&[ThreadId::new(0)], 0);
        a.on_thread_exit(ThreadId::new(0));
        assert_eq!(a.accesses(), 0);
    }

    #[test]
    fn report_display_mentions_kind_and_addr() {
        let r = AnalysisReport {
            kind: ReportKind::DataRace,
            addr: Addr::new(0x40),
            thread: ThreadId::new(2),
            other_thread: Some(ThreadId::new(3)),
            instr: None,
            message: "write-write conflict".into(),
        };
        let s = r.to_string();
        assert!(s.contains("data race"));
        assert!(s.contains("0x40"));
    }
}

//! Fundamental types shared by every crate in the Aikido reproduction.
//!
//! The Aikido system (ASPLOS 2012) is a stack of cooperating components — a
//! hypervisor providing per-thread page protection (`aikido-vm`), a dynamic
//! binary instrumentation engine (`aikido-dbi`), a shadow memory framework
//! (`aikido-shadow`), a sharing detector (`aikido-sharing`) and analyses
//! such as FastTrack (`aikido-fasttrack`). This crate holds the vocabulary
//! those components share: addresses and pages, thread and lock identities,
//! protection bits, memory/synchronisation operations, and the
//! [`SharedDataAnalysis`] trait that analysis tools implement.
//!
//! # Examples
//!
//! ```
//! use aikido_types::{Addr, Vpn, PAGE_SIZE};
//!
//! let a = Addr::new(0x7fff_0000_1234);
//! assert_eq!(a.offset_in_page(), 0x234);
//! assert_eq!(a.page().base(), Addr::new(0x7fff_0000_1000));
//! assert_eq!(Vpn::containing(a).size(), PAGE_SIZE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod analysis;
pub mod chunkmap;
mod error;
mod ids;
mod ops;
mod prot;
pub mod shadow_word;

pub use analysis::{AccessContext, AnalysisReport, NullAnalysis, ReportKind, SharedDataAnalysis};
pub use chunkmap::ChunkMap;
pub use error::{AikidoError, Result};
pub use ids::{Addr, BlockId, InstrId, LockId, ThreadId, Vpn, PAGE_SHIFT, PAGE_SIZE};
pub use ops::{AccessKind, AddrMode, MemRef, Operation, SyncOp};
pub use prot::Prot;
pub use shadow_word::{ShadowSlab, ShadowWord, SlabDirectory, SlabHandle};

//! Page protection bits as used by guest page tables, shadow page tables and
//! AikidoVM's per-thread protection tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr};

use crate::AccessKind;

/// Page protection: the three bits the paper's hypervisor manipulates —
/// *present* (readable), *writable* and *user accessible*.
///
/// `Prot` values combine with `|` and intersect with `&`; the most common
/// configurations are provided as constants.
///
/// # Examples
///
/// ```
/// use aikido_types::{AccessKind, Prot};
///
/// let p = Prot::READ | Prot::USER;
/// assert!(p.allows(AccessKind::Read));
/// assert!(!p.allows(AccessKind::Write));
/// assert!(p.user());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Prot {
    bits: u8,
}

impl Prot {
    const READ_BIT: u8 = 0b001;
    const WRITE_BIT: u8 = 0b010;
    const USER_BIT: u8 = 0b100;

    /// No access at all (page not present).
    pub const NONE: Prot = Prot { bits: 0 };
    /// Present / readable.
    pub const READ: Prot = Prot {
        bits: Self::READ_BIT,
    };
    /// Writable (implies nothing about present; combine with [`Prot::READ`]).
    pub const WRITE: Prot = Prot {
        bits: Self::WRITE_BIT,
    };
    /// Userspace accessible.
    pub const USER: Prot = Prot {
        bits: Self::USER_BIT,
    };
    /// Read + write + user: the normal protection of an application data page.
    pub const RW_USER: Prot = Prot {
        bits: Self::READ_BIT | Self::WRITE_BIT | Self::USER_BIT,
    };
    /// Read + user (e.g. code or read-only data).
    pub const R_USER: Prot = Prot {
        bits: Self::READ_BIT | Self::USER_BIT,
    };
    /// Read + write but **not** user accessible — the protection AikidoVM uses
    /// when it temporarily unprotects a page for the guest kernel (§3.2.6).
    pub const RW_KERNEL: Prot = Prot {
        bits: Self::READ_BIT | Self::WRITE_BIT,
    };

    /// Builds a protection value from individual bits.
    pub const fn from_bits(read: bool, write: bool, user: bool) -> Self {
        let mut bits = 0;
        if read {
            bits |= Self::READ_BIT;
        }
        if write {
            bits |= Self::WRITE_BIT;
        }
        if user {
            bits |= Self::USER_BIT;
        }
        Prot { bits }
    }

    /// True if the page is present (readable).
    pub const fn read(self) -> bool {
        self.bits & Self::READ_BIT != 0
    }

    /// True if the page is writable.
    pub const fn write(self) -> bool {
        self.bits & Self::WRITE_BIT != 0
    }

    /// True if the page is accessible from user mode.
    pub const fn user(self) -> bool {
        self.bits & Self::USER_BIT != 0
    }

    /// Returns this protection with the user bit cleared (kernel-only).
    pub const fn without_user(self) -> Self {
        Prot {
            bits: self.bits & !Self::USER_BIT,
        }
    }

    /// Returns this protection with the write bit cleared.
    pub const fn without_write(self) -> Self {
        Prot {
            bits: self.bits & !Self::WRITE_BIT,
        }
    }

    /// True if a userspace access of kind `kind` is permitted.
    pub const fn allows(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read(),
            AccessKind::Write => self.read() && self.write(),
        }
    }

    /// True if a *kernel* (supervisor) access of kind `kind` is permitted;
    /// the user bit is ignored.
    pub const fn allows_kernel(self, kind: AccessKind) -> bool {
        self.allows(kind)
    }

    /// True if a userspace access of kind `kind` is permitted, also requiring
    /// the user bit.
    pub const fn allows_user(self, kind: AccessKind) -> bool {
        self.user() && self.allows(kind)
    }

    /// The intersection of two protections: an access is allowed only if both
    /// allow it. This is how a per-thread protection table entry restricts the
    /// guest page-table protection.
    pub const fn intersect(self, other: Prot) -> Prot {
        Prot {
            bits: self.bits & other.bits,
        }
    }
}

impl BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        Prot {
            bits: self.bits | rhs.bits,
        }
    }
}

impl BitAnd for Prot {
    type Output = Prot;
    fn bitand(self, rhs: Prot) -> Prot {
        self.intersect(rhs)
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Prot({}{}{})",
            if self.read() { "r" } else { "-" },
            if self.write() { "w" } else { "-" },
            if self.user() { "u" } else { "-" }
        )
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read() { "r" } else { "-" },
            if self.write() { "w" } else { "-" },
            if self.user() { "u" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_user_allows_everything_from_user() {
        assert!(Prot::RW_USER.allows_user(AccessKind::Read));
        assert!(Prot::RW_USER.allows_user(AccessKind::Write));
    }

    #[test]
    fn none_blocks_everything() {
        assert!(!Prot::NONE.allows(AccessKind::Read));
        assert!(!Prot::NONE.allows(AccessKind::Write));
        assert!(!Prot::NONE.allows_user(AccessKind::Read));
    }

    #[test]
    fn read_only_blocks_writes() {
        let p = Prot::R_USER;
        assert!(p.allows_user(AccessKind::Read));
        assert!(!p.allows_user(AccessKind::Write));
    }

    #[test]
    fn kernel_only_page_blocks_user_but_not_kernel() {
        let p = Prot::RW_KERNEL;
        assert!(!p.allows_user(AccessKind::Read));
        assert!(!p.allows_user(AccessKind::Write));
        assert!(p.allows_kernel(AccessKind::Read));
        assert!(p.allows_kernel(AccessKind::Write));
    }

    #[test]
    fn intersect_is_commutative_and_restrictive() {
        let a = Prot::RW_USER;
        let b = Prot::R_USER;
        assert_eq!(a.intersect(b), b.intersect(a));
        assert_eq!(a & b, Prot::R_USER);
        assert_eq!(a & Prot::NONE, Prot::NONE);
    }

    #[test]
    fn without_user_clears_only_user() {
        let p = Prot::RW_USER.without_user();
        assert!(p.read() && p.write() && !p.user());
        assert_eq!(p, Prot::RW_KERNEL);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Prot::RW_USER.to_string(), "rwu");
        assert_eq!(Prot::NONE.to_string(), "---");
        assert_eq!(format!("{:?}", Prot::R_USER), "Prot(r-u)");
    }

    #[test]
    fn from_bits_roundtrip() {
        for &(r, w, u) in &[
            (false, false, false),
            (true, false, false),
            (true, true, false),
            (true, true, true),
            (false, true, true),
        ] {
            let p = Prot::from_bits(r, w, u);
            assert_eq!(p.read(), r);
            assert_eq!(p.write(), w);
            assert_eq!(p.user(), u);
        }
    }
}

//! `ChunkMap` model tests: the flat chunked directory must behave exactly
//! like an ordered map under any interleaving of inserts, removes and
//! lookups — including the directory-collision, growth and extreme-key edges
//! the unit tests cannot reach generically.

use std::collections::BTreeMap;

use aikido_types::chunkmap::{ChunkMap, CHUNK_LEN};
use proptest::prelude::*;

/// The largest chunk index is `u64::MAX >> CHUNK_BITS`; the directory's
/// empty tag is `u64::MAX`, which no real chunk can collide with. These keys
/// sit on that boundary.
fn max_adjacent_keys() -> Vec<u64> {
    vec![
        u64::MAX,
        u64::MAX - 1,
        u64::MAX - (CHUNK_LEN as u64 - 1), // first slot of the last chunk
        u64::MAX - (CHUNK_LEN as u64),     // last slot of the chunk before it
        (u64::MAX >> 1) + 1,
        0,
    ]
}

#[test]
fn u64_max_adjacent_keys_roundtrip() {
    let mut m = ChunkMap::new();
    let keys = max_adjacent_keys();
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(m.insert(k, i), None, "key {k:#x}");
    }
    assert_eq!(m.len(), keys.len());
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(m.get(k), Some(&i), "key {k:#x}");
    }
    // Ascending iteration must order the extremes correctly.
    let iterated: Vec<u64> = m.iter().map(|(k, _)| k).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(iterated, sorted);
    for &k in &keys {
        assert!(m.remove(k).is_some(), "key {k:#x}");
    }
    assert!(m.is_empty());
}

#[test]
fn colliding_chunks_survive_removal_and_reinsertion() {
    // Chunks i*64 all probe to directory slot 0 at the initial directory
    // size of 64; removing entries leaves the chunk allocated (tombstone-free
    // probing), so later lookups and reinserts must keep working through the
    // whole collision chain.
    let mut m = ChunkMap::new();
    let key = |i: u64| i * 64 * CHUNK_LEN as u64;
    for i in 0..8 {
        m.insert(key(i), i);
    }
    // Empty out the middle of the chain.
    for i in 2..6 {
        assert_eq!(m.remove(key(i)), Some(i));
    }
    // The chain must still reach entries past the emptied chunks...
    for i in 6..8 {
        assert_eq!(m.get(key(i)), Some(&i));
    }
    // ...and the emptied chunks must answer lookups and accept reinserts.
    for i in 2..6 {
        assert_eq!(m.get(key(i)), None);
        assert_eq!(m.insert(key(i), 100 + i), None);
    }
    for i in 0..8 {
        let expected = if (2..6).contains(&i) { 100 + i } else { i };
        assert_eq!(m.get(key(i)), Some(&expected));
    }
}

#[test]
fn growth_with_a_collision_chain_preserves_every_entry() {
    // Force directory growth (load factor 70% of 64) while most chunks
    // collide into few home slots, then verify every key survived the rehash.
    let mut m = ChunkMap::new();
    let mut keys = Vec::new();
    for i in 0..60u64 {
        // Two colliding families plus a scattered one.
        let chunk = match i % 3 {
            0 => i * 64,
            1 => i * 64 + 1,
            _ => i.wrapping_mul(0x9E37_79B9) & 0xFFFF,
        };
        let k = chunk * CHUNK_LEN as u64 + (i % CHUNK_LEN as u64);
        if m.insert(k, i).is_none() {
            keys.push((k, i));
        }
    }
    for &(k, v) in &keys {
        assert_eq!(m.get(k), Some(&v), "key {k:#x} lost in growth");
    }
}

/// One step of the interleaved workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u32),
    Remove(u64),
    Get(u64),
}

/// Keys drawn to collide aggressively: few distinct chunks, slots clustered
/// at chunk edges, plus the `u64::MAX`-adjacent extremes.
fn arb_key() -> impl Strategy<Value = u64> {
    let chunk = prop::sample::select(vec![
        0u64,
        1,
        64,
        128,
        0x1000,
        (u64::MAX >> 9) - 1,
        u64::MAX >> 9,
    ]);
    let slot = prop::sample::select(vec![0u64, 1, 255, 510, 511]);
    (chunk, slot).prop_map(|(c, s)| c.saturating_mul(CHUNK_LEN as u64).saturating_add(s))
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..3, arb_key(), any::<u32>()).prop_map(|(kind, key, val)| match kind {
            0 => Op::Insert(key, val),
            1 => Op::Remove(key),
            _ => Op::Get(key),
        }),
        0..400,
    )
}

proptest! {
    /// Any interleaving of inserts/removes/gets matches a `BTreeMap` model:
    /// same return values, same length, same sorted iteration.
    #[test]
    fn interleaved_ops_match_a_btreemap_model(ops in arb_ops()) {
        let mut map: ChunkMap<u32> = ChunkMap::new();
        let mut model: BTreeMap<u64, u32> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => prop_assert_eq!(map.insert(k, v), model.insert(k, v)),
                Op::Remove(k) => prop_assert_eq!(map.remove(k), model.remove(&k)),
                Op::Get(k) => prop_assert_eq!(map.get(k), model.get(&k)),
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
        }
        let flattened: Vec<(u64, u32)> = map.iter().map(|(k, &v)| (k, v)).collect();
        let expected: Vec<(u64, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(flattened, expected);
    }
}

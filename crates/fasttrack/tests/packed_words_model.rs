//! Packed-word model tests: the packed shadow-word storage must behave
//! exactly like the retained enum-based reference store under any
//! interleaving of reads, writes and synchronisation — including the spill
//! edges (read-share promotions, thread ids past the 7-bit field, epoch
//! clocks racked up by sync storms) the unit tests cannot reach
//! generically. Mirrors `chunkmap_model.rs` in the types crate.

use aikido_fasttrack::FastTrack;
use aikido_types::{Addr, BlockId, InstrId, LockId, ThreadId};
use proptest::prelude::*;

/// One step of the interleaved history.
#[derive(Clone, Debug)]
enum Event {
    Read(u32, u64),
    Write(u32, u64),
    Acquire(u32, u64),
    Release(u32, u64),
    Fork(u32, u32),
    Join(u32, u32),
    Barrier,
}

/// Threads drawn to cross the packed field's 7-bit budget *and* the spill
/// slot's inline-lane budget: small dense ids, ids either side of the
/// 8-lane boundary (7 fills the last lane, 8 forces the boxed overflow
/// clock), plus one far past 127 so histories mix packable and spilled
/// epochs.
fn arb_thread() -> impl Strategy<Value = u32> {
    prop::sample::select(vec![0u32, 1, 2, 3, 7, 8, 200])
}

/// Addresses clustered on a handful of blocks across two pages plus one far
/// page, so accesses collide on blocks, share slabs, and cross slabs.
fn arb_addr() -> impl Strategy<Value = u64> {
    let base = prop::sample::select(vec![0x1000u64, 0x1ff8, 0x2000, 0x40_0000]);
    let off = prop::sample::select(vec![0u64, 4, 8, 16, 64]);
    (base, off).prop_map(|(b, o)| b + o)
}

fn arb_events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec(
        (0u8..7, arb_thread(), arb_thread(), arb_addr()).prop_map(
            |(kind, t, u, addr)| match kind {
                0 => Event::Read(t, addr),
                1 => Event::Write(t, addr),
                2 => Event::Acquire(t, addr % 3),
                3 => Event::Release(t, addr % 3),
                4 => Event::Fork(t, u),
                5 => Event::Join(t, u),
                _ => Event::Barrier,
            },
        ),
        0..300,
    )
}

/// Tracked locks, so releases only follow acquires (the detector tolerates
/// unmatched releases, but matched histories exercise more transfer edges).
fn apply(ft: &mut FastTrack, events: &[Event]) {
    let threads: Vec<ThreadId> = [0u32, 1, 2, 3, 7, 8, 200]
        .iter()
        .map(|&t| ThreadId::new(t))
        .collect();
    for (i, ev) in events.iter().enumerate() {
        let instr = InstrId::new(BlockId::new(1), (i % 40) as u16);
        match *ev {
            Event::Read(t, a) => ft.read_at(ThreadId::new(t), Addr::new(a), Some(instr)),
            Event::Write(t, a) => ft.write_at(ThreadId::new(t), Addr::new(a), Some(instr)),
            Event::Acquire(t, l) => ft.acquire(ThreadId::new(t), LockId::new(l)),
            Event::Release(t, l) => ft.release(ThreadId::new(t), LockId::new(l)),
            Event::Fork(p, c) if p != c => ft.fork(ThreadId::new(p), ThreadId::new(c)),
            Event::Join(p, c) if p != c => ft.join(ThreadId::new(p), ThreadId::new(c)),
            Event::Fork(..) | Event::Join(..) => {}
            Event::Barrier => ft.barrier(&threads),
        }
    }
}

/// Runs the same history through both storages and asserts identical races,
/// statistics, and serialized shadow state.
fn assert_model_equal(events: &[Event]) {
    let mut packed = FastTrack::new();
    let mut reference = FastTrack::new().with_packed_words(false);
    apply(&mut packed, events);
    apply(&mut reference, events);
    assert_eq!(packed.stats(), reference.stats(), "stats diverged");
    assert_eq!(packed.races(), reference.races(), "races diverged");
    let p = packed.var_states();
    let r = reference.var_states();
    assert_eq!(p, r, "shadow states diverged");
    let p_json = serde_json::to_string(&p).expect("states serialize");
    let r_json = serde_json::to_string(&r).expect("states serialize");
    assert_eq!(p_json, r_json, "serialized states diverged");
}

#[test]
fn spilling_thread_ids_round_trip_through_the_side_table() {
    // Thread 200 exceeds the 7-bit packing budget: every state it touches
    // spills, and a later write by a packable thread re-packs the word.
    let events = vec![
        Event::Write(200, 0x1000),
        Event::Read(200, 0x1000),
        Event::Read(0, 0x1000),
        Event::Write(1, 0x1000),
        Event::Write(1, 0x1000),
        Event::Read(1, 0x1008),
        Event::Read(2, 0x1008),
        Event::Write(200, 0x1008),
    ];
    assert_model_equal(&events);
}

#[test]
fn inline_lanes_exactly_full_stay_off_the_boxed_clock() {
    // Eight reader threads — indices 0..=7, exactly the spill slot's inline
    // lane budget — promote a block to read-shared and keep churning it
    // across barrier epochs. The history must stay in the inline lanes (no
    // boxed overflow) and remain byte-identical to the reference, including
    // after a write collapses it back to an epoch.
    let mut events: Vec<Event> = (0u32..8).map(|t| Event::Read(t, 0x1000)).collect();
    events.push(Event::Barrier);
    events.extend((0u32..8).rev().map(|t| Event::Read(t, 0x1000)));
    events.push(Event::Barrier);
    events.push(Event::Write(3, 0x1000));
    events.push(Event::Write(3, 0x1000));
    assert_model_equal(&events);

    let mut packed = FastTrack::new();
    apply(&mut packed, &events);
    let stats = packed.spill_stats();
    assert!(stats.spills > 0, "the promotion spilled");
    assert!(stats.inline_promotions > 0, "promotion served by the lanes");
    assert_eq!(stats.boxed_overflows, 0, "eight threads fit the lanes");
    assert!(stats.unspills > 0, "the collapse re-packed the word");
}

#[test]
fn a_ninth_thread_overflows_the_inline_lanes_into_the_boxed_clock() {
    // Thread index 8 is one past the lane budget: the moment it joins the
    // read-shared history, the slot must fall back to the dense boxed clock
    // — and still reconstruct the exact vector the reference holds.
    let mut events: Vec<Event> = (0u32..9).map(|t| Event::Read(t, 0x1000)).collect();
    events.push(Event::Barrier);
    // Post-overflow churn: lane-resident and lane-less threads both update
    // the boxed history, then a write collapses it.
    events.push(Event::Read(8, 0x1000));
    events.push(Event::Read(0, 0x1000));
    events.push(Event::Write(8, 0x1000));
    assert_model_equal(&events);

    let mut packed = FastTrack::new();
    apply(&mut packed, &events);
    let stats = packed.spill_stats();
    assert!(stats.boxed_overflows > 0, "the ninth thread overflowed");
}

#[test]
fn barrier_storms_advance_clocks_identically() {
    // Many barriers rack epoch clocks up in lockstep; reads and writes in
    // between keep re-packing fresh epochs into the words.
    let mut events = Vec::new();
    for round in 0..40u64 {
        events.push(Event::Write(0, 0x1000 + 8 * (round % 4)));
        events.push(Event::Read(1, 0x1000 + 8 * (round % 4)));
        events.push(Event::Barrier);
    }
    assert_model_equal(&events);
}

#[test]
fn epoch_free_configurations_agree_too() {
    use aikido_fasttrack::FastTrackConfig;
    // Without the epoch optimisation every read promotes to a vector clock,
    // so virtually every word spills — the packed plane degenerates to the
    // side table and must still match.
    let events = vec![
        Event::Read(0, 0x1000),
        Event::Read(1, 0x1000),
        Event::Write(2, 0x1000),
        Event::Read(0, 0x1008),
        Event::Write(0, 0x1008),
    ];
    let mut packed = FastTrack::with_config(FastTrackConfig::without_epochs());
    let mut reference =
        FastTrack::with_config(FastTrackConfig::without_epochs()).with_packed_words(false);
    apply(&mut packed, &events);
    apply(&mut reference, &events);
    assert_eq!(packed.stats(), reference.stats());
    assert_eq!(packed.races(), reference.races());
    assert_eq!(packed.var_states(), reference.var_states());
}

#[test]
fn sub_word_granularity_disables_the_slab_run_path_but_not_correctness() {
    use aikido_fasttrack::FastTrackConfig;
    let config = FastTrackConfig {
        granularity: 4,
        ..FastTrackConfig::default()
    };
    let events = vec![
        Event::Write(0, 0x1000),
        Event::Write(1, 0x1004),
        Event::Read(0, 0x1004),
        Event::Read(1, 0x1000),
    ];
    let mut packed = FastTrack::with_config(config.clone());
    let mut reference = FastTrack::with_config(config).with_packed_words(false);
    apply(&mut packed, &events);
    apply(&mut reference, &events);
    assert_eq!(packed.stats(), reference.stats());
    assert_eq!(packed.var_states(), reference.var_states());
}

proptest! {
    /// Any interleaving of reads, writes and synchronisation produces
    /// identical races, statistics and serialized shadow state in both
    /// storage representations.
    #[test]
    fn random_histories_match_the_reference_model(events in arb_events()) {
        assert_model_equal(&events);
    }
}

//! Property-based tests for the vector-clock algebra and the FastTrack
//! detector's soundness on synchronised histories.

use aikido_fasttrack::{FastTrack, FastTrackConfig, VectorClock};
use aikido_types::{Addr, LockId, ThreadId};
use proptest::prelude::*;

fn arb_vc() -> impl Strategy<Value = VectorClock> {
    prop::collection::vec(0u32..50, 1..6).prop_map(|clocks| {
        clocks
            .into_iter()
            .enumerate()
            .map(|(i, c)| (ThreadId::new(i as u32), c))
            .collect()
    })
}

proptest! {
    /// Join is an upper bound of both operands.
    #[test]
    fn join_is_upper_bound(a in arb_vc(), b in arb_vc()) {
        let mut j = a.clone();
        j.join(&b);
        prop_assert!(a.le(&j));
        prop_assert!(b.le(&j));
    }

    /// Join is commutative.
    #[test]
    fn join_is_commutative(a in arb_vc(), b in arb_vc()) {
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Join is associative.
    #[test]
    fn join_is_associative(a in arb_vc(), b in arb_vc(), c in arb_vc()) {
        let mut left = a.clone();
        left.join(&b);
        left.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut right = a.clone();
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    /// Join is idempotent.
    #[test]
    fn join_is_idempotent(a in arb_vc()) {
        let mut j = a.clone();
        j.join(&a);
        prop_assert_eq!(j, a);
    }

    /// `le` is antisymmetric up to equality.
    #[test]
    fn le_antisymmetric(a in arb_vc(), b in arb_vc()) {
        if a.le(&b) && b.le(&a) {
            for i in 0..8u32 {
                prop_assert_eq!(a.get(ThreadId::new(i)), b.get(ThreadId::new(i)));
            }
        }
    }
}

/// One step of a randomly generated multithreaded history.
#[derive(Clone, Debug)]
enum Step {
    Read { thread: u32, var: u64 },
    Write { thread: u32, var: u64 },
}

fn arb_steps(threads: u32, vars: u64) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0..threads, 0..vars, prop::bool::ANY).prop_map(|(thread, var, is_write)| {
            if is_write {
                Step::Write { thread, var }
            } else {
                Step::Read { thread, var }
            }
        }),
        0..120,
    )
}

proptest! {
    /// A history in which every access is protected by one global lock is
    /// race-free: FastTrack must never report a false positive for it.
    #[test]
    fn global_lock_discipline_is_race_free(steps in arb_steps(4, 8)) {
        let mut ft = FastTrack::new();
        let lock = LockId::new(1);
        for step in &steps {
            let (thread, var, write) = match *step {
                Step::Read { thread, var } => (thread, var, false),
                Step::Write { thread, var } => (thread, var, true),
            };
            let t = ThreadId::new(thread);
            let a = Addr::new(0x1_0000 + var * 8);
            ft.acquire(t, lock);
            if write {
                ft.write(t, a);
            } else {
                ft.read(t, a);
            }
            ft.release(t, lock);
        }
        prop_assert!(ft.races().is_empty(), "false positive: {:?}", ft.races());
    }

    /// A purely single-threaded history is race-free.
    #[test]
    fn single_thread_is_race_free(steps in arb_steps(1, 16)) {
        let mut ft = FastTrack::new();
        for step in &steps {
            match *step {
                Step::Read { var, .. } => ft.read(ThreadId::new(0), Addr::new(var * 8)),
                Step::Write { var, .. } => ft.write(ThreadId::new(0), Addr::new(var * 8)),
            }
        }
        prop_assert_eq!(ft.races_detected(), 0);
    }

    /// Threads that only touch disjoint variable blocks never race.
    #[test]
    fn disjoint_footprints_are_race_free(steps in arb_steps(4, 4)) {
        let mut ft = FastTrack::new();
        for step in &steps {
            let (thread, var, write) = match *step {
                Step::Read { thread, var } => (thread, var, false),
                Step::Write { thread, var } => (thread, var, true),
            };
            let t = ThreadId::new(thread);
            // Give each thread its own address range.
            let a = Addr::new(0x10_0000 * (thread as u64 + 1) + var * 8);
            if write {
                ft.write(t, a);
            } else {
                ft.read(t, a);
            }
        }
        prop_assert_eq!(ft.races_detected(), 0);
    }

    /// The epoch optimisation never changes *whether* races are detected on a
    /// given history (it is a pure representation optimisation).
    #[test]
    fn epoch_optimization_preserves_verdict(steps in arb_steps(3, 6)) {
        let run = |config: FastTrackConfig| {
            let mut ft = FastTrack::with_config(config);
            for step in &steps {
                match *step {
                    Step::Read { thread, var } => {
                        ft.read(ThreadId::new(thread), Addr::new(var * 8))
                    }
                    Step::Write { thread, var } => {
                        ft.write(ThreadId::new(thread), Addr::new(var * 8))
                    }
                }
            }
            ft.races_detected() > 0
        };
        let with_epochs = run(FastTrackConfig::default());
        let without_epochs = run(FastTrackConfig::without_epochs());
        prop_assert_eq!(with_epochs, without_epochs);
    }

    /// Unsynchronised writes to the same block by two different threads are
    /// always reported (no false negatives on the simplest racy pattern).
    #[test]
    fn direct_write_write_conflicts_are_always_caught(
        t0 in 0u32..4,
        t1 in 0u32..4,
        var in 0u64..8,
    ) {
        prop_assume!(t0 != t1);
        let mut ft = FastTrack::new();
        let a = Addr::new(0x2000 + var * 8);
        ft.write(ThreadId::new(t0), a);
        ft.write(ThreadId::new(t1), a);
        prop_assert_eq!(ft.races().len(), 1);
    }
}

//! Detector statistics.

use serde::{Deserialize, Serialize};

/// Counters maintained by [`crate::FastTrack`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastTrackStats {
    /// Read checks performed.
    pub reads: u64,
    /// Write checks performed.
    pub writes: u64,
    /// Reads satisfied by the same-epoch fast path.
    pub read_same_epoch: u64,
    /// Writes satisfied by the same-epoch fast path.
    pub write_same_epoch: u64,
    /// Read histories promoted from an epoch to a vector clock.
    pub read_share_promotions: u64,
    /// Lock acquires processed.
    pub acquires: u64,
    /// Lock releases processed.
    pub releases: u64,
    /// Thread forks processed.
    pub forks: u64,
    /// Thread joins processed.
    pub joins: u64,
    /// Barrier episodes processed.
    pub barriers: u64,
    /// Races detected (including ones deduplicated out of the report list).
    pub races_detected: u64,
    /// Distinct variable blocks that ever received metadata.
    pub blocks_tracked: u64,
}

impl FastTrackStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another set of statistics to this one componentwise. Dense
    /// clocks can be partitioned per epoch-engine worker and their counters
    /// handed off at epoch boundaries; the merged result is independent of
    /// merge order.
    pub fn merge(&mut self, other: &FastTrackStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_same_epoch += other.read_same_epoch;
        self.write_same_epoch += other.write_same_epoch;
        self.read_share_promotions += other.read_share_promotions;
        self.acquires += other.acquires;
        self.releases += other.releases;
        self.forks += other.forks;
        self.joins += other.joins;
        self.barriers += other.barriers;
        self.races_detected += other.races_detected;
        self.blocks_tracked += other.blocks_tracked;
    }

    /// Adds only `other`'s per-access counters — the fields a shard replica
    /// accumulates for the accesses it analysed locally. Synchronisation
    /// counters (`acquires`, `releases`, `forks`, `joins`, `barriers`) are
    /// excluded: every replica replays the full synchronisation stream to
    /// keep its clock plane current, so including them would count each
    /// sync operation once per replica instead of once per run.
    pub fn merge_access_plane(&mut self, other: &FastTrackStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.read_same_epoch += other.read_same_epoch;
        self.write_same_epoch += other.write_same_epoch;
        self.read_share_promotions += other.read_share_promotions;
        self.races_detected += other.races_detected;
        self.blocks_tracked += other.blocks_tracked;
    }

    /// Fraction of memory checks (reads + writes) that took a same-epoch fast
    /// path, in `[0, 1]`.
    pub fn fast_path_rate(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            (self.read_same_epoch + self.write_same_epoch) as f64 / total as f64
        }
    }
}

/// Counters for the packed plane's spill-arena *representation*: how often
/// states escape their word, how read-shared histories are laid out (inline
/// epoch lanes vs the boxed overflow clock) and how ownership hints move
/// between threads.
///
/// Deliberately **not** part of [`FastTrackStats`]: that struct is compared
/// whole against the reference detector by the equivalence oracle and is
/// serialized into snapshots, while these counters describe the packed
/// storage representation only (the reference store has no arena — its
/// counters stay zero). Like the arena free list, they are invisible to the
/// equivalence surface: updated exclusively on slow paths, never serialized,
/// never costed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// States moved from their word into the side arena.
    pub spills: u64,
    /// Spilled states that collapsed back into their word.
    pub unspills: u64,
    /// Read-shared promotions served entirely by the inline epoch lanes
    /// (no boxed clock was built).
    pub inline_promotions: u64,
    /// Read histories that overflowed the inline lanes into a boxed clock
    /// (a participating thread index past the lane budget).
    pub boxed_overflows: u64,
    /// Slow reads that kept another thread's still-valid ownership hint on
    /// the word instead of claiming it (the hint stays sticky, so the
    /// owner's repeat accesses keep hitting the word).
    pub ownership_keeps: u64,
    /// Hints (re)claimed by the accessing thread after a slow access.
    pub ownership_claims: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise_and_is_order_independent() {
        let a = FastTrackStats {
            reads: 10,
            races_detected: 1,
            ..FastTrackStats::new()
        };
        let b = FastTrackStats {
            reads: 5,
            writes: 4,
            barriers: 2,
            ..FastTrackStats::new()
        };
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.reads, 15);
        assert_eq!(ab.writes, 4);
        assert_eq!(ab.races_detected, 1);
    }

    #[test]
    fn fast_path_rate_is_zero_without_accesses() {
        assert_eq!(FastTrackStats::new().fast_path_rate(), 0.0);
    }

    #[test]
    fn fast_path_rate_counts_reads_and_writes() {
        let s = FastTrackStats {
            reads: 6,
            writes: 4,
            read_same_epoch: 3,
            write_same_epoch: 2,
            ..FastTrackStats::new()
        };
        assert!((s.fast_path_rate() - 0.5).abs() < 1e-12);
    }
}

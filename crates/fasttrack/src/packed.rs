//! Packed-word storage for per-variable metadata.
//!
//! The hot-path representation of a variable's [`VarState`] is one 64-bit
//! [`ShadowWord`] in a page-granular dense slab: write epoch and
//! exclusive-read epoch bit-packed side by side. States that no longer fit —
//! a promoted read-shared vector clock, a clock past 2^24 or a thread id
//! past 2^7 — escape through the word's spill tag into a side table that
//! keeps the full enum representation. The enum-based
//! [`aikido_shadow::ShadowStore`] storage is retained as the reference
//! oracle behind [`crate::FastTrack::with_packed_words`]; the two are proven
//! equivalent by the `packed_words_model` property suite and by the
//! end-to-end pipeline equivalence tests.

use aikido_shadow::ShadowSlabs;
use aikido_types::{Addr, ShadowWord, SlabHandle, ThreadId};

use crate::clock::Epoch;
use crate::state::{ReadState, VarState};

/// Packs an epoch into a 31-bit word field, or `None` when it exceeds the
/// clock/thread budget (the state must spill).
#[inline]
pub(crate) fn pack_epoch(e: Epoch) -> Option<u64> {
    ShadowWord::pack_field(e.clock(), e.thread().raw())
}

/// Decodes a 31-bit word field back into an epoch.
#[inline]
fn unpack_epoch(field: u64) -> Epoch {
    Epoch::new(
        ShadowWord::field_clock(field),
        ThreadId::new(ShadowWord::field_thread(field)),
    )
}

/// Encodes a state into an unspilled word, or `None` when it must spill.
/// The default (never-accessed) state encodes to [`ShadowWord::EMPTY`],
/// which is exactly the "untracked" word — consistent because every real
/// access installs an epoch with a non-zero clock.
#[inline]
pub(crate) fn encode_state(state: &VarState) -> Option<ShadowWord> {
    let write = pack_epoch(state.write)?;
    let read = match &state.read {
        ReadState::Exclusive(e) => pack_epoch(*e)?,
        ReadState::Shared(_) => return None,
    };
    Some(ShadowWord::from_fields(write, read))
}

/// Decodes an unspilled word into the state it represents.
#[inline]
pub(crate) fn decode_word(word: ShadowWord) -> VarState {
    debug_assert!(!word.is_spilled());
    VarState {
        write: unpack_epoch(word.write_field()),
        read: ReadState::Exclusive(unpack_epoch(word.read_field())),
    }
}

/// Thread indices whose fast-path clock is cached inline in a spill slot.
pub(crate) const INLINE_FAST: usize = 8;

/// One spilled entry: the canonical state plus an inline fast-path memo.
///
/// `fast[i]` is the clock at which a read by thread `i` (for `i <
/// INLINE_FAST`) would hit FastTrack's same-epoch fast path — `rvc[i]` for
/// read-shared histories, the exclusive epoch's clock on its own thread's
/// slot otherwise, 0 (never matched; live clocks start at 1) elsewhere. The
/// memo is refreshed after every mutation of a still-spilled state, so for
/// the first [`INLINE_FAST`] threads the fast-path decision never chases
/// the boxed vector clock: it reads this slot's cache line and stops.
#[derive(Debug, Clone)]
pub(crate) struct SpillSlot {
    /// The canonical state; all update logic runs on this.
    pub state: VarState,
    fast: [u32; INLINE_FAST],
}

impl SpillSlot {
    fn new(state: VarState) -> SpillSlot {
        let mut slot = SpillSlot {
            state,
            fast: [0; INLINE_FAST],
        };
        slot.refresh();
        slot
    }

    /// Rebuilds the fast-path memo from the canonical state. Must be called
    /// after every mutation of a slot that stays spilled.
    pub fn refresh(&mut self) {
        self.fast = [0; INLINE_FAST];
        match &self.state.read {
            ReadState::Exclusive(e) => {
                let idx = e.thread().index();
                if idx < INLINE_FAST {
                    self.fast[idx] = e.clock();
                }
            }
            ReadState::Shared(rvc) => {
                for (i, slot) in self.fast.iter_mut().enumerate() {
                    *slot = rvc.get(ThreadId::new(i as u32));
                }
            }
        }
    }

    /// The memoized fast-path clock of thread index `idx`
    /// (`idx < INLINE_FAST`). Exact: equality with a live probe clock holds
    /// iff [`crate::FastTrack`]'s read fast path would hit.
    #[inline]
    pub fn fast_clock(&self, idx: usize) -> u32 {
        self.fast[idx]
    }
}

/// The packed storage: a slab plane of words plus the spilled side arena.
///
/// Spilled states live in a dense `Vec` arena and the word carries the
/// arena slot inline ([`ShadowWord::spill_marker`]), so a spilled access is
/// one slab load plus one direct index — crucially *not* a second keyed
/// probe, because in Aikido mode nearly every delivered access targets
/// shared data whose read history has been promoted (and therefore
/// spilled). Freed slots are recycled through a free list; allocation order
/// is a deterministic function of the event history, and the reconstructed
/// state surface ([`PackedVars::states`]) iterates the slab plane, never
/// the arena, so recycling is unobservable.
#[derive(Debug, Clone)]
pub(crate) struct PackedVars {
    /// log2(granularity), so `block_of` is a shift instead of a division.
    shift: u32,
    /// The dense word plane, keyed by block index.
    slabs: ShadowSlabs,
    /// Arena of spilled states, indexed by the word's spill slot.
    arena: Vec<SpillSlot>,
    /// Recycled arena slots (their stale states are dead until reused).
    free: Vec<u32>,
}

impl PackedVars {
    /// Creates empty packed storage at `granularity` bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        PackedVars {
            shift: granularity.trailing_zeros(),
            slabs: ShadowSlabs::new(),
            arena: Vec::new(),
            free: Vec::new(),
        }
    }

    /// The block index of `addr`.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr.raw() >> self.shift
    }

    /// Resolves the slab of `addr`'s block (allocating if needed) and
    /// returns `(handle, slot, block)`. The handle stays valid until the
    /// next resolve — spill-table operations never invalidate it — so a run
    /// of same-page accesses resolves once and indexes by slot thereafter.
    #[inline]
    pub fn locate(&mut self, addr: Addr) -> (SlabHandle, usize, u64) {
        let block = self.block_of(addr);
        let (handle, slot) = self.slabs.resolve(block);
        (handle, slot, block)
    }

    /// Resolves the slab containing `block` (see [`PackedVars::locate`]).
    #[inline]
    pub fn resolve_block(&mut self, block: u64) -> SlabHandle {
        self.slabs.resolve(block).0
    }

    /// The word at `slot` of a resolved slab.
    #[inline]
    pub fn word_at(&self, handle: SlabHandle, slot: usize) -> ShadowWord {
        self.slabs.word_at(handle, slot)
    }

    /// Stores `word` at `slot` of a resolved slab.
    #[inline]
    pub fn set_word_at(&mut self, handle: SlabHandle, slot: usize, word: ShadowWord) {
        self.slabs.set_word_at(handle, slot, word);
    }

    /// Mutable access to the slot a spilled `word` points at: one direct
    /// arena index, no probing.
    #[inline]
    pub fn spill_slot_mut(&mut self, word: ShadowWord) -> &mut SpillSlot {
        debug_assert!(word.is_spilled());
        &mut self.arena[word.spill_index() as usize]
    }

    /// Shared access to the slot a spilled `word` points at.
    #[inline]
    pub fn spill_slot(&self, word: ShadowWord) -> &SpillSlot {
        debug_assert!(word.is_spilled());
        &self.arena[word.spill_index() as usize]
    }

    /// Moves `state` into the arena (memo refreshed) and returns the spill
    /// marker word to install in its slab slot.
    #[inline]
    pub fn spill(&mut self, state: VarState) -> ShadowWord {
        let slot = SpillSlot::new(state);
        let index = match self.free.pop() {
            Some(index) => {
                self.arena[index as usize] = slot;
                u64::from(index)
            }
            None => {
                self.arena.push(slot);
                (self.arena.len() - 1) as u64
            }
        };
        ShadowWord::spill_marker(index)
    }

    /// Releases a spilled `word`'s arena slot (the state re-packed into its
    /// word). The stale arena entry is dead until the slot is reused.
    #[inline]
    pub fn unspill(&mut self, word: ShadowWord) {
        debug_assert!(word.is_spilled());
        self.free.push(word.spill_index() as u32);
    }

    /// Number of tracked blocks (every tracked block has a non-empty word;
    /// spilled blocks carry the spill marker).
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// Installs a full state for `block` (used when converting between the
    /// packed and the reference representations).
    pub fn insert_state(&mut self, block: u64, state: VarState) {
        match encode_state(&state) {
            Some(word) => self.slabs.set(block, word),
            None => {
                let marker = self.spill(state);
                self.slabs.set(block, marker);
            }
        }
    }

    /// Reconstructs every tracked `(block, state)` pair in ascending block
    /// order — the serialization surface the equivalence oracle compares.
    pub fn states(&self) -> Vec<(u64, VarState)> {
        self.slabs
            .iter()
            .map(|(block, word)| {
                let state = if word.is_spilled() {
                    self.spill_slot(word).state.clone()
                } else {
                    decode_word(word)
                };
                (block, state)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VectorClock;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn packable_states_roundtrip_through_the_word() {
        let state = VarState {
            write: Epoch::new(5, t(2)),
            read: ReadState::Exclusive(Epoch::new(3, t(1))),
        };
        let word = encode_state(&state).expect("fits");
        assert!(!word.is_spilled());
        assert_eq!(decode_word(word), state);
        assert_eq!(encode_state(&VarState::default()), Some(ShadowWord::EMPTY));
    }

    #[test]
    fn shared_and_oversized_states_refuse_to_pack() {
        let shared = VarState {
            write: Epoch::ZERO,
            read: ReadState::Shared(Box::new(VectorClock::new())),
        };
        assert_eq!(encode_state(&shared), None);
        let big_clock = VarState {
            write: Epoch::new(1 << 24, t(0)),
            read: ReadState::default(),
        };
        assert_eq!(encode_state(&big_clock), None);
        let big_thread = VarState {
            write: Epoch::new(1, t(128)),
            read: ReadState::default(),
        };
        assert_eq!(encode_state(&big_thread), None);
    }

    #[test]
    fn insert_state_spills_and_reconstructs() {
        let mut vars = PackedVars::new(8);
        let packable = VarState {
            write: Epoch::new(2, t(1)),
            read: ReadState::Exclusive(Epoch::new(2, t(1))),
        };
        let rvc: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let spilled = VarState {
            write: Epoch::new(4, t(0)),
            read: ReadState::Shared(Box::new(rvc)),
        };
        vars.insert_state(10, packable.clone());
        vars.insert_state(700, spilled.clone());
        assert_eq!(vars.len(), 2);
        assert_eq!(
            vars.states(),
            vec![(10, packable), (700, spilled)],
            "states reconstruct in block order"
        );
    }

    #[test]
    fn locate_is_stable_across_spill_operations() {
        let mut vars = PackedVars::new(8);
        let (handle, slot, _block) = vars.locate(Addr::new(0x2000));
        let marker = vars.spill(VarState::default());
        vars.set_word_at(handle, slot, marker);
        assert!(vars.word_at(handle, slot).is_spilled());
        vars.unspill(marker);
        vars.set_word_at(handle, slot, ShadowWord::from_fields(1, 1));
        assert_eq!(vars.word_at(handle, slot), ShadowWord::from_fields(1, 1));
    }

    #[test]
    fn freed_arena_slots_are_recycled() {
        let mut vars = PackedVars::new(8);
        let a = vars.spill(VarState::default());
        let b = vars.spill(VarState::default());
        assert_ne!(a.spill_index(), b.spill_index());
        vars.unspill(a);
        let c = vars.spill(VarState {
            write: Epoch::new(9, t(1)),
            read: ReadState::default(),
        });
        assert_eq!(c.spill_index(), a.spill_index(), "freed slot reused");
        assert_eq!(vars.spill_slot(c).state.write, Epoch::new(9, t(1)));
    }
}

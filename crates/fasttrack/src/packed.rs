//! Packed-word storage for per-variable metadata.
//!
//! The hot-path representation of a variable's [`VarState`] is one 64-bit
//! [`ShadowWord`] in a page-granular dense slab: write epoch and
//! exclusive-read epoch bit-packed side by side. States that no longer fit —
//! a promoted read-shared vector clock, a clock past 2^24 or a thread id
//! past 2^7 — escape through the word's spill tag into a side arena of
//! fixed-stride [`SpillSlot`]s.
//!
//! The spill slot is itself a packed structure: the first [`INLINE_LANES`]
//! per-thread read clocks live as flat *epoch lanes* directly in the slot,
//! so a read-shared history touched only by low-index threads (the
//! overwhelmingly common case — PARSEC-style workloads run a handful of
//! worker threads) is updated and race-checked entirely within the slot's
//! cache lines, never chasing a boxed [`VectorClock`]. Only when a thread
//! past the lane budget participates does the history fall back to the
//! dense boxed clock, preserving exact FastTrack semantics. The enum-based
//! [`aikido_shadow::ShadowStore`] storage is retained as the reference
//! oracle behind [`crate::FastTrack::with_packed_words`]; the two are proven
//! equivalent by the `packed_words_model` property suite and by the
//! end-to-end pipeline equivalence tests.

use aikido_shadow::ShadowSlabs;
use aikido_types::{Addr, ShadowWord, SlabHandle, ThreadId};

use crate::clock::{Epoch, VectorClock};
use crate::detector::{cost, ReadOutcome, WriteOutcome};
use crate::state::{ReadState, VarState};
use crate::stats::SpillStats;

/// Packs an epoch into a 31-bit word field, or `None` when it exceeds the
/// clock/thread budget (the state must spill).
#[inline]
pub(crate) fn pack_epoch(e: Epoch) -> Option<u64> {
    ShadowWord::pack_field(e.clock(), e.thread().raw())
}

/// Decodes a 31-bit word field back into an epoch.
#[inline]
fn unpack_epoch(field: u64) -> Epoch {
    Epoch::new(
        ShadowWord::field_clock(field),
        ThreadId::new(ShadowWord::field_thread(field)),
    )
}

/// Encodes a state into an unspilled word, or `None` when it must spill.
/// The default (never-accessed) state encodes to [`ShadowWord::EMPTY`],
/// which is exactly the "untracked" word — consistent because every real
/// access installs an epoch with a non-zero clock.
#[inline]
pub(crate) fn encode_state(state: &VarState) -> Option<ShadowWord> {
    let write = pack_epoch(state.write)?;
    let read = match &state.read {
        ReadState::Exclusive(e) => pack_epoch(*e)?,
        ReadState::Shared(_) => return None,
    };
    Some(ShadowWord::from_fields(write, read))
}

/// Decodes an unspilled word into the state it represents.
#[inline]
pub(crate) fn decode_word(word: ShadowWord) -> VarState {
    debug_assert!(!word.is_spilled());
    VarState {
        write: unpack_epoch(word.write_field()),
        read: ReadState::Exclusive(unpack_epoch(word.read_field())),
    }
}

/// Thread indices whose read clock is kept inline in a spill slot's epoch
/// lanes.
pub(crate) const INLINE_LANES: usize = 8;

/// How a spill slot represents the read history.
///
/// The slot's `lanes` array carries, for every kind, the fast-path read
/// clock of the first [`INLINE_LANES`] threads; the kind decides what is
/// authoritative:
///
/// * `Exclusive` — reads are totally ordered; the epoch is authoritative
///   and its clock is mirrored into its thread's lane.
/// * `Inline` — read-shared with every participating thread inside the
///   lanes. The lanes *are* the vector clock: `lanes[..width]` is exactly
///   the backing array the reference's boxed clock would hold (`width` =
///   highest set index + 1, so reconstruction is byte-identical, trailing
///   zeros included).
/// * `Boxed` — a thread past the lane budget participates; the dense clock
///   is authoritative and the lanes memoize its first entries.
#[derive(Debug, Clone)]
enum SpillRead {
    /// Totally ordered reads (the state spilled for another reason: an
    /// oversized clock or thread id).
    Exclusive(Epoch),
    /// Read-shared, held entirely in the inline lanes.
    Inline {
        /// Length of the equivalent clock vector (highest set index + 1).
        width: u32,
    },
    /// Read-shared overflow: the boxed dense clock is authoritative.
    Boxed(Box<VectorClock>),
}

/// One spilled entry: write epoch, read-history kind and the inline epoch
/// lanes.
///
/// Invariant (all kinds): `lanes[i]` is the clock at which a read by thread
/// `i < INLINE_LANES` hits FastTrack's same-epoch fast path — `rvc[i]` for
/// read-shared histories, the exclusive epoch's clock on its own thread's
/// lane otherwise, 0 (never matches; live clocks start at 1) elsewhere.
/// Maintained incrementally by every update, so both the fast-path decision
/// *and* (for `Inline`) the full update/race-check logic stay within the
/// slot.
#[derive(Debug, Clone)]
pub(crate) struct SpillSlot {
    write: Epoch,
    read: SpillRead,
    lanes: [u32; INLINE_LANES],
}

impl SpillSlot {
    /// Builds a slot from a canonical state (taking ownership of a shared
    /// history's boxed clock when it overflows the lanes).
    fn new(state: VarState) -> SpillSlot {
        let mut lanes = [0u32; INLINE_LANES];
        let read = match state.read {
            ReadState::Exclusive(e) => {
                if e.thread().index() < INLINE_LANES {
                    lanes[e.thread().index()] = e.clock();
                }
                SpillRead::Exclusive(e)
            }
            ReadState::Shared(rvc) => {
                for (i, lane) in lanes.iter_mut().enumerate() {
                    *lane = rvc.get(ThreadId::new(i as u32));
                }
                let width = rvc.raw_clocks().len();
                if width <= INLINE_LANES {
                    SpillRead::Inline {
                        width: width as u32,
                    }
                } else {
                    SpillRead::Boxed(rvc)
                }
            }
        };
        SpillSlot {
            write: state.write,
            read,
            lanes,
        }
    }

    /// Reconstructs the canonical state — byte-identical to what the
    /// reference detector holds, including the exact backing-array length
    /// of a shared history's clock.
    pub fn to_state(&self) -> VarState {
        let read = match &self.read {
            SpillRead::Exclusive(e) => ReadState::Exclusive(*e),
            SpillRead::Inline { width } => ReadState::Shared(Box::new(
                VectorClock::from_raw_clocks(self.lanes[..*width as usize].to_vec()),
            )),
            SpillRead::Boxed(rvc) => ReadState::Shared(rvc.clone()),
        };
        VarState {
            write: self.write,
            read,
        }
    }

    /// The spilled state's write epoch.
    #[inline]
    pub fn write_epoch(&self) -> Epoch {
        self.write
    }

    /// The fast-path read clock of thread index `idx < INLINE_LANES` (see
    /// the slot invariant). Exact: equality with a live probe clock holds
    /// iff [`crate::FastTrack`]'s read fast path would hit.
    #[inline]
    pub fn lane_clock(&self, idx: usize) -> u32 {
        self.lanes[idx]
    }

    /// The general read fast-path check, for threads past the lane budget
    /// (low-index threads use [`SpillSlot::lane_clock`] directly).
    pub fn read_fast_path(&self, thread: ThreadId, epoch: Epoch) -> bool {
        match &self.read {
            SpillRead::Exclusive(e) => *e == epoch,
            // Every participant of an inline history is inside the lanes, so
            // a lane-less thread has clock 0, which no live epoch matches.
            SpillRead::Inline { .. } => {
                thread.index() < INLINE_LANES && self.lanes[thread.index()] == epoch.clock()
            }
            SpillRead::Boxed(rvc) => rvc.get(thread) == epoch.clock(),
        }
    }

    /// The read epoch a still-spilled word's same-epoch hint can point at
    /// after a write (`None` for shared histories).
    #[inline]
    pub fn exclusive_read_epoch(&self) -> Option<Epoch> {
        match &self.read {
            SpillRead::Exclusive(e) => Some(*e),
            _ => None,
        }
    }

    /// True if the read history overflowed the lanes into a boxed clock.
    #[inline]
    pub fn is_boxed(&self) -> bool {
        matches!(self.read, SpillRead::Boxed(_))
    }

    /// Re-encodes the state into an unspilled word when it fits again.
    /// Exactly `encode_state(&self.to_state())`, without materializing the
    /// state.
    pub fn repack(&self) -> Option<ShadowWord> {
        match &self.read {
            SpillRead::Exclusive(e) => {
                let write = pack_epoch(self.write)?;
                let read = pack_epoch(*e)?;
                Some(ShadowWord::from_fields(write, read))
            }
            _ => None,
        }
    }

    /// The slow read update, mirroring the reference `read_slow`
    /// branch-for-branch on the packed representation: write-read race check
    /// plus read-history update. For histories inside the lanes this never
    /// touches (or allocates) a boxed clock.
    pub fn read_update(
        &mut self,
        vc: &VectorClock,
        thread: ThreadId,
        epoch: Epoch,
        use_epochs: bool,
        threads_known: u64,
    ) -> ReadOutcome {
        let mut cost = cost::EXCLUSIVE;
        let mut promoted = false;

        // Write-read race check: the last write must happen-before this read.
        let write_race = !self.write.happens_before(vc);
        let prior_writer = self.write.thread();

        match &mut self.read {
            SpillRead::Exclusive(e) if use_epochs && e.happens_before(vc) => {
                // Still totally ordered: the new epoch replaces the old, and
                // the lane mirror moves with it.
                let old = *e;
                *e = epoch;
                if old.thread().index() < INLINE_LANES {
                    self.lanes[old.thread().index()] = 0;
                }
                if thread.index() < INLINE_LANES {
                    self.lanes[thread.index()] = epoch.clock();
                }
            }
            SpillRead::Exclusive(e) => {
                // Concurrent (or epoch optimisation disabled): promote. The
                // reference builds `rvc` by setting (e.thread, e.clock) when
                // e.clock > 0, then (thread, epoch.clock); the lanes
                // reproduce exactly that vector (including its length) when
                // both indices fit, else the boxed clock is built directly.
                let e = *e;
                promoted = true;
                cost = cost::PROMOTE_SHARED;
                self.lanes = [0; INLINE_LANES];
                let prior_fits = e.clock() == 0 || e.thread().index() < INLINE_LANES;
                if prior_fits && thread.index() < INLINE_LANES {
                    let mut width = 0usize;
                    if e.clock() > 0 {
                        self.lanes[e.thread().index()] = e.clock();
                        width = e.thread().index() + 1;
                    }
                    self.lanes[thread.index()] = epoch.clock();
                    width = width.max(thread.index() + 1);
                    self.read = SpillRead::Inline {
                        width: width as u32,
                    };
                } else {
                    let mut rvc = VectorClock::new();
                    if e.clock() > 0 {
                        rvc.set(e.thread(), e.clock());
                        if e.thread().index() < INLINE_LANES {
                            self.lanes[e.thread().index()] = e.clock();
                        }
                    }
                    rvc.set(thread, epoch.clock());
                    if thread.index() < INLINE_LANES {
                        self.lanes[thread.index()] = epoch.clock();
                    }
                    self.read = SpillRead::Boxed(Box::new(rvc));
                }
            }
            SpillRead::Inline { width } => {
                cost = cost::SHARED_BASE + cost::SHARED_PER_THREAD * threads_known;
                let idx = thread.index();
                if idx < INLINE_LANES {
                    self.lanes[idx] = epoch.clock();
                    *width = (*width).max(idx as u32 + 1);
                } else {
                    // A thread past the lane budget joined: overflow into
                    // the dense clock (`set` resizes to idx + 1, exactly
                    // like the reference's).
                    let mut rvc =
                        VectorClock::from_raw_clocks(self.lanes[..*width as usize].to_vec());
                    rvc.set(thread, epoch.clock());
                    self.read = SpillRead::Boxed(Box::new(rvc));
                }
            }
            SpillRead::Boxed(rvc) => {
                cost = cost::SHARED_BASE + cost::SHARED_PER_THREAD * threads_known;
                rvc.set(thread, epoch.clock());
                if thread.index() < INLINE_LANES {
                    self.lanes[thread.index()] = epoch.clock();
                }
            }
        }

        ReadOutcome {
            cost,
            promoted,
            write_race,
            prior_writer,
        }
    }

    /// The slow write update, mirroring the reference `write_slow`: both
    /// race checks, the write record and the read-history collapse. The
    /// read-write check of an inline history scans the lanes — same
    /// ascending order, same first-concurrent-reader answer as the
    /// reference's clock iteration.
    pub fn write_update(
        &mut self,
        vc: &VectorClock,
        epoch: Epoch,
        threads_known: u64,
    ) -> WriteOutcome {
        let shared = !matches!(self.read, SpillRead::Exclusive(_));
        let cost = if shared {
            cost::SHARED_BASE + cost::SHARED_PER_THREAD * threads_known
        } else {
            cost::EXCLUSIVE
        };
        let write_race = !self.write.happens_before(vc);
        let prior_writer = self.write.thread();
        let (read_race, prior_reader) = match &self.read {
            SpillRead::Exclusive(e) => (!e.happens_before(vc), Some(e.thread())),
            SpillRead::Inline { width } => {
                // First lane whose clock exceeds the writer's view, in
                // ascending thread order (zero lanes can never exceed).
                let concurrent = self.lanes[..*width as usize]
                    .iter()
                    .enumerate()
                    .find(|&(i, &c)| c > vc.get(ThreadId::new(i as u32)))
                    .map(|(i, _)| ThreadId::new(i as u32));
                (concurrent.is_some(), concurrent)
            }
            SpillRead::Boxed(rvc) => (
                !rvc.le(vc),
                rvc.iter().find(|(t, c)| *c > vc.get(*t)).map(|(t, _)| t),
            ),
        };

        // Update: record this write; once all concurrent reads have been
        // checked the read history can collapse back to the writer's epoch
        // (FastTrack's "write shared" rule).
        self.write = epoch;
        if shared {
            self.read = SpillRead::Exclusive(epoch);
            self.lanes = [0; INLINE_LANES];
            if epoch.thread().index() < INLINE_LANES {
                self.lanes[epoch.thread().index()] = epoch.clock();
            }
        }

        WriteOutcome {
            cost,
            write_race,
            prior_writer,
            read_race,
            prior_reader,
        }
    }
}

/// The packed storage: a slab plane of words plus the spilled side arena.
///
/// Spilled states live in a dense `Vec` arena and the word carries the
/// arena slot inline ([`ShadowWord::spill_marker`]), so a spilled access is
/// one slab load plus one direct index — crucially *not* a second keyed
/// probe, because in Aikido mode nearly every delivered access targets
/// shared data whose read history has been promoted (and therefore
/// spilled). Freed slots are recycled through a free list; allocation order
/// is a deterministic function of the event history, and the reconstructed
/// state surface ([`PackedVars::states`]) iterates the slab plane, never
/// the arena, so recycling is unobservable.
#[derive(Debug, Clone)]
pub(crate) struct PackedVars {
    /// log2(granularity), so `block_of` is a shift instead of a division.
    shift: u32,
    /// The dense word plane, keyed by block index.
    slabs: ShadowSlabs,
    /// Arena of spilled states, indexed by the word's spill slot.
    arena: Vec<SpillSlot>,
    /// Recycled arena slots (their stale states are dead until reused).
    free: Vec<u32>,
    /// Representation counters (never part of the equivalence surface).
    stats: SpillStats,
}

impl PackedVars {
    /// Creates empty packed storage at `granularity` bytes per block.
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is zero or not a power of two.
    pub fn new(granularity: u64) -> Self {
        assert!(
            granularity.is_power_of_two(),
            "granularity must be a power of two"
        );
        PackedVars {
            shift: granularity.trailing_zeros(),
            slabs: ShadowSlabs::new(),
            arena: Vec::new(),
            free: Vec::new(),
            stats: SpillStats::default(),
        }
    }

    /// The block index of `addr`.
    #[inline]
    pub fn block_of(&self, addr: Addr) -> u64 {
        addr.raw() >> self.shift
    }

    /// Resolves the slab of `addr`'s block (allocating if needed) and
    /// returns `(handle, slot, block)`. The handle stays valid until the
    /// next resolve — spill-table operations never invalidate it — so a run
    /// of same-page accesses resolves once and indexes by slot thereafter.
    #[inline]
    pub fn locate(&mut self, addr: Addr) -> (SlabHandle, usize, u64) {
        let block = self.block_of(addr);
        let (handle, slot) = self.slabs.resolve(block);
        (handle, slot, block)
    }

    /// Resolves the slab containing `block` (see [`PackedVars::locate`]).
    #[inline]
    pub fn resolve_block(&mut self, block: u64) -> SlabHandle {
        self.slabs.resolve(block).0
    }

    /// The word at `slot` of a resolved slab.
    #[inline]
    pub fn word_at(&self, handle: SlabHandle, slot: usize) -> ShadowWord {
        self.slabs.word_at(handle, slot)
    }

    /// Stores `word` at `slot` of a resolved slab.
    #[inline]
    pub fn set_word_at(&mut self, handle: SlabHandle, slot: usize, word: ShadowWord) {
        self.slabs.set_word_at(handle, slot, word);
    }

    /// Mutable access to the slot a spilled `word` points at: one direct
    /// arena index, no probing.
    #[inline]
    pub fn spill_slot_mut(&mut self, word: ShadowWord) -> &mut SpillSlot {
        debug_assert!(word.is_spilled());
        &mut self.arena[word.spill_index() as usize]
    }

    /// Shared access to the slot a spilled `word` points at.
    #[inline]
    pub fn spill_slot(&self, word: ShadowWord) -> &SpillSlot {
        debug_assert!(word.is_spilled());
        &self.arena[word.spill_index() as usize]
    }

    /// Moves `state` into the arena and returns the spill marker word to
    /// install in its slab slot.
    #[inline]
    pub fn spill(&mut self, state: VarState) -> ShadowWord {
        self.stats.spills += 1;
        let slot = SpillSlot::new(state);
        if slot.is_boxed() {
            self.stats.boxed_overflows += 1;
        }
        let index = match self.free.pop() {
            Some(index) => {
                self.arena[index as usize] = slot;
                u64::from(index)
            }
            None => {
                self.arena.push(slot);
                (self.arena.len() - 1) as u64
            }
        };
        ShadowWord::spill_marker(index)
    }

    /// Releases a spilled `word`'s arena slot (the state re-packed into its
    /// word). The stale arena entry is dead until the slot is reused.
    #[inline]
    pub fn unspill(&mut self, word: ShadowWord) {
        debug_assert!(word.is_spilled());
        self.stats.unspills += 1;
        self.free.push(word.spill_index() as u32);
    }

    /// Representation counters accumulated so far.
    #[inline]
    pub fn spill_stats(&self) -> SpillStats {
        self.stats
    }

    /// Mutable representation counters (slow-path bookkeeping only).
    #[inline]
    pub fn spill_stats_mut(&mut self) -> &mut SpillStats {
        &mut self.stats
    }

    /// Number of tracked blocks (every tracked block has a non-empty word;
    /// spilled blocks carry the spill marker).
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// Installs a full state for `block` (used when converting between the
    /// packed and the reference representations).
    pub fn insert_state(&mut self, block: u64, state: VarState) {
        match encode_state(&state) {
            Some(word) => self.slabs.set(block, word),
            None => {
                let marker = self.spill(state);
                self.slabs.set(block, marker);
            }
        }
    }

    /// Reconstructs every tracked `(block, state)` pair in ascending block
    /// order — the serialization surface the equivalence oracle compares.
    pub fn states(&self) -> Vec<(u64, VarState)> {
        self.slabs
            .iter()
            .map(|(block, word)| {
                let state = if word.is_spilled() {
                    self.spill_slot(word).to_state()
                } else {
                    decode_word(word)
                };
                (block, state)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VectorClock;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn packable_states_roundtrip_through_the_word() {
        let state = VarState {
            write: Epoch::new(5, t(2)),
            read: ReadState::Exclusive(Epoch::new(3, t(1))),
        };
        let word = encode_state(&state).expect("fits");
        assert!(!word.is_spilled());
        assert_eq!(decode_word(word), state);
        assert_eq!(encode_state(&VarState::default()), Some(ShadowWord::EMPTY));
    }

    #[test]
    fn shared_and_oversized_states_refuse_to_pack() {
        let shared = VarState {
            write: Epoch::ZERO,
            read: ReadState::Shared(Box::new(VectorClock::new())),
        };
        assert_eq!(encode_state(&shared), None);
        let big_clock = VarState {
            write: Epoch::new(1 << 24, t(0)),
            read: ReadState::default(),
        };
        assert_eq!(encode_state(&big_clock), None);
        let big_thread = VarState {
            write: Epoch::new(1, t(128)),
            read: ReadState::default(),
        };
        assert_eq!(encode_state(&big_thread), None);
    }

    #[test]
    fn insert_state_spills_and_reconstructs() {
        let mut vars = PackedVars::new(8);
        let packable = VarState {
            write: Epoch::new(2, t(1)),
            read: ReadState::Exclusive(Epoch::new(2, t(1))),
        };
        let rvc: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let spilled = VarState {
            write: Epoch::new(4, t(0)),
            read: ReadState::Shared(Box::new(rvc)),
        };
        vars.insert_state(10, packable.clone());
        vars.insert_state(700, spilled.clone());
        assert_eq!(vars.len(), 2);
        assert_eq!(
            vars.states(),
            vec![(10, packable), (700, spilled)],
            "states reconstruct in block order"
        );
    }

    #[test]
    fn small_shared_histories_stay_inline_and_reconstruct_exactly() {
        // A shared clock whose backing array ends in a zero entry: the
        // inline lanes must preserve the exact vector length.
        let rvc: VectorClock = [(t(3), 7), (t(1), 2)].into_iter().collect();
        assert_eq!(rvc.raw_clocks(), &[0, 2, 0, 7]);
        let state = VarState {
            write: Epoch::new(4, t(0)),
            read: ReadState::Shared(Box::new(rvc)),
        };
        let slot = SpillSlot::new(state.clone());
        assert!(
            !slot.is_boxed(),
            "history of low-index threads stays inline"
        );
        assert_eq!(slot.to_state(), state);
        assert_eq!(slot.lane_clock(1), 2);
        assert_eq!(slot.lane_clock(3), 7);
        assert_eq!(slot.lane_clock(0), 0);
    }

    #[test]
    fn lane_overflow_falls_back_to_the_boxed_clock() {
        let rvc: VectorClock = [(t(0), 1), (t(INLINE_LANES as u32), 5)]
            .into_iter()
            .collect();
        let state = VarState {
            write: Epoch::new(2, t(0)),
            read: ReadState::Shared(Box::new(rvc)),
        };
        let slot = SpillSlot::new(state.clone());
        assert!(slot.is_boxed());
        assert_eq!(slot.to_state(), state);
        // The lanes still memoize the low-index entries.
        assert_eq!(slot.lane_clock(0), 1);
        assert!(slot.read_fast_path(
            t(INLINE_LANES as u32),
            Epoch::new(5, t(INLINE_LANES as u32))
        ));
    }

    #[test]
    fn inline_read_update_crossing_the_lane_budget_overflows() {
        let vc_reader: VectorClock = [(t(INLINE_LANES as u32), 3)].into_iter().collect();
        let rvc: VectorClock = [(t(0), 1), (t(1), 2)].into_iter().collect();
        let mut slot = SpillSlot::new(VarState {
            write: Epoch::ZERO,
            read: ReadState::Shared(Box::new(rvc)),
        });
        assert!(!slot.is_boxed());
        let big = t(INLINE_LANES as u32);
        slot.read_update(&vc_reader, big, Epoch::new(3, big), true, 3);
        assert!(slot.is_boxed());
        let expected: VectorClock = [(t(0), 1), (t(1), 2), (big, 3)].into_iter().collect();
        assert_eq!(
            slot.to_state().read,
            ReadState::Shared(Box::new(expected)),
            "overflow preserves the exact clock the reference would hold"
        );
    }

    #[test]
    fn write_update_collapses_shared_lanes_to_the_writer() {
        let rvc: VectorClock = [(t(0), 1), (t(2), 4)].into_iter().collect();
        let mut slot = SpillSlot::new(VarState {
            write: Epoch::ZERO,
            read: ReadState::Shared(Box::new(rvc)),
        });
        // Writer has seen both readers.
        let vc: VectorClock = [(t(0), 1), (t(1), 9), (t(2), 4)].into_iter().collect();
        let out = slot.write_update(&vc, Epoch::new(9, t(1)), 3);
        assert!(!out.read_race);
        assert_eq!(out.prior_reader, None);
        assert_eq!(slot.exclusive_read_epoch(), Some(Epoch::new(9, t(1))));
        assert_eq!(slot.lane_clock(1), 9);
        assert_eq!(slot.lane_clock(0), 0, "collapsed lanes are cleared");
        assert_eq!(slot.repack(), encode_state(&slot.to_state()));
    }

    #[test]
    fn inline_write_race_reports_the_first_concurrent_reader() {
        let rvc: VectorClock = [(t(1), 2), (t(3), 5)].into_iter().collect();
        let mut slot = SpillSlot::new(VarState {
            write: Epoch::ZERO,
            read: ReadState::Shared(Box::new(rvc)),
        });
        // Writer has seen neither reader: ascending thread order picks t1.
        let vc: VectorClock = [(t(0), 7)].into_iter().collect();
        let out = slot.write_update(&vc, Epoch::new(7, t(0)), 3);
        assert!(out.read_race);
        assert_eq!(out.prior_reader, Some(t(1)));
    }

    #[test]
    fn locate_is_stable_across_spill_operations() {
        let mut vars = PackedVars::new(8);
        let (handle, slot, _block) = vars.locate(Addr::new(0x2000));
        let marker = vars.spill(VarState::default());
        vars.set_word_at(handle, slot, marker);
        assert!(vars.word_at(handle, slot).is_spilled());
        vars.unspill(marker);
        vars.set_word_at(handle, slot, ShadowWord::from_fields(1, 1));
        assert_eq!(vars.word_at(handle, slot), ShadowWord::from_fields(1, 1));
        assert_eq!(vars.spill_stats().spills, 1);
        assert_eq!(vars.spill_stats().unspills, 1);
    }

    #[test]
    fn freed_arena_slots_are_recycled() {
        let mut vars = PackedVars::new(8);
        let a = vars.spill(VarState::default());
        let b = vars.spill(VarState::default());
        assert_ne!(a.spill_index(), b.spill_index());
        vars.unspill(a);
        let c = vars.spill(VarState {
            write: Epoch::new(9, t(1)),
            read: ReadState::default(),
        });
        assert_eq!(c.spill_index(), a.spill_index(), "freed slot reused");
        assert_eq!(vars.spill_slot(c).write_epoch(), Epoch::new(9, t(1)));
    }
}

//! Configuration of the FastTrack detector.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the [`crate::FastTrack`] detector.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastTrackConfig {
    /// Bytes per "variable" block (the paper uses 8-byte blocks, §4.2). Must
    /// be a power of two.
    pub granularity: u64,
    /// Enable FastTrack's epoch fast paths. Disabling them forces the
    /// detector to keep full vector clocks for every read history (the
    /// DJIT+-style baseline FastTrack was designed to improve on); used by
    /// the ablation benchmark.
    pub epoch_optimization: bool,
    /// Maximum number of distinct race reports to keep (further races at new
    /// locations are still *counted* but not stored).
    pub max_reports: usize,
    /// Report at most one race per variable block (the paper's tools do this
    /// to avoid drowning the user in duplicates).
    pub dedup_by_block: bool,
}

impl Default for FastTrackConfig {
    fn default() -> Self {
        FastTrackConfig {
            granularity: 8,
            epoch_optimization: true,
            max_reports: 10_000,
            dedup_by_block: true,
        }
    }
}

impl FastTrackConfig {
    /// A configuration with the epoch optimisation disabled (vector clocks
    /// everywhere), for the ablation experiment.
    pub fn without_epochs() -> Self {
        FastTrackConfig {
            epoch_optimization: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = FastTrackConfig::default();
        assert_eq!(c.granularity, 8);
        assert!(c.epoch_optimization);
        assert!(c.dedup_by_block);
    }

    #[test]
    fn without_epochs_only_toggles_the_optimization() {
        let c = FastTrackConfig::without_epochs();
        assert!(!c.epoch_optimization);
        assert_eq!(c.granularity, FastTrackConfig::default().granularity);
    }
}

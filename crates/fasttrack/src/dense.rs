//! Dense slot-indexed storage for per-thread and per-lock vector clocks.
//!
//! Thread and lock identities in the simulated workloads are small dense
//! integers, so the detector keys its clock state by direct index instead of
//! hashing a `ThreadId`/`LockId` on every event. Pathologically large ids
//! (possible through the public API) spill into a sorted vector probed by
//! binary search, so the dense array can never be grown unboundedly by a
//! hostile key and a large spill population still costs O(log n) per probe
//! rather than a linear scan.
//!
//! This is deliberately not `aikido_types::ChunkMap`: the clock lookup sits
//! on the per-event critical path and the keys here are guaranteed-dense
//! slots, so a single direct index beats the chunk map's probe-plus-leaf
//! walk.

/// Keys below this bound index the dense array directly.
const MAX_DENSE: u64 = 1 << 16;

/// A `u64 → V` map optimised for small dense keys.
#[derive(Debug, Clone)]
pub(crate) struct DenseMap<V> {
    dense: Vec<Option<V>>,
    /// Entries with keys ≥ [`MAX_DENSE`], kept sorted by key for binary
    /// search.
    spill: Vec<(u64, V)>,
    len: usize,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap {
            dense: Vec::new(),
            spill: Vec::new(),
            len: 0,
        }
    }
}

impl<V> DenseMap<V> {
    /// Number of keys with a value.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Shared access to the value at `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        if key < MAX_DENSE {
            self.dense.get(key as usize)?.as_ref()
        } else {
            let pos = self.spill.binary_search_by_key(&key, |&(k, _)| k).ok()?;
            Some(&self.spill[pos].1)
        }
    }

    /// Mutable access to the value at `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if key < MAX_DENSE {
            self.dense.get_mut(key as usize)?.as_mut()
        } else {
            let pos = self.spill.binary_search_by_key(&key, |&(k, _)| k).ok()?;
            Some(&mut self.spill[pos].1)
        }
    }

    /// Iterates every `(key, value)` pair in ascending key order (dense keys
    /// are all below the spill bound, so dense-then-spill is sorted). This is
    /// the deterministic serialization order of the snapshot plane.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(k, v)| Some((k as u64, v.as_ref()?)));
        let spill = self.spill.iter().map(|(k, v)| (*k, v));
        dense.chain(spill)
    }

    /// Mutable access to the value at `key`, inserting `make()` first if the
    /// key is vacant. Inlined like the plain accessors: the thread-clock
    /// lookup drives this once per event, and the dense arm is a bounds
    /// check plus an index in the common already-present case.
    #[inline]
    pub fn get_or_insert_with(&mut self, key: u64, make: impl FnOnce() -> V) -> &mut V {
        if key < MAX_DENSE {
            let idx = key as usize;
            if idx >= self.dense.len() {
                self.dense.resize_with(idx + 1, || None);
            }
            let slot = &mut self.dense[idx];
            if slot.is_none() {
                *slot = Some(make());
                self.len += 1;
            }
            slot.as_mut().expect("just filled")
        } else {
            let pos = match self.spill.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => pos,
                Err(pos) => {
                    self.spill.insert(pos, (key, make()));
                    self.len += 1;
                    pos
                }
            };
            &mut self.spill[pos].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_and_spill_keys_roundtrip() {
        let mut m: DenseMap<u32> = DenseMap::default();
        *m.get_or_insert_with(3, || 30) += 0;
        *m.get_or_insert_with(1 << 40, || 40) += 0;
        assert_eq!(m.get(3), Some(&30));
        assert_eq!(m.get(1 << 40), Some(&40));
        assert_eq!(m.get(4), None);
        assert_eq!(m.len(), 2);
        *m.get_mut(3).unwrap() += 1;
        assert_eq!(m.get(3), Some(&31));
    }

    #[test]
    fn get_or_insert_with_creates_once() {
        let mut m: DenseMap<u32> = DenseMap::default();
        assert_eq!(*m.get_or_insert_with(7, || 1), 1);
        *m.get_or_insert_with(7, || 99) += 1;
        assert_eq!(m.get(7), Some(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(*m.get_or_insert_with(1 << 20, || 5), 5);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn spill_stays_sorted_across_out_of_order_inserts() {
        // Keys on and around the dense/spill boundary, inserted in an order
        // chosen to break a push-append spill: binary search must find every
        // key afterwards, and boundary keys must land on the right side.
        let mut m: DenseMap<u64> = DenseMap::default();
        let keys = [
            MAX_DENSE + 7,
            u64::MAX,
            MAX_DENSE,
            MAX_DENSE - 1, // dense side of the boundary
            MAX_DENSE + 3,
            1 << 40,
            MAX_DENSE + 1,
        ];
        for &k in &keys {
            assert_eq!(
                *m.get_or_insert_with(k, || k.wrapping_mul(2)),
                k.wrapping_mul(2),
                "key {k:#x}"
            );
        }
        for &k in &keys {
            assert_eq!(m.get(k), Some(&k.wrapping_mul(2)), "key {k:#x}");
            assert_eq!(m.get_mut(k).copied(), Some(k.wrapping_mul(2)), "key {k:#x}");
        }
        assert_eq!(m.len(), keys.len());
        // Spill-side misses between present keys resolve to None.
        assert_eq!(m.get(MAX_DENSE + 2), None);
        assert_eq!(m.get(u64::MAX - 1), None);
        // Re-inserting an existing spill key neither duplicates nor reorders.
        assert_eq!(
            *m.get_or_insert_with(MAX_DENSE + 3, || 999),
            (MAX_DENSE + 3) * 2
        );
        assert_eq!(m.len(), keys.len());
    }

    #[test]
    fn overwriting_through_get_mut_does_not_grow_len() {
        let mut m: DenseMap<u32> = DenseMap::default();
        m.get_or_insert_with(2, || 1);
        *m.get_mut(2).unwrap() = 2;
        m.get_or_insert_with(1 << 30, || 3);
        *m.get_mut(1 << 30).unwrap() = 4;
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(2), Some(&2));
        assert_eq!(m.get(1 << 30), Some(&4));
    }
}
